//! Acceptance test for real-graph ingestion: a campaign over an ingested
//! on-disk graph must behave exactly like one over the same graph held in
//! memory — the mmap backing is a pure representation change — and the
//! graph's content hash must be visible in the trace store's entry file
//! names, so a re-ingested (different) graph can never be served a stale
//! trace.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::{Campaign, CampaignResult};
use grasp_suite::core::datasets::{DatasetCatalog, DatasetId, GraphBacking, GraphHash, Scale};
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::core::trace_store::TraceStore;
use grasp_suite::graph::ingest;
use grasp_suite::graph::EdgeList;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SCALE: Scale = Scale::Tiny;

const POLICIES: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp];

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("grasp-ingested-itest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A deterministic skewed edge list, written to disk the way a user would
/// hand the harness a real graph snapshot.
fn ingest_sample_graph(dir: &Path) -> GraphHash {
    let n: u32 = 512;
    let mut el = EdgeList::new(n as u64);
    // A hub-heavy synthetic: every vertex points at a few low-ID hubs plus a
    // ring edge, giving the skew GRASP's classification needs.
    for v in 0..n {
        el.push(v, (v + 1) % n).unwrap();
        el.push(v, v % 7).unwrap();
        el.push(v, v % 3).unwrap();
    }
    let report = ingest::ingest_edge_list(&el, dir, 4).expect("ingest succeeds");
    GraphHash(report.content_hash)
}

fn campaign(catalog: DatasetCatalog, hash: GraphHash) -> Campaign {
    Campaign::new(SCALE)
        .catalog(catalog)
        .ingested_dataset(hash)
        .apps(&[AppKind::PageRank, AppKind::Sssp])
        .policies(&POLICIES)
        .threads(2)
}

fn assert_bit_identical(a: &CampaignResult, b: &CampaignResult, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: grid size");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.cell, y.cell, "{what}");
        assert_eq!(
            x.result.stats, y.result.stats,
            "{what}: {}/{}/{} diverged",
            x.cell.dataset, x.cell.app, x.cell.policy
        );
        assert_eq!(
            x.result.app.values, y.result.app.values,
            "{what}: app output diverged"
        );
        assert!(
            (x.result.cycles - y.result.cycles).abs() < 1e-12,
            "{what}: timing model diverged"
        );
    }
}

#[test]
fn mmap_and_in_memory_backings_are_bit_identical() {
    let graph_dir = temp_dir("backing-graph");
    let hash = ingest_sample_graph(&graph_dir);

    let mut mapped = DatasetCatalog::new();
    mapped
        .register_with_backing(&graph_dir, GraphBacking::Mapped)
        .expect("registers mmap-backed");
    let mut in_memory = DatasetCatalog::new();
    in_memory
        .register_with_backing(&graph_dir, GraphBacking::InMemory)
        .expect("registers in-memory");

    let via_mmap = campaign(mapped, hash).run();
    let via_memory = campaign(in_memory, hash).run();
    assert_eq!(via_mmap.len(), 2 * POLICIES.len());
    for run in via_mmap.iter() {
        assert_eq!(run.cell.dataset, DatasetId::Ingested(hash));
    }
    assert_bit_identical(&via_mmap, &via_memory, "mmap vs in-memory backing");

    std::fs::remove_dir_all(&graph_dir).ok();
}

#[test]
fn content_hash_lands_in_trace_store_entry_names_and_store_hits_are_identical() {
    let graph_dir = temp_dir("store-graph");
    let store_dir = temp_dir("store");
    let hash = ingest_sample_graph(&graph_dir);
    let store = Arc::new(TraceStore::open(&store_dir).expect("store opens"));

    let catalog = |backing| {
        let mut c = DatasetCatalog::new();
        c.register_with_backing(&graph_dir, backing).unwrap();
        c
    };

    // Cold run over the mmap backing records and publishes every stream.
    let cold = campaign(catalog(GraphBacking::Mapped), hash)
        .with_trace_store(Arc::clone(&store))
        .run();

    // The graph's content hash is the dataset coordinate of every entry
    // file name (`g<hash:016x>-<scale>-<technique>-<app>-<cfg>.v<N>.trace`).
    let slug = hash.slug();
    assert_eq!(slug, format!("g{:016x}", hash.0));
    let entries: Vec<String> = std::fs::read_dir(&store_dir)
        .expect("store dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".trace"))
        .collect();
    assert!(!entries.is_empty(), "cold run published no entries");
    for name in &entries {
        assert!(
            name.starts_with(&format!("{slug}-")),
            "entry '{name}' does not carry the graph's content hash '{slug}'"
        );
    }

    // Warm run — served from the store — and a warm run over the *other*
    // backing must both be bit-identical to the cold record.
    let warm = campaign(catalog(GraphBacking::Mapped), hash)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&cold, &warm, "warm store run");
    assert!(store.stats().hits > 0, "warm run should hit the store");

    let warm_in_memory = campaign(catalog(GraphBacking::InMemory), hash)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&cold, &warm_in_memory, "warm in-memory run");

    std::fs::remove_dir_all(&graph_dir).ok();
    std::fs::remove_dir_all(&store_dir).ok();
}
