//! The parallel campaign runner must be a pure wall-clock optimization:
//! per-cell statistics bit-identical to the serial `Experiment::run` path,
//! and results delivered in deterministic grid order at any thread count.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::Campaign;
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::reorder::TechniqueKind;

const SCALE: Scale = Scale::Tiny;

fn fig6_style_campaign() -> Campaign {
    Campaign::new(SCALE)
        .datasets(&[DatasetKind::Twitter, DatasetKind::Kron])
        .apps(&[AppKind::PageRank, AppKind::Sssp])
        .policies(&[PolicyKind::Rrip, PolicyKind::Hawkeye, PolicyKind::Grasp])
}

#[test]
fn parallel_campaign_matches_serial_experiments_bit_for_bit() {
    let results = fig6_style_campaign().threads(4).run();
    assert_eq!(results.len(), 2 * 2 * 3);
    for run in results.iter() {
        let cell = run.cell;
        let dataset = cell
            .dataset
            .as_synthetic()
            .expect("synthetic axis")
            .build(SCALE);
        let serial = Experiment::new(dataset.graph, cell.app)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(cell.technique)
            .run(cell.policy);
        assert_eq!(
            serial.stats, run.result.stats,
            "{}/{}/{}: parallel stats diverged from serial",
            cell.dataset, cell.app, cell.policy
        );
        assert_eq!(
            serial.app.values, run.result.app.values,
            "app output diverged"
        );
        assert!(
            (serial.cycles - run.result.cycles).abs() < 1e-9,
            "timing model diverged"
        );
    }
}

#[test]
fn results_are_deterministic_across_thread_counts() {
    let single = fig6_style_campaign().threads(1).run();
    let quad = fig6_style_campaign().threads(4).run();
    let many = fig6_style_campaign().threads(16).run();
    assert_eq!(single.len(), quad.len());
    assert_eq!(single.len(), many.len());
    for ((a, b), c) in single.iter().zip(quad.iter()).zip(many.iter()) {
        assert_eq!(a.cell, b.cell, "grid order must not depend on thread count");
        assert_eq!(a.cell, c.cell, "grid order must not depend on thread count");
        assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
        assert_eq!(a.result.stats, c.result.stats, "{:?}", a.cell);
    }
}

#[test]
fn campaign_cells_enumerate_the_grid_in_order() {
    let campaign = fig6_style_campaign();
    let cells = campaign.cells();
    assert_eq!(cells.len(), 12);
    // Datasets outermost, then techniques, apps, policies.
    assert_eq!(cells[0].dataset, DatasetKind::Twitter);
    assert_eq!(cells[0].app, AppKind::PageRank);
    assert_eq!(cells[0].policy, PolicyKind::Rrip);
    assert_eq!(cells[1].policy, PolicyKind::Hawkeye);
    assert_eq!(cells[3].app, AppKind::Sssp);
    assert_eq!(cells[6].dataset, DatasetKind::Kron);
    for cell in &cells {
        assert_eq!(cell.technique, TechniqueKind::Dbg);
    }
}

#[test]
fn recorded_traces_match_between_parallel_and_serial_runs() {
    let results = Campaign::new(SCALE)
        .datasets(&[DatasetKind::Twitter])
        .apps(&[AppKind::PageRank])
        .policies(&[PolicyKind::Rrip])
        .recording_llc_trace()
        .threads(4)
        .run();
    let parallel = results
        .get(
            DatasetKind::Twitter,
            TechniqueKind::Dbg,
            AppKind::PageRank,
            PolicyKind::Rrip,
        )
        .expect("cell exists");
    let dataset = DatasetKind::Twitter.build(SCALE);
    let serial = Experiment::new(dataset.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg)
        .recording_llc_trace()
        .run(PolicyKind::Rrip);
    assert_eq!(
        serial.llc_trace.as_ref().expect("serial trace"),
        parallel.llc_trace.as_ref().expect("parallel trace"),
        "recorded LLC traces must be identical"
    );
}
