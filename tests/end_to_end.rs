//! End-to-end integration tests spanning every crate of the workspace:
//! dataset generation → reordering → application execution → cache
//! simulation → metric computation.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::cachesim::policy::opt::optimal_misses;
use grasp_suite::cachesim::request::RegionLabel;
use grasp_suite::core::compare::miss_reduction_pct;
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::reorder::TechniqueKind;

const SCALE: Scale = Scale::Tiny;

#[test]
fn every_application_runs_under_every_headline_policy() {
    let ds = DatasetKind::Twitter.build(SCALE);
    for app in AppKind::ALL {
        let exp = Experiment::new(ds.graph.clone(), app)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(TechniqueKind::Dbg);
        let baseline = exp.run(PolicyKind::Rrip);
        for policy in [
            PolicyKind::Lru,
            PolicyKind::ShipMem,
            PolicyKind::Hawkeye,
            PolicyKind::Leeway,
            PolicyKind::Pin(75),
            PolicyKind::Grasp,
        ] {
            let run = exp.run(policy);
            assert_eq!(
                run.app.values, baseline.app.values,
                "{app}/{policy}: cache policy must not change application results"
            );
            assert!(run.llc_accesses() > 0, "{app}/{policy}");
            assert!(run.cycles > 0.0, "{app}/{policy}");
        }
    }
}

#[test]
fn grasp_helps_on_skewed_datasets_and_stays_safe_on_uniform_ones() {
    // The headline claim of the paper at reproduction scale: positive miss
    // reduction on the skewed dataset, no meaningful degradation on the
    // uniform adversarial dataset.
    let skewed = DatasetKind::Kron.build(SCALE);
    let exp = Experiment::new(skewed.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let rrip = exp.run(PolicyKind::Rrip);
    let grasp = exp.run(PolicyKind::Grasp);
    let reduction = miss_reduction_pct(rrip.llc_misses(), grasp.llc_misses());
    assert!(
        reduction > -1.0,
        "GRASP must not lose to RRIP on a skewed dataset (got {reduction:.2}%)"
    );

    let uniform = DatasetKind::Uniform.build(SCALE);
    let exp = Experiment::new(uniform.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let rrip = exp.run(PolicyKind::Rrip);
    let grasp = exp.run(PolicyKind::Grasp);
    let reduction = miss_reduction_pct(rrip.llc_misses(), grasp.llc_misses());
    assert!(
        reduction > -5.0,
        "GRASP must stay robust on the uniform dataset (got {reduction:.2}%)"
    );
}

#[test]
fn reordering_reduces_misses_for_the_baseline() {
    // Skew-aware reordering alone (DBG) should not hurt, and usually helps,
    // LLC behaviour compared to the scrambled original order.
    let ds = DatasetKind::LiveJournal.build(SCALE);
    let original = Experiment::new(ds.graph.clone(), AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .run(PolicyKind::Rrip);
    let reordered = Experiment::new(ds.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg)
        .run(PolicyKind::Rrip);
    assert!(
        reordered.llc_misses() as f64 <= original.llc_misses() as f64 * 1.05,
        "DBG reordering should not increase misses materially: {} vs {}",
        reordered.llc_misses(),
        original.llc_misses()
    );
}

#[test]
fn recorded_traces_are_consistent_with_opt() {
    let ds = DatasetKind::Twitter.build(SCALE);
    let exp = Experiment::new(ds.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg)
        .recording_llc_trace();
    let run = exp.run(PolicyKind::Rrip);
    let trace = run.llc_trace.as_ref().expect("trace requested");
    assert_eq!(trace.demand_len() as u64, run.llc_accesses());
    // Belady's OPT on the demand stream can never miss more than the online
    // policy did.
    let opt = optimal_misses(&trace.demand_vec(), &SCALE.hierarchy().llc);
    assert!(opt.misses <= run.llc_misses());
    // The demand stream is dominated by Property Array accesses (Fig. 2's
    // claim).
    let property = trace
        .demand_accesses()
        .filter(|info| info.region == RegionLabel::Property)
        .count();
    assert!(
        property * 2 > trace.demand_len(),
        "property accesses should dominate the LLC trace ({property} of {})",
        trace.demand_len()
    );
}

#[test]
fn all_reordering_techniques_compose_with_all_apps() {
    let ds = DatasetKind::Pld.build(SCALE);
    for technique in TechniqueKind::ALL {
        let exp = Experiment::new(ds.graph.clone(), AppKind::Sssp)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(technique);
        let run = exp.run(PolicyKind::Grasp);
        assert!(run.llc_accesses() > 0, "{technique}");
        // Vertex relabelling must preserve the reachable distance multiset.
        let mut finite: Vec<u64> = run
            .app
            .values
            .iter()
            .filter(|v| v.is_finite())
            .map(|&v| v as u64)
            .collect();
        finite.sort_unstable();
        assert!(!finite.is_empty(), "{technique}");
    }
}
