//! The pipelined campaign scheduler must be a pure wall-clock optimization:
//! bit-identical to serial `Experiment::run` for arbitrary grids, worker
//! counts and trace-store configurations, always in deterministic grid
//! order — and actually barrier-free, which the scheduler event log proves
//! (replays of early streams finish before the last stream starts
//! recording).
//!
//! CI runs this suite at several forced worker counts (oversubscribed on
//! the 1-core container) via `GRASP_SCHED_WORKERS`; the fixed tests honour
//! it, the property tests sweep worker counts themselves.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::{Campaign, ExecutionMode, SchedulerEvent};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::core::trace_store::TraceStore;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

const SCALE: Scale = Scale::Tiny;

/// Roster the property tests draw datasets from (kept small: every case
/// regenerates and reorders its datasets).
const DATASETS: [DatasetKind; 3] = [
    DatasetKind::Twitter,
    DatasetKind::Kron,
    DatasetKind::Uniform,
];

/// Roster the property tests draw applications from.
const APPS: [AppKind; 3] = [AppKind::PageRank, AppKind::Sssp, AppKind::PageRankDelta];

/// Roster the property tests draw policy windows from (a slice of the full
/// 13-policy grid `tests/replay_parity.rs` pins; windows keep case cost
/// proportional to the drawn policy count).
const POLICIES: [PolicyKind; 6] = [
    PolicyKind::Lru,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Pin(75),
    PolicyKind::Grasp,
];

/// The worker count CI forces via `GRASP_SCHED_WORKERS`, when set.
fn forced_workers() -> Option<usize> {
    std::env::var("GRASP_SCHED_WORKERS").ok()?.parse().ok()
}

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grasp-sched-itest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The serial reference: one independent `Experiment::run` per cell.
fn serial_reference(campaign: &Campaign) -> Vec<grasp_suite::core::experiment::RunResult> {
    campaign
        .cells()
        .iter()
        .map(|cell| {
            let dataset = cell
                .dataset
                .as_synthetic()
                .expect("synthetic axis")
                .build(SCALE);
            Experiment::new(dataset.graph, cell.app)
                .with_hierarchy(SCALE.hierarchy())
                .with_reordering(cell.technique)
                .run(cell.policy)
        })
        .collect()
}

/// Asserts one campaign run is bit-identical to the serial reference and in
/// deterministic grid order.
fn assert_matches_serial(campaign: &Campaign, what: &str) -> Result<(), TestCaseError> {
    let expected_cells = campaign.cells();
    let reference = serial_reference(campaign);
    let results = campaign.run();
    prop_assert_eq!(results.len(), expected_cells.len(), "{}: grid size", what);
    for ((run, cell), serial) in results.iter().zip(&expected_cells).zip(&reference) {
        prop_assert_eq!(&run.cell, cell, "{}: grid order", what);
        prop_assert_eq!(
            &run.result.stats,
            &serial.stats,
            "{}: {}/{}/{} diverged from serial",
            what,
            cell.dataset,
            cell.app,
            cell.policy
        );
        prop_assert_eq!(
            &run.result.app.values,
            &serial.app.values,
            "{}: app output diverged",
            what
        );
        prop_assert!(
            (run.result.cycles - serial.cycles).abs() < 1e-9,
            "{}: timing model diverged",
            what
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipelined_grids_match_serial_runs_for_any_worker_count(
        case in (
            (1usize..4, 1usize..4),      // dataset count, app count
            (0usize..6, 1usize..5),      // policy window offset, width
            1usize..9,                   // worker count
            proptest::bool::ANY,         // trace store attached?
        )
    ) {
        let ((n_datasets, n_apps), (policy_at, n_policies), workers, with_store) = case;
        let policy_at = policy_at.min(POLICIES.len() - 1);
        let policies = &POLICIES[policy_at..(policy_at + n_policies).min(POLICIES.len())];
        let mut campaign = Campaign::new(SCALE)
            .datasets(&DATASETS[..n_datasets])
            .apps(&APPS[..n_apps])
            .policies(policies)
            .threads(workers);
        let mut store_dir = None;
        if with_store {
            let dir = temp_store_dir(&format!("prop-{n_datasets}{n_apps}{policy_at}{n_policies}{workers}"));
            let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
            campaign = campaign.with_trace_store(store);
            store_dir = Some(dir);
        }
        // Cold run records (and publishes when a store is attached).
        assert_matches_serial(&campaign, "pipelined cold")?;
        if with_store {
            // Warm run: every obtain task is a store load, overlapping the
            // replays exactly like records do.
            assert_matches_serial(&campaign, "pipelined warm")?;
        }
        if let Some(dir) = store_dir {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn streaming_gangs_match_serial_runs_for_any_pipeline_split(
        case in (1usize..9, 0usize..4, 1usize..4)
    ) {
        // The gang-pipelined streaming plan: any worker budget × any forced
        // pipeline count (0 = auto) over a multi-stream grid.
        let (workers, pipelines, n_apps) = case;
        let campaign = Campaign::new(SCALE)
            .datasets(&DATASETS[..2])
            .apps(&APPS[..n_apps])
            .policies(&POLICIES[..4])
            .streaming()
            .streaming_pipelines(pipelines)
            .threads(workers);
        assert_matches_serial(&campaign, "streaming gangs")?;
    }
}

/// The acceptance property of the tentpole: no record→replay barrier. On a
/// ≥ 8-stream grid with several workers, replays of early streams must
/// *finish* before the last stream's record *starts* — under the two-phase
/// plan every replay necessarily follows every record.
#[test]
fn replays_finish_before_the_last_record_starts() {
    let workers = forced_workers().unwrap_or(4).max(2);
    let campaign = Campaign::new(SCALE)
        .datasets(&[
            DatasetKind::Twitter,
            DatasetKind::Kron,
            DatasetKind::Uniform,
            DatasetKind::LiveJournal,
        ])
        .apps(&[AppKind::PageRank, AppKind::Sssp])
        .policies(&[PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp])
        .threads(workers);
    // 4 datasets × 1 technique × 2 apps = 8 unique streams.
    let results = campaign.run();
    assert_eq!(results.executed_mode(), ExecutionMode::Pipelined);

    let events = results.scheduler_events();
    let last_record_started = events
        .iter()
        .rposition(|e| matches!(e, SchedulerEvent::RecordStarted { .. }))
        .expect("a storeless campaign records every stream");
    let first_replay_finished = events
        .iter()
        .position(|e| matches!(e, SchedulerEvent::ReplayFinished { .. }))
        .expect("every cell replays");
    assert!(
        first_replay_finished < last_record_started,
        "no overlap: first ReplayFinished at {first_replay_finished}, \
         last RecordStarted at {last_record_started} (workers = {workers}, \
         events = {events:?})"
    );
}

/// Grid order must be identical across worker counts and execution plans —
/// the scheduler only moves wall-clock, never results or their order.
#[test]
fn grid_order_is_deterministic_across_worker_counts() {
    let base = || {
        Campaign::new(SCALE)
            .datasets(&[DatasetKind::Twitter, DatasetKind::Kron])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp])
    };
    let reference: Vec<_> = base().threads(1).run().into_runs();
    for workers in [2, 3, forced_workers().unwrap_or(7)] {
        let runs: Vec<_> = base().threads(workers).run().into_runs();
        assert_eq!(runs.len(), reference.len());
        for (a, b) in runs.iter().zip(&reference) {
            assert_eq!(a.cell, b.cell, "workers = {workers}");
            assert_eq!(a.result.stats, b.result.stats, "workers = {workers}");
        }
    }
}

/// A warm store turns every obtain task into a `Load`: the event log shows
/// loads (with hits) instead of records, and results stay bit-identical.
#[test]
fn warm_store_schedules_loads_instead_of_records() {
    let dir = temp_store_dir("warm-loads");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let campaign = Campaign::new(SCALE)
        .datasets(&[DatasetKind::Twitter, DatasetKind::Kron])
        .apps(&[AppKind::PageRank])
        .policies(&[PolicyKind::Lru, PolicyKind::Grasp])
        .threads(forced_workers().unwrap_or(4))
        .with_trace_store(store);

    let cold = campaign.run();
    let cold_loads = cold
        .scheduler_events()
        .iter()
        .filter(|e| matches!(e, SchedulerEvent::LoadStarted { .. }))
        .count();
    assert_eq!(cold_loads, 0, "an empty store cannot plan loads");

    let warm = campaign.run();
    let warm_records = warm
        .scheduler_events()
        .iter()
        .filter(|e| matches!(e, SchedulerEvent::RecordStarted { .. }))
        .count();
    assert_eq!(warm_records, 0, "a warm store must plan loads only");
    let hits = warm
        .scheduler_events()
        .iter()
        .filter(|e| matches!(e, SchedulerEvent::LoadFinished { hit: true, .. }))
        .count();
    assert_eq!(hits, 2, "both streams load from the store");
    for (a, b) in cold.iter().zip(warm.iter()) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
    }
    std::fs::remove_dir_all(&dir).ok();
}
