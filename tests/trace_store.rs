//! The persistent trace store must be a pure cost optimization: a campaign
//! served from the store (record phase skipped) produces `HierarchyStats`
//! bit-identical to a fresh record across the full 13-policy parity grid, in
//! both the buffered-replay and streaming execution plans, and corruption is
//! surfaced as a miss — never as silently wrong statistics.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::{Campaign, CampaignResult};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::core::trace_store::{Codec, TraceStore};
use std::path::PathBuf;
use std::sync::Arc;

const SCALE: Scale = Scale::Tiny;

/// The full policy roster of the evaluation (paper schemes, ablations and
/// sanity baselines) — the same grid `tests/replay_parity.rs` pins.
const FULL_GRID: [PolicyKind; 13] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(50),
    PolicyKind::Pin(100),
    PolicyKind::GraspHintsOnly,
    PolicyKind::GraspInsertionOnly,
    PolicyKind::Grasp,
];

fn temp_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grasp-store-itest-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn grid_campaign() -> Campaign {
    Campaign::new(SCALE)
        .datasets(&[DatasetKind::Twitter])
        .apps(&[AppKind::PageRank])
        .policies(&FULL_GRID)
        .threads(4)
}

fn assert_bit_identical(fresh: &CampaignResult, stored: &CampaignResult, what: &str) {
    assert_eq!(fresh.len(), stored.len(), "{what}: grid size");
    for (a, b) in fresh.iter().zip(stored.iter()) {
        assert_eq!(a.cell, b.cell, "{what}");
        assert_eq!(
            a.result.stats, b.result.stats,
            "{what}: {}/{}/{} diverged from the fresh record",
            a.cell.dataset, a.cell.app, a.cell.policy
        );
        assert_eq!(
            a.result.app.values, b.result.app.values,
            "{what}: app output diverged"
        );
        assert!(
            (a.result.cycles - b.result.cycles).abs() < 1e-12,
            "{what}: timing model diverged"
        );
    }
}

#[test]
fn store_hit_campaign_is_bit_identical_across_the_full_policy_grid() {
    let dir = temp_store_dir("grid");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));

    // Baseline: no store involved at all.
    let fresh = grid_campaign().run();

    // Cold run: every stream misses, gets recorded, and is published.
    let cold = grid_campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &cold, "cold store run");
    let stats = store.stats();
    assert_eq!(stats.hits, 0, "cold store cannot hit");
    assert_eq!(stats.misses, 1, "one unique stream misses once");
    assert!(stats.bytes_written > 0);

    // Warm run (buffered replay plan): the record phase is skipped.
    let warm = grid_campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &warm, "warm replay-mode run");
    assert_eq!(
        store.stats().hits,
        1,
        "warm run must be served by the store"
    );

    // Warm run (streaming plan): the loaded trace is re-broadcast through
    // the stream_into/ChunkReplayer pipeline.
    let streamed = grid_campaign()
        .streaming()
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&fresh, &streamed, "warm streaming run");
    let stats = store.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(stats.misses, 1, "warm runs must not re-record");
    assert!(stats.bytes_read > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn probe_classifies_without_reading() {
    // The scheduler plans a stream's obtain task from `TraceStore::probe`:
    // a miss probes false, a published entry probes true — and probing
    // never moves the traffic counters (it is a plan, not a load).
    let dir = temp_store_dir("probe");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let campaign = grid_campaign().with_trace_store(Arc::clone(&store));
    let cold = campaign.run();
    assert_eq!(
        cold.scheduler_events()
            .iter()
            .filter(|e| matches!(
                e,
                grasp_suite::core::campaign::SchedulerEvent::LoadStarted { .. }
            ))
            .count(),
        0,
        "an empty store must classify obtains as records"
    );
    let before = store.stats();
    let warm = campaign.run();
    assert_eq!(
        warm.scheduler_events()
            .iter()
            .filter(|e| matches!(
                e,
                grasp_suite::core::campaign::SchedulerEvent::LoadFinished { hit: true, .. }
            ))
            .count(),
        1,
        "a published entry must classify as a load and hit"
    );
    assert_eq!(
        store.stats().hits,
        before.hits + 1,
        "the load itself still counts traffic"
    );
    assert_bit_identical(&cold, &warm, "probe-planned warm run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_reuse_spans_processes_via_a_fresh_handle() {
    // A second `TraceStore::open` of the same directory models a later
    // process (campaign run in a new CI job with a restored cache): it must
    // hit entries published by the first handle.
    let dir = temp_store_dir("fresh-handle");
    let first = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let fresh = grid_campaign().run();
    let _ = grid_campaign().with_trace_store(first).run();

    let second = Arc::new(TraceStore::open(&dir).expect("store reopens"));
    let warm = grid_campaign().with_trace_store(Arc::clone(&second)).run();
    assert_bit_identical(&fresh, &warm, "fresh-handle warm run");
    let stats = second.stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_stream_grids_key_streams_independently() {
    let dir = temp_store_dir("multi");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let campaign = || {
        Campaign::new(SCALE)
            .datasets(&[DatasetKind::Twitter, DatasetKind::Kron])
            .apps(&[AppKind::PageRank, AppKind::Sssp])
            .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
            .threads(2)
    };
    let fresh = campaign().run();
    let cold = campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &cold, "multi-stream cold");
    assert_eq!(store.stats().misses, 4, "2 datasets x 2 apps = 4 streams");
    let warm = campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &warm, "multi-stream warm");
    assert_eq!(store.stats().hits, 4);
    assert_eq!(store.stats().misses, 4, "no re-records on the warm run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hierarchy_changes_never_reuse_a_stale_entry() {
    // Same grid coordinate, different LLC size: the config hash must fork
    // the key, so the second campaign records freshly instead of replaying
    // the wrong stream.
    let dir = temp_store_dir("config-fork");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let base = || {
        Campaign::new(SCALE)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Grasp])
    };
    let _ = base().with_trace_store(Arc::clone(&store)).run();
    assert_eq!(store.stats().misses, 1);

    let bigger = Scale::Small.hierarchy();
    let fresh = base().hierarchy(bigger).run();
    let stored = base()
        .hierarchy(bigger)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&fresh, &stored, "changed-hierarchy run");
    let stats = store.stats();
    assert_eq!(stats.hits, 0, "a different hierarchy must never hit");
    assert_eq!(stats.misses, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_codec_reuse_spans_the_v2_rollout() {
    // A store populated before the codec rollout holds raw `.v1.trace`
    // entries. A campaign publishing v2 delta-varint entries must still be
    // *served* by them (the stream is identical, only the encoding differs)
    // — no re-record, bit-identical stats — and vice versa: v2 entries
    // serve a raw-codec campaign.
    let dir = temp_store_dir("cross-codec");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let fresh = grid_campaign().run();

    // Cold pass publishing raw (the pre-rollout world).
    let cold = grid_campaign()
        .trace_codec(Codec::Raw)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&fresh, &cold, "raw cold run");
    let raw_entries = store.entries().expect("entries");
    assert_eq!(raw_entries.len(), 1);
    assert!(
        raw_entries[0].file.ends_with(".v1.trace"),
        "{}",
        raw_entries[0].file
    );

    // Warm pass keyed for delta-varint: served from the v1 entry.
    let warm = grid_campaign()
        .trace_codec(Codec::DeltaVarint)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&fresh, &warm, "delta-varint warm run over a v1 store");
    let stats = store.stats();
    assert_eq!(stats.hits, 1, "the v1 entry must serve the v2-keyed lookup");
    assert_eq!(stats.misses, 1, "only the cold pass may record");
    assert_eq!(
        store.entries().expect("entries").len(),
        1,
        "a fallback hit must not publish a duplicate entry"
    );

    // And the streaming plan takes the same fallback path.
    let streamed = grid_campaign()
        .streaming()
        .trace_codec(Codec::DeltaVarint)
        .with_trace_store(Arc::clone(&store))
        .run();
    assert_bit_identical(&fresh, &streamed, "streaming warm run over a v1 store");
    assert_eq!(store.stats().hits, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recompress_migration_shrinks_the_store_and_keeps_serving_hits() {
    let dir = temp_store_dir("recompress");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let fresh = grid_campaign().run();

    // Publish raw, then migrate the store to delta-varint in place.
    let _ = grid_campaign()
        .trace_codec(Codec::Raw)
        .with_trace_store(Arc::clone(&store))
        .run();
    let before: u64 = store
        .entries()
        .expect("entries")
        .iter()
        .map(|e| e.bytes)
        .sum();
    let report = store.recompress(Codec::DeltaVarint).expect("recompress");
    assert_eq!(report.converted.len(), 1);
    assert!(report.failed.is_empty());
    let after: u64 = store
        .entries()
        .expect("entries")
        .iter()
        .map(|e| e.bytes)
        .sum();
    assert!(
        after * 2 < before,
        "migration must at least halve the paper-workload store: {before} -> {after}"
    );
    let entries = store.entries().expect("entries");
    assert_eq!(entries.len(), 1);
    assert!(
        entries[0].file.ends_with(".v2.trace"),
        "{}",
        entries[0].file
    );
    assert!(store
        .verify()
        .expect("verify")
        .iter()
        .all(|(_, outcome)| outcome.is_ok()));

    // Campaigns under either codec key are served by the migrated entry,
    // bit-identically.
    for codec in [Codec::DeltaVarint, Codec::Raw] {
        let warm = grid_campaign()
            .trace_codec(codec)
            .with_trace_store(Arc::clone(&store))
            .run();
        assert_bit_identical(&fresh, &warm, "post-migration warm run");
    }
    let stats = store.stats();
    assert_eq!(stats.hits, 2);
    assert_eq!(
        stats.misses, 1,
        "only the cold pass misses — migration must never cost a re-record"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_entries_fall_back_to_fresh_recording() {
    let dir = temp_store_dir("corrupt");
    let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
    let fresh = grid_campaign().run();
    let _ = grid_campaign().with_trace_store(Arc::clone(&store)).run();

    // Flip a byte in every entry.
    for entry in store.entries().expect("entries") {
        let path = dir.join(&entry.file);
        let mut bytes = std::fs::read(&path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted");
    }

    let recovered = grid_campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &recovered, "corrupt-entry recovery");
    let stats = store.stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.corrupt, 1, "the corrupt entry must be detected");
    assert_eq!(stats.misses, 2);

    // The fresh recording overwrote the corrupt entry: verify passes and
    // the next run hits again.
    assert!(store
        .verify()
        .expect("verify")
        .iter()
        .all(|(_, outcome)| outcome.is_ok()));
    let warm = grid_campaign().with_trace_store(Arc::clone(&store)).run();
    assert_bit_identical(&fresh, &warm, "post-recovery warm run");
    assert_eq!(store.stats().hits, 1);
    std::fs::remove_dir_all(&dir).ok();
}
