//! The record-once / replay-many pipeline must be a pure wall-clock
//! optimization: replay-mode campaign results bit-identical to serial
//! `Experiment::run` across the full policy grid, and `LlcTrace::replay`
//! reproducing complete `HierarchyStats` — not just LLC miss counts.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::{Campaign, ExecutionMode};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::reorder::TechniqueKind;

const SCALE: Scale = Scale::Tiny;

/// The full policy roster of the evaluation (paper schemes, ablations and
/// sanity baselines).
const FULL_GRID: [PolicyKind; 13] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(50),
    PolicyKind::Pin(100),
    PolicyKind::GraspHintsOnly,
    PolicyKind::GraspInsertionOnly,
    PolicyKind::Grasp,
];

#[test]
fn replay_campaign_matches_serial_experiments_across_the_full_policy_grid() {
    let results = Campaign::new(SCALE)
        .datasets(&[DatasetKind::Twitter])
        .apps(&[AppKind::PageRank, AppKind::Sssp])
        .policies(&FULL_GRID)
        .threads(4)
        .run();
    assert_eq!(results.len(), 2 * FULL_GRID.len());
    for run in results.iter() {
        let cell = run.cell;
        let dataset = cell
            .dataset
            .as_synthetic()
            .expect("synthetic axis")
            .build(SCALE);
        let serial = Experiment::new(dataset.graph, cell.app)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(cell.technique)
            .run(cell.policy);
        assert_eq!(
            serial.stats, run.result.stats,
            "{}/{}/{}: replayed stats diverged from serial",
            cell.dataset, cell.app, cell.policy
        );
        assert_eq!(
            serial.app.values, run.result.app.values,
            "app output diverged"
        );
        assert!(
            (serial.cycles - run.result.cycles).abs() < 1e-9,
            "timing model diverged"
        );
    }
}

#[test]
fn replay_and_direct_modes_agree_for_every_technique() {
    for technique in [TechniqueKind::Identity, TechniqueKind::Dbg] {
        let campaign = |mode: ExecutionMode| {
            Campaign::new(SCALE)
                .datasets(&[DatasetKind::Kron])
                .techniques(&[technique])
                .apps(&[AppKind::PageRankDelta])
                .policies(&[PolicyKind::Rrip, PolicyKind::Hawkeye, PolicyKind::Grasp])
                .execution(mode)
                .threads(4)
                .run()
        };
        let replayed = campaign(ExecutionMode::Replay);
        let direct = campaign(ExecutionMode::Direct);
        assert_eq!(replayed.len(), direct.len());
        for (a, b) in replayed.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{technique} {:?}", a.cell);
        }
    }
}

#[test]
fn pipelined_campaign_matches_both_barrier_plans_across_the_full_policy_grid() {
    // The dependency-driven scheduler (the default plan) against the
    // two-phase barrier plan and the direct plan, for all 13 policies over
    // a multi-stream grid: pipelining may only move wall-clock, never
    // statistics, app output or timing.
    let campaign = |mode: ExecutionMode| {
        Campaign::new(SCALE)
            .datasets(&[DatasetKind::Twitter, DatasetKind::Kron])
            .apps(&[AppKind::PageRank, AppKind::Sssp])
            .policies(&FULL_GRID)
            .execution(mode)
            .threads(4)
            .run()
    };
    let pipelined = campaign(ExecutionMode::Pipelined);
    let replayed = campaign(ExecutionMode::Replay);
    let direct = campaign(ExecutionMode::Direct);
    assert_eq!(pipelined.len(), 4 * FULL_GRID.len());
    assert_eq!(pipelined.len(), replayed.len());
    assert_eq!(pipelined.len(), direct.len());
    for ((a, b), c) in pipelined.iter().zip(replayed.iter()).zip(direct.iter()) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.cell, c.cell);
        assert_eq!(
            a.result.stats, b.result.stats,
            "{}/{}/{}: pipelined diverged from the barrier replay plan",
            a.cell.dataset, a.cell.app, a.cell.policy
        );
        assert_eq!(
            a.result.stats, c.result.stats,
            "{}/{}/{}: pipelined diverged from direct simulation",
            a.cell.dataset, a.cell.app, a.cell.policy
        );
        assert_eq!(a.result.app.values, b.result.app.values);
        assert_eq!(a.result.app.values, c.result.app.values);
        assert!((a.result.cycles - b.result.cycles).abs() < 1e-9);
        assert!((a.result.cycles - c.result.cycles).abs() < 1e-9);
    }
}

#[test]
fn streaming_campaign_matches_the_replay_plan_across_the_full_policy_grid() {
    let campaign = |mode: ExecutionMode| {
        Campaign::new(SCALE)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&FULL_GRID)
            .execution(mode)
            .threads(4)
            .run()
    };
    let streamed = campaign(ExecutionMode::Streaming);
    let replayed = campaign(ExecutionMode::Replay);
    assert_eq!(streamed.len(), FULL_GRID.len());
    for (a, b) in streamed.iter().zip(replayed.iter()) {
        assert_eq!(a.cell, b.cell);
        assert_eq!(
            a.result.stats, b.result.stats,
            "{}: streaming diverged from buffered replay",
            a.cell.policy
        );
        assert_eq!(a.result.app.values, b.result.app.values);
        assert!((a.result.cycles - b.result.cycles).abs() < 1e-9);
    }
}

#[test]
fn streaming_sweep_matches_buffered_replays_of_one_recording() {
    let dataset = DatasetKind::Kron.build(SCALE);
    let exp = Experiment::new(dataset.graph, AppKind::PageRankDelta)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let recorded = exp.record();
    let streamed = exp.sweep_streaming(&FULL_GRID, 3);
    for (&policy, stream_run) in FULL_GRID.iter().zip(&streamed) {
        let buffered = recorded.replay(policy);
        assert_eq!(stream_run.policy, policy);
        assert_eq!(buffered.stats, stream_run.stats, "{policy}");
        assert_eq!(buffered.app.values, stream_run.app.values, "{policy}");
    }
}

#[test]
fn batched_scalar_streamed_and_direct_replays_agree_across_the_full_policy_grid() {
    // The batched chunk-native replay kernel against every other execution
    // path, for all 13 policies: batched buffered replay (the default), the
    // per-event scalar reference, the shared-decode policy fan-out, the
    // streaming pipeline (which feeds the batched kernel chunk by chunk),
    // and direct simulation.
    let dataset = DatasetKind::Twitter.build(SCALE);
    let exp = Experiment::new(dataset.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let recorded = exp.record();
    let streamed = exp.sweep_streaming(&FULL_GRID, 3);
    let fanout = recorded.replay_fanout(&FULL_GRID);
    assert_eq!(fanout.len(), FULL_GRID.len());
    for ((&policy, stream_run), fanout_run) in FULL_GRID.iter().zip(&streamed).zip(&fanout) {
        let batched = recorded.replay(policy);
        let scalar = recorded.replay_scalar(policy);
        let direct = exp.run(policy);
        assert_eq!(
            batched.stats, scalar.stats,
            "{policy}: batched replay diverged from the per-event path"
        );
        assert_eq!(
            batched.stats, fanout_run.stats,
            "{policy}: batched replay diverged from the shared-decode fan-out"
        );
        assert_eq!(
            batched.stats, stream_run.stats,
            "{policy}: batched replay diverged from streaming"
        );
        assert_eq!(
            batched.stats, direct.stats,
            "{policy}: batched replay diverged from direct simulation"
        );
        assert!((batched.cycles - scalar.cycles).abs() < 1e-12, "{policy}");
        assert!(
            (batched.cycles - fanout_run.cycles).abs() < 1e-12,
            "{policy}"
        );
    }
}

#[test]
fn batched_recording_matches_per_event_recording_across_the_full_policy_grid() {
    // The record side of the pipeline: the batched record kernel (buffered
    // workspace → `UpperLevels::access_batch` → bulk sink) against the
    // per-event reference. The recordings must be byte-identical — trace
    // columns and persisted v2 bytes — and every policy of the full grid
    // must replay them to the same statistics whether the replay side is
    // batched or scalar, so record-batched → replay-batched equals the
    // all-scalar pipeline end to end.
    for (dataset, app) in [
        (DatasetKind::Twitter, AppKind::PageRank),
        (DatasetKind::Kron, AppKind::Sssp),
    ] {
        let built = dataset.build(SCALE);
        let exp = Experiment::new(built.graph, app)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(TechniqueKind::Dbg);
        let batched = exp.record();
        let scalar = exp.record_scalar();
        assert_eq!(
            batched.trace(),
            scalar.trace(),
            "{dataset}/{app}: batched recording diverged from per-event"
        );
        assert_eq!(batched.app().values, scalar.app().values, "{dataset}/{app}");
        assert_eq!(batched.instructions(), scalar.instructions());
        let bytes = |run: &grasp_suite::core::experiment::RecordedRun| {
            let mut bytes = Vec::new();
            run.trace()
                .write_to(&mut bytes)
                .expect("in-memory persist cannot fail");
            bytes
        };
        assert_eq!(
            bytes(&batched),
            bytes(&scalar),
            "{dataset}/{app}: persisted v2 bytes diverged"
        );
        for &policy in &FULL_GRID {
            let from_batched = batched.replay(policy);
            let from_scalar = scalar.replay_scalar(policy);
            assert_eq!(
                from_batched.stats, from_scalar.stats,
                "{dataset}/{app}/{policy}: record-batched → replay-batched \
                 diverged from the all-scalar pipeline"
            );
            assert!((from_batched.cycles - from_scalar.cycles).abs() < 1e-12);
        }
    }
}

#[test]
fn recorded_stream_replays_deterministically() {
    let dataset = DatasetKind::Twitter.build(SCALE);
    let exp = Experiment::new(dataset.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let recorded = exp.record();
    for policy in [PolicyKind::Rrip, PolicyKind::Grasp] {
        let a = recorded.replay(policy);
        let b = recorded.replay(policy);
        assert_eq!(a.stats, b.stats, "{policy}: replay must be deterministic");
        assert_eq!(a.cycles, b.cycles);
    }
}

#[test]
fn two_recordings_of_the_same_cell_are_identical() {
    let dataset = DatasetKind::Kron.build(SCALE);
    let exp = Experiment::new(dataset.graph, AppKind::Radii)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let a = exp.record();
    let b = exp.record();
    assert_eq!(a.trace(), b.trace(), "recording must be deterministic");
    assert_eq!(a.app().values, b.app().values);
}

#[test]
fn replayed_hierarchy_stats_carry_upper_levels_and_memory_traffic() {
    let dataset = DatasetKind::Twitter.build(SCALE);
    let exp = Experiment::new(dataset.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Dbg);
    let direct = exp.run(PolicyKind::Grasp);
    let replayed = exp.record().replay(PolicyKind::Grasp);
    // Spot-check the pieces a shallow parity test could miss: L1/L2 stats,
    // per-region counters, prefetch and writeback counters, memory traffic.
    assert_eq!(direct.stats.l1, replayed.stats.l1);
    assert_eq!(direct.stats.l2, replayed.stats.l2);
    assert_eq!(
        direct.stats.llc.prefetch_accesses,
        replayed.stats.llc.prefetch_accesses
    );
    assert_eq!(
        direct.stats.llc.writeback_accesses,
        replayed.stats.llc.writeback_accesses
    );
    assert_eq!(direct.stats.memory_accesses, replayed.stats.memory_accesses);
    assert!(replayed.stats.llc.accesses > 0);
}
