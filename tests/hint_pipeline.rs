//! Integration tests for the GRASP software/hardware interface: the
//! application programs the Address Bound Registers, the classifier attaches
//! reuse hints, and hint-consuming policies see them at the LLC.

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::cachesim::hint::ReuseHint;
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::reorder::TechniqueKind;

const SCALE: Scale = Scale::Tiny;

fn hint_histogram(app: AppKind, reorder: TechniqueKind) -> (u64, u64, u64, u64) {
    let ds = DatasetKind::Kron.build(SCALE);
    let exp = Experiment::new(ds.graph, app)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(reorder)
        .recording_llc_trace();
    let run = exp.run(PolicyKind::Rrip);
    let trace = run.llc_trace.expect("trace requested");
    let mut counts = (0u64, 0u64, 0u64, 0u64);
    for info in trace.demand_accesses() {
        match info.hint {
            ReuseHint::High => counts.0 += 1,
            ReuseHint::Moderate => counts.1 += 1,
            ReuseHint::Low => counts.2 += 1,
            ReuseHint::Default => counts.3 += 1,
        }
    }
    counts
}

#[test]
fn abr_programming_produces_classified_llc_requests() {
    for app in [AppKind::PageRank, AppKind::Sssp, AppKind::Radii] {
        let (high, moderate, low, default) = hint_histogram(app, TechniqueKind::Dbg);
        assert!(high > 0, "{app}: no High-Reuse LLC requests");
        assert!(low > 0, "{app}: no Low-Reuse LLC requests");
        assert_eq!(
            default, 0,
            "{app}: once the ABRs are programmed nothing should be classified Default"
        );
        // The Moderate region only exists when the Property Array spans more
        // than one LLC capacity; at the Tiny test scale this is only
        // guaranteed for applications with three property fields (Radii).
        if app == AppKind::Radii {
            assert!(moderate > 0, "{app}: no Moderate-Reuse LLC requests");
        }
    }
}

#[test]
fn grasp_benefits_from_skew_aware_reordering() {
    // GRASP relies on a segregating reordering to make the High region
    // meaningful: combined with DBG it must do at least as well as when the
    // vertices keep their original (unsegregated) order.
    let ds = DatasetKind::Kron.build(SCALE);
    let run_with = |technique: TechniqueKind| {
        Experiment::new(ds.graph.clone(), AppKind::PageRankDelta)
            .with_hierarchy(SCALE.hierarchy())
            .with_reordering(technique)
            .run(PolicyKind::Grasp)
            .llc_misses()
    };
    let with_dbg = run_with(TechniqueKind::Dbg);
    let with_identity = run_with(TechniqueKind::Identity);
    assert!(
        with_dbg as f64 <= with_identity as f64 * 1.05,
        "GRASP with DBG ({with_dbg}) should not lose to GRASP without reordering ({with_identity})"
    );
}

#[test]
fn hint_consuming_policies_behave_identically_without_skew_aware_layout() {
    // With the identity ordering the High region holds arbitrary vertices, so
    // GRASP falls back to roughly baseline behaviour — the robustness
    // argument of Sec. V-B. Allow a generous tolerance; the point is that it
    // does not collapse.
    let ds = DatasetKind::Uniform.build(SCALE);
    let exp = Experiment::new(ds.graph, AppKind::PageRank)
        .with_hierarchy(SCALE.hierarchy())
        .with_reordering(TechniqueKind::Identity);
    let rrip = exp.run(PolicyKind::Rrip);
    let grasp = exp.run(PolicyKind::Grasp);
    let ratio = grasp.llc_misses() as f64 / rrip.llc_misses() as f64;
    assert!(
        ratio < 1.10,
        "GRASP must stay within 10% of RRIP even in the adversarial case (ratio {ratio:.3})"
    );
}
