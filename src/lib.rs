//! # grasp-suite — umbrella crate for the GRASP (HPCA'20) reproduction
//!
//! This crate re-exports the individual workspace crates under one roof so
//! that examples and downstream users can depend on a single crate:
//!
//! * [`graph`] — graph substrate (CSR, generators, skew analysis).
//! * [`reorder`] — skew-aware vertex reordering (Sort, HubSort, DBG, Gorder).
//! * [`cachesim`] — cache-hierarchy simulator and replacement policies.
//! * [`analytics`] — Ligra-style vertex-centric applications with memory
//!   tracing.
//! * [`core`] — GRASP itself: reuse hints, experiment orchestration,
//!   dataset catalog and reporting.
//!
//! See the `examples/` directory for end-to-end walkthroughs and
//! `DESIGN.md` / `EXPERIMENTS.md` for how each table and figure of the paper
//! is regenerated.

pub use grasp_analytics as analytics;
pub use grasp_cachesim as cachesim;
pub use grasp_core as core;
pub use grasp_graph as graph;
pub use grasp_reorder as reorder;
