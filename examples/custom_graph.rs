//! Bring-your-own graph: build a graph from an explicit edge list (as you
//! would after parsing a SNAP/KONECT download), push it through the whole
//! GRASP pipeline — skew analysis, DBG reordering, ABR programming, cache
//! simulation — and compare RRIP against GRASP.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_graph [path/to/edge_list.txt]
//! ```

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::compare::miss_reduction_pct;
use grasp_suite::core::datasets::Scale;
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::graph::degree::SkewReport;
use grasp_suite::graph::generators::{ChungLu, GraphGenerator};
use grasp_suite::graph::{io, Csr};
use grasp_suite::reorder::TechniqueKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Load a user-supplied edge list if given; otherwise synthesize one and
    // round-trip it through the text format to demonstrate the I/O path.
    let graph = match args.get(1) {
        Some(path) => {
            println!("Loading edge list from {path} ...");
            let edges = io::read_edge_list_file(path).expect("failed to read the edge list");
            Csr::from_edge_list(&edges).expect("failed to build the CSR graph")
        }
        None => {
            println!("No edge list given; generating a skewed example graph instead.");
            let edges = ChungLu::new(1 << 13, 12, 2.1).edge_list(42);
            let dir = std::env::temp_dir().join("grasp_custom_graph_example.txt");
            io::write_edge_list_file(&dir, &edges).expect("failed to write the example edge list");
            let edges = io::read_edge_list_file(&dir).expect("failed to re-read the edge list");
            Csr::from_edge_list(&edges).expect("failed to build the CSR graph")
        }
    };

    println!(
        "Graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.edge_count()
    );
    println!("  in-edge skew : {}", SkewReport::for_in_edges(&graph));
    println!("  out-edge skew: {}", SkewReport::for_out_edges(&graph));

    let scale = Scale::Small;
    for app in [AppKind::PageRank, AppKind::Sssp] {
        let experiment = Experiment::new(graph.clone(), app)
            .with_hierarchy(scale.hierarchy())
            .with_reordering(TechniqueKind::Dbg);
        let rrip = experiment.run(PolicyKind::Rrip);
        let grasp = experiment.run(PolicyKind::Grasp);
        println!(
            "  {app:>4}: GRASP eliminates {:.1}% of RRIP's {} LLC misses",
            miss_reduction_pct(rrip.llc_misses(), grasp.llc_misses()),
            rrip.llc_misses()
        );
    }
}
