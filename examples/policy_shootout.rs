//! Policy shoot-out: run one application over one dataset under every LLC
//! management scheme of the paper and print a ranking.
//!
//! Run with (choose dataset/app by arguments):
//!
//! ```text
//! cargo run --release --example policy_shootout -- tw PR
//! ```

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::compare::{miss_reduction_pct, speedup_pct};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::core::report::Table;
use grasp_suite::reorder::TechniqueKind;

fn parse_dataset(label: &str) -> DatasetKind {
    DatasetKind::ALL
        .into_iter()
        .find(|d| d.label() == label)
        .unwrap_or(DatasetKind::Twitter)
}

fn parse_app(label: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.label().eq_ignore_ascii_case(label))
        .unwrap_or(AppKind::PageRank)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_kind = parse_dataset(args.get(1).map(String::as_str).unwrap_or("tw"));
    let app = parse_app(args.get(2).map(String::as_str).unwrap_or("PR"));
    let scale = Scale::from_env();

    println!("Dataset {dataset_kind}, application {app}, scale {scale:?}");
    let dataset = dataset_kind.build(scale);
    let experiment = Experiment::new(dataset.graph, app)
        .with_hierarchy(scale.hierarchy())
        .with_reordering(TechniqueKind::Dbg);

    let baseline = experiment.run(PolicyKind::Rrip);
    let mut table = Table::new(
        format!("{app} on {dataset_kind}: every policy vs the RRIP baseline"),
        &["policy", "LLC misses", "misses eliminated (%)", "speed-up (%)"],
    );
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Rrip,
        PolicyKind::ShipMem,
        PolicyKind::Hawkeye,
        PolicyKind::Leeway,
        PolicyKind::Pin(75),
        PolicyKind::Pin(100),
        PolicyKind::GraspHintsOnly,
        PolicyKind::GraspInsertionOnly,
        PolicyKind::Grasp,
    ];
    for policy in policies {
        let run = experiment.run(policy);
        table.push_row(vec![
            policy.label().to_owned(),
            run.llc_misses().to_string(),
            format!(
                "{:.1}",
                miss_reduction_pct(baseline.llc_misses(), run.llc_misses())
            ),
            format!("{:.1}", speedup_pct(baseline.cycles, run.cycles)),
        ]);
    }
    println!("{table}");
}
