//! Policy shoot-out: run one application over one dataset under every LLC
//! management scheme of the paper and print a ranking.
//!
//! Run with (choose dataset/app by arguments):
//!
//! ```text
//! cargo run --release --example policy_shootout -- tw PR
//! ```

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::campaign::Campaign;
use grasp_suite::core::compare::{miss_reduction_pct, speedup_pct};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::core::report::Table;
use grasp_suite::reorder::TechniqueKind;

fn parse_dataset(label: &str) -> DatasetKind {
    DatasetKind::ALL
        .into_iter()
        .find(|d| d.label() == label)
        .unwrap_or(DatasetKind::Twitter)
}

fn parse_app(label: &str) -> AppKind {
    AppKind::ALL
        .into_iter()
        .find(|a| a.label().eq_ignore_ascii_case(label))
        .unwrap_or(AppKind::PageRank)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_kind = parse_dataset(args.get(1).map(String::as_str).unwrap_or("tw"));
    let app = parse_app(args.get(2).map(String::as_str).unwrap_or("PR"));
    let scale = Scale::from_env();

    println!("Dataset {dataset_kind}, application {app}, scale {scale:?}");
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Rrip,
        PolicyKind::ShipMem,
        PolicyKind::Hawkeye,
        PolicyKind::Leeway,
        PolicyKind::Pin(75),
        PolicyKind::Pin(100),
        PolicyKind::GraspHintsOnly,
        PolicyKind::GraspInsertionOnly,
        PolicyKind::Grasp,
    ];
    // One replay-mode campaign: the dataset is generated and DBG-reordered
    // once, the application executes once to record the post-L2 stream, and
    // every policy is evaluated by replaying that stream — bit-identical to
    // simulating each policy from scratch, at a fraction of the cost.
    let results = Campaign::new(scale)
        .datasets(&[dataset_kind])
        .apps(&[app])
        .policies(&policies)
        .run();

    let baseline = results
        .get(dataset_kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
        .expect("baseline cell");
    let mut table = Table::new(
        format!("{app} on {dataset_kind}: every policy vs the RRIP baseline"),
        &[
            "policy",
            "LLC misses",
            "misses eliminated (%)",
            "speed-up (%)",
        ],
    );
    for run in results.iter() {
        table.push_row(vec![
            run.cell.policy.label().to_owned(),
            run.result.llc_misses().to_string(),
            format!(
                "{:.1}",
                miss_reduction_pct(baseline.llc_misses(), run.result.llc_misses())
            ),
            format!("{:.1}", speedup_pct(baseline.cycles, run.result.cycles)),
        ]);
    }
    println!("{table}");
}
