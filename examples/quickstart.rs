//! Quickstart: generate a Twitter-like graph, reorder it with DBG, run
//! PageRank through the simulated cache hierarchy under RRIP and GRASP, and
//! print the miss reduction and estimated speed-up.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use grasp_suite::analytics::apps::AppKind;
use grasp_suite::core::compare::{miss_reduction_pct, speedup_pct};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::policy::PolicyKind;
use grasp_suite::graph::degree::SkewReport;
use grasp_suite::reorder::TechniqueKind;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Building a Twitter-like power-law graph ({:?} scale)...",
        scale
    );
    let dataset = DatasetKind::Twitter.build(scale);
    let skew = SkewReport::for_in_edges(&dataset.graph);
    println!(
        "  {} vertices, {} edges; hot vertices {:.1}% covering {:.1}% of edges",
        dataset.graph.vertex_count(),
        dataset.graph.edge_count(),
        skew.hot_vertices_pct(),
        skew.edge_coverage_pct()
    );

    println!("Reordering with DBG and running PageRank through the cache simulator...");
    let experiment = Experiment::new(dataset.graph, AppKind::PageRank)
        .with_hierarchy(scale.hierarchy())
        .with_reordering(TechniqueKind::Dbg);

    let rrip = experiment.run(PolicyKind::Rrip);
    let grasp = experiment.run(PolicyKind::Grasp);

    println!(
        "  RRIP : {:>10} LLC misses ({:.1}% miss ratio)",
        rrip.llc_misses(),
        rrip.stats.llc.miss_ratio() * 100.0
    );
    println!(
        "  GRASP: {:>10} LLC misses ({:.1}% miss ratio)",
        grasp.llc_misses(),
        grasp.stats.llc.miss_ratio() * 100.0
    );
    println!(
        "  GRASP eliminates {:.1}% of LLC misses and is an estimated {:.1}% faster",
        miss_reduction_pct(rrip.llc_misses(), grasp.llc_misses()),
        speedup_pct(rrip.cycles, grasp.cycles)
    );
}
