//! Reordering study (native execution): measure the wall-clock benefit of
//! each skew-aware reordering technique — including its reordering cost — on
//! a real machine, mirroring the methodology of Fig. 10(a).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example reordering_study -- kr
//! ```

use grasp_suite::analytics::apps::{AppConfig, AppKind};
use grasp_suite::core::datasets::{DatasetKind, Scale};
use grasp_suite::core::experiment::Experiment;
use grasp_suite::core::report::Table;
use grasp_suite::reorder::{cost::run_boxed, TechniqueKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_kind = DatasetKind::ALL
        .into_iter()
        .find(|d| Some(d.label()) == args.get(1).map(String::as_str))
        .unwrap_or(DatasetKind::Kron);
    let scale = Scale::from_env();
    let app = AppKind::PageRank;
    println!("Native reordering study: {app} on {dataset_kind} ({scale:?} scale)");

    let dataset = dataset_kind.build(scale);
    let app_config = AppConfig {
        max_iterations: 20,
        epsilon: 0.0,
        ..AppConfig::default()
    };

    // Baseline: original vertex order.
    let baseline = Experiment::new(dataset.graph.clone(), app)
        .with_app_config(app_config)
        .run_native();
    println!(
        "  original order: {:.3} ms",
        baseline.runtime.as_secs_f64() * 1e3
    );

    let mut table = Table::new(
        "Net speed-up including reordering cost (cf. Fig. 10a)",
        &["technique", "reorder (ms)", "app (ms)", "net speed-up (%)"],
    );
    for kind in [
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
        TechniqueKind::GorderDbg,
    ] {
        let technique = kind.instantiate();
        let outcome = run_boxed(technique.as_ref(), &dataset.graph, app.hotness_direction());
        let run = Experiment::new(outcome.graph.clone(), app)
            .with_app_config(app_config)
            .run_native();
        let total = outcome.total_time() + run.runtime;
        let net_speedup = (baseline.runtime.as_secs_f64() / total.as_secs_f64() - 1.0) * 100.0;
        table.push_row(vec![
            kind.label().to_owned(),
            format!("{:.3}", outcome.total_time().as_secs_f64() * 1e3),
            format!("{:.3}", run.runtime.as_secs_f64() * 1e3),
            format!("{net_speedup:.1}"),
        ]);
    }
    println!("{table}");
}
