//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, and the
//! workspace only uses `#[derive(Serialize, Deserialize)]` as inert markers
//! (nothing is actually serialized at run time). These derives therefore
//! expand to nothing; swapping the real serde back in is a one-line change in
//! the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
