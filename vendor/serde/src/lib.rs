//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names (so `use serde::{...}`
//! resolves) and re-exports the no-op derive macros from the local
//! `serde_derive` stub. The workspace uses the derives purely as inert
//! markers; nothing is serialized at run time in this environment.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
