//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: integer-range and tuple strategies, `collection::vec`,
//! `bool::ANY`, `prop_map`/`prop_flat_map`, the `proptest!` macro and the
//! `prop_assert*` family. Generation is randomized but fully deterministic
//! (a fixed xorshift seed per test), so failures are reproducible. Shrinking
//! is not implemented — a failing case is reported as-is.

/// Test-case failure plumbing (`TestCaseError`, runner `Config`).
pub mod test_runner {
    /// Why a property test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure message.
        pub message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type of a generated property-test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runs one generated case through the test body. The generic parameter
    /// pins the closure's argument type to the strategy's value type, which
    /// keeps inference stable inside the `proptest!` expansion.
    pub fn run_case<V, F: FnOnce(V) -> TestCaseResult>(value: V, body: F) -> TestCaseResult {
        body(value)
    }

    /// Runner configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed (zero is mapped to a constant).
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    start + rng.below(span + 1) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

/// Boolean strategies.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// Declares property tests: each `fn name(binding in strategy) { body }` runs
/// the body over `Config::cases` generated values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($binding:ident in $strat:expr) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = $strat;
            // Seed from the test name so distinct properties explore distinct
            // streams, deterministically across runs.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf29ce484222325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x100000001b3)
                });
            let mut rng = $crate::test_runner::TestRng::new(seed);
            for case in 0..config.cases {
                let value = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let outcome = $crate::test_runner::run_case(value, |$binding| {
                    $body
                    Ok(())
                });
                if let Err(e) = outcome {
                    panic!("property '{}' failed at case {}: {}", stringify!($name), case, e);
                }
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::Config::default()) $($rest)*);
    };
}
