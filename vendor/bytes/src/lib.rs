//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the workspace uses: little-endian `Buf`
//! reads over `&[u8]`, `BufMut` writes into a growable buffer, and the
//! `BytesMut::freeze` → [`Bytes`] handoff. Semantics match the real crate
//! for this subset (panics on out-of-bounds reads, advancing cursors).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst` and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32` and advances the cursor.
    fn get_u32_le(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.copy_to_slice(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Reads a little-endian `u64` and advances the cursor.
    fn get_u64_le(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.copy_to_slice(&mut buf);
        u64::from_le_bytes(buf)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink for growable byte buffers.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }
}

/// A growable, uniquely-owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the buffered data.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le_values() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_u32_le(0xAABB_CCDD);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 12);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_u32_le(), 0xAABB_CCDD);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
