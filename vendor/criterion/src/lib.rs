//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's micro-benchmarks use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! the `criterion_group!`/`criterion_main!` macros) with a simple wall-clock
//! harness: each benchmark runs `sample_size` samples after one warm-up
//! iteration and reports the median, min and max sample time. No statistics
//! beyond that — the goal is honest, dependency-free timing output.

use std::time::{Duration, Instant};

/// Formats a duration with an adaptive unit.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Times one closure invocation per call to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` for one warm-up plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        println!(
            "{label}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(sorted[0]),
            fmt_duration(*sorted.last().expect("non-empty")),
            sorted.len()
        );
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{label}", self.name));
    }

    /// Benchmarks a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) {
        self.run(label, f);
    }

    /// Benchmarks a closure over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.label.clone(), |b| f(b, input));
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group (10 samples by default).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) {
        let mut group = self.benchmark_group("bench");
        group.run(label, f);
    }
}

/// Re-export so `criterion::black_box` callers work; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
