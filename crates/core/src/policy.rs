//! The policy registry: every LLC management scheme of the evaluation.

use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::policy::grasp::{Grasp, GraspMode};
use grasp_cachesim::policy::hawkeye::Hawkeye;
use grasp_cachesim::policy::leeway::Leeway;
use grasp_cachesim::policy::lru::Lru;
use grasp_cachesim::policy::pin::PinX;
use grasp_cachesim::policy::random::RandomReplacement;
use grasp_cachesim::policy::rrip::{Brrip, Drrip, Srrip};
use grasp_cachesim::policy::ship::ShipMem;
use grasp_cachesim::policy::{PolicyDispatch, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Seed used for the probabilistic components of the policies, fixed so every
/// experiment is reproducible.
const POLICY_SEED: u64 = 0xC0FFEE;

/// Every LLC management scheme evaluated in the paper (plus a couple of
/// sanity baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Least Recently Used.
    Lru,
    /// Random replacement (sanity baseline).
    Random,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic RRIP — the paper's baseline, labelled "RRIP".
    Rrip,
    /// SHiP-MEM (memory-region signatures).
    ShipMem,
    /// Hawkeye (OPTgen-trained, site-indexed predictor).
    Hawkeye,
    /// Leeway (live-distance dead-block prediction).
    Leeway,
    /// XMem-style pinning reserving the given percentage of LLC capacity
    /// (PIN-25/50/75/100 in the paper).
    Pin(u8),
    /// The RRIP+Hints ablation of Fig. 7.
    GraspHintsOnly,
    /// The GRASP (Insertion-Only) ablation of Fig. 7.
    GraspInsertionOnly,
    /// Full GRASP.
    Grasp,
}

impl PolicyKind {
    /// The schemes compared in Figs. 5 and 6 (history-based prior work +
    /// GRASP), excluding the RRIP baseline itself.
    pub const FIG5_SCHEMES: [PolicyKind; 4] = [
        PolicyKind::ShipMem,
        PolicyKind::Hawkeye,
        PolicyKind::Leeway,
        PolicyKind::Grasp,
    ];

    /// The pinning configurations of Fig. 8.
    pub const PIN_CONFIGS: [PolicyKind; 4] = [
        PolicyKind::Pin(25),
        PolicyKind::Pin(50),
        PolicyKind::Pin(75),
        PolicyKind::Pin(100),
    ];

    /// The GRASP ablation sequence of Fig. 7.
    pub const ABLATIONS: [PolicyKind; 3] = [
        PolicyKind::GraspHintsOnly,
        PolicyKind::GraspInsertionOnly,
        PolicyKind::Grasp,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::ShipMem => "SHiP-MEM",
            PolicyKind::Hawkeye => "Hawkeye",
            PolicyKind::Leeway => "Leeway",
            PolicyKind::Pin(25) => "PIN-25",
            PolicyKind::Pin(50) => "PIN-50",
            PolicyKind::Pin(75) => "PIN-75",
            PolicyKind::Pin(100) => "PIN-100",
            PolicyKind::Pin(_) => "PIN-X",
            PolicyKind::GraspHintsOnly => "RRIP+Hints",
            PolicyKind::GraspInsertionOnly => "GRASP (Insertion-Only)",
            PolicyKind::Grasp => "GRASP",
        }
    }

    /// Parses a wire label back to the policy. Accepts every fixed
    /// [`PolicyKind::label`] plus `PIN-<percent>` for any pinning fraction
    /// in 1..=100 (the display label collapses unusual fractions to
    /// `PIN-X`, so [`CampaignSpec`] documents spell the number out).
    ///
    /// [`CampaignSpec`]: crate::spec::CampaignSpec
    pub fn from_label(label: &str) -> Option<Self> {
        if let Some(percent) = label.strip_prefix("PIN-") {
            let percent: u8 = percent.parse().ok()?;
            return (1..=100)
                .contains(&percent)
                .then_some(PolicyKind::Pin(percent));
        }
        let fixed = [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Rrip,
            PolicyKind::ShipMem,
            PolicyKind::Hawkeye,
            PolicyKind::Leeway,
            PolicyKind::GraspHintsOnly,
            PolicyKind::GraspInsertionOnly,
            PolicyKind::Grasp,
        ];
        fixed.into_iter().find(|policy| policy.label() == label)
    }

    /// Whether the policy consumes GRASP's reuse hints (and therefore needs
    /// the ABRs to be programmed for specialized behaviour).
    pub fn uses_hints(self) -> bool {
        matches!(
            self,
            PolicyKind::Pin(_)
                | PolicyKind::GraspHintsOnly
                | PolicyKind::GraspInsertionOnly
                | PolicyKind::Grasp
        )
    }

    /// Instantiates the policy for an LLC with the given geometry, as a
    /// statically-dispatched [`PolicyDispatch`] (the simulation fast path).
    pub fn build_dispatch(self, config: &CacheConfig) -> PolicyDispatch {
        let sets = config.sets();
        let ways = config.ways;
        match self {
            PolicyKind::Lru => Lru::new(sets, ways).into(),
            PolicyKind::Random => RandomReplacement::new(sets, ways, POLICY_SEED).into(),
            PolicyKind::Srrip => Srrip::new(sets, ways).into(),
            PolicyKind::Brrip => Brrip::new(sets, ways, POLICY_SEED).into(),
            PolicyKind::Rrip => Drrip::new(sets, ways, POLICY_SEED).into(),
            PolicyKind::ShipMem => ShipMem::new(sets, ways, config.block_bytes).into(),
            PolicyKind::Hawkeye => Hawkeye::new(sets, ways).into(),
            PolicyKind::Leeway => Leeway::new(sets, ways).into(),
            PolicyKind::Pin(percent) => PinX::new(sets, ways, percent).into(),
            PolicyKind::GraspHintsOnly => {
                Grasp::with_mode(sets, ways, POLICY_SEED, GraspMode::HintsOnly).into()
            }
            PolicyKind::GraspInsertionOnly => {
                Grasp::with_mode(sets, ways, POLICY_SEED, GraspMode::InsertionOnly).into()
            }
            PolicyKind::Grasp => Grasp::new(sets, ways, POLICY_SEED).into(),
        }
    }

    /// Instantiates the policy as a boxed trait object.
    ///
    /// Prefer [`PolicyKind::build_dispatch`]; this remains for callers that
    /// need a `Box<dyn ReplacementPolicy>` (converting it into a
    /// [`PolicyDispatch`] keeps dynamic dispatch).
    pub fn build(self, config: &CacheConfig) -> Box<dyn ReplacementPolicy> {
        let sets = config.sets();
        let ways = config.ways;
        match self {
            PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
            PolicyKind::Random => Box::new(RandomReplacement::new(sets, ways, POLICY_SEED)),
            PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
            PolicyKind::Brrip => Box::new(Brrip::new(sets, ways, POLICY_SEED)),
            PolicyKind::Rrip => Box::new(Drrip::new(sets, ways, POLICY_SEED)),
            PolicyKind::ShipMem => Box::new(ShipMem::new(sets, ways, config.block_bytes)),
            PolicyKind::Hawkeye => Box::new(Hawkeye::new(sets, ways)),
            PolicyKind::Leeway => Box::new(Leeway::new(sets, ways)),
            PolicyKind::Pin(percent) => Box::new(PinX::new(sets, ways, percent)),
            PolicyKind::GraspHintsOnly => Box::new(Grasp::with_mode(
                sets,
                ways,
                POLICY_SEED,
                GraspMode::HintsOnly,
            )),
            PolicyKind::GraspInsertionOnly => Box::new(Grasp::with_mode(
                sets,
                ways,
                POLICY_SEED,
                GraspMode::InsertionOnly,
            )),
            PolicyKind::Grasp => Box::new(Grasp::new(sets, ways, POLICY_SEED)),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_builds() {
        let config = CacheConfig::new(64 * 1024, 16, 64);
        let all = [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Rrip,
            PolicyKind::ShipMem,
            PolicyKind::Hawkeye,
            PolicyKind::Leeway,
            PolicyKind::Pin(25),
            PolicyKind::Pin(100),
            PolicyKind::GraspHintsOnly,
            PolicyKind::GraspInsertionOnly,
            PolicyKind::Grasp,
        ];
        for kind in all {
            let policy = kind.build(&config);
            assert!(!policy.name().is_empty(), "{kind}");
            let dispatch = kind.build_dispatch(&config);
            assert_eq!(dispatch.name(), policy.name(), "{kind}");
            assert!(
                !matches!(dispatch, PolicyDispatch::Dyn(_)),
                "{kind} must take the static dispatch path"
            );
        }
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(PolicyKind::Rrip.label(), "RRIP");
        assert_eq!(PolicyKind::ShipMem.label(), "SHiP-MEM");
        assert_eq!(PolicyKind::Pin(75).label(), "PIN-75");
        assert_eq!(PolicyKind::Grasp.to_string(), "GRASP");
        assert_eq!(PolicyKind::GraspHintsOnly.label(), "RRIP+Hints");
    }

    #[test]
    fn hint_consumers_are_flagged() {
        assert!(PolicyKind::Grasp.uses_hints());
        assert!(PolicyKind::Pin(50).uses_hints());
        assert!(!PolicyKind::Rrip.uses_hints());
        assert!(!PolicyKind::Hawkeye.uses_hints());
    }

    #[test]
    fn figure_groups_have_the_expected_members() {
        assert_eq!(PolicyKind::FIG5_SCHEMES.len(), 4);
        assert_eq!(PolicyKind::PIN_CONFIGS.len(), 4);
        assert_eq!(PolicyKind::ABLATIONS.len(), 3);
        assert!(PolicyKind::FIG5_SCHEMES.contains(&PolicyKind::Grasp));
        assert!(PolicyKind::PIN_CONFIGS.contains(&PolicyKind::Pin(100)));
    }
}
