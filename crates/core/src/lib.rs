//! # grasp-core — GRASP experiment orchestration
//!
//! This crate ties the reproduction together. It owns:
//!
//! * the **dataset catalog** ([`datasets`]) — synthetic stand-ins for the
//!   paper's seven datasets (Table V) at several scales,
//! * the **policy registry** ([`policy`]) — a name → simulator-policy factory
//!   covering every scheme of the evaluation, including GRASP's ablations and
//!   the PIN-X configurations,
//! * the **experiment runner** ([`experiment`]) — dataset × reordering ×
//!   application × LLC policy → hierarchy statistics, estimated cycles and
//!   (optionally) a recorded LLC trace; [`experiment::Experiment::record`]
//!   captures the post-L2 stream once so any number of policies can be
//!   evaluated by replay,
//! * the **campaign runner** ([`campaign`]) — a whole figure's grid of
//!   experiments under a record-once / replay-many execution plan, with
//!   graphs shared and reordered once and the record/load/replay tasks
//!   drained barrier-free by a dependency-driven, cost-aware scheduler
//!   (two-phase barrier, direct per-cell, and streaming gang-pipeline
//!   plans remain selectable), results always in deterministic grid
//!   order,
//! * the **serializable campaign spec** ([`spec`]) — [`spec::CampaignSpec`]
//!   round-trips a campaign through hand-rolled JSON ([`json`]), shared by
//!   the library builder and the `grasp-serve` service wire protocol,
//! * the **single-flight registry** ([`flight`]) — deduplicates concurrent
//!   recordings of the same stream across campaigns sharing a registry,
//! * the **unified error type** ([`error`]) — one [`error::Error`] over the
//!   store/trace/graph/spec failure domains with stable machine-readable
//!   [`error::Error::kind`] strings (the service's error-frame vocabulary),
//! * **comparison helpers** ([`compare`]) — miss-reduction and speed-up
//!   percentages, geometric means,
//! * **report formatting** ([`report`]) — the plain-text tables printed by
//!   the bench harness.
//!
//! ```no_run
//! use grasp_core::datasets::{DatasetKind, Scale};
//! use grasp_core::experiment::Experiment;
//! use grasp_core::policy::PolicyKind;
//! use grasp_analytics::apps::AppKind;
//! use grasp_reorder::TechniqueKind;
//!
//! let dataset = DatasetKind::Twitter.build(Scale::Small);
//! let experiment = Experiment::new(dataset.graph, AppKind::PageRank)
//!     .with_reordering(TechniqueKind::Dbg);
//! let rrip = experiment.run(PolicyKind::Rrip);
//! let grasp = experiment.run(PolicyKind::Grasp);
//! assert!(grasp.llc_misses() <= rrip.llc_misses());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod compare;
pub mod datasets;
pub mod error;
pub mod experiment;
pub mod flight;
pub mod json;
pub mod policy;
pub mod report;
pub mod spec;
pub mod trace_store;

pub use campaign::{
    Campaign, CampaignCell, CampaignResult, CampaignRun, ExecutionMode, SchedulerEvent,
};
pub use compare::{geometric_mean_speedup, miss_reduction_pct, speedup_pct};
pub use datasets::{
    CatalogEntry, Dataset, DatasetCatalog, DatasetId, DatasetKind, GraphBacking, GraphHash, Scale,
};
pub use error::Error;
pub use experiment::{Experiment, RecordedRun, RunResult};
pub use flight::{FlightRegistry, FlightServed, FlightStats};
pub use grasp_cachesim::Codec;
pub use json::Json;
pub use policy::PolicyKind;
pub use report::Table;
pub use spec::CampaignSpec;
pub use trace_store::{TraceStore, TraceStoreKey, TraceStoreStats};
