//! Metric helpers: speed-ups, miss reductions and geometric means.

/// Speed-up (in percent) of a candidate over a baseline given their cycle (or
/// runtime) counts: positive when the candidate is faster.
pub fn speedup_pct(baseline: f64, candidate: f64) -> f64 {
    assert!(
        baseline > 0.0 && candidate > 0.0,
        "cycle counts must be positive"
    );
    (baseline / candidate - 1.0) * 100.0
}

/// Percentage of misses eliminated by the candidate relative to the baseline
/// (positive = fewer misses). The metric of Figs. 5 and 11.
pub fn miss_reduction_pct(baseline_misses: u64, candidate_misses: u64) -> f64 {
    if baseline_misses == 0 {
        return 0.0;
    }
    (baseline_misses as f64 - candidate_misses as f64) / baseline_misses as f64 * 100.0
}

/// Geometric mean of a set of speed-up percentages, computed over the
/// underlying ratios (the way the paper's "GM" bars are computed): each
/// percentage `p` corresponds to a ratio `1 + p/100`; the result is converted
/// back to a percentage.
pub fn geometric_mean_speedup(speedups_pct: &[f64]) -> f64 {
    if speedups_pct.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = speedups_pct
        .iter()
        .map(|&p| {
            let ratio = 1.0 + p / 100.0;
            assert!(ratio > 0.0, "speed-up below -100% is not meaningful");
            ratio.ln()
        })
        .sum();
    ((log_sum / speedups_pct.len() as f64).exp() - 1.0) * 100.0
}

/// Arithmetic mean of a set of percentages (used for miss-reduction averages).
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_sign_and_magnitude() {
        assert!((speedup_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!(speedup_pct(100.0, 110.0) < 0.0);
        assert_eq!(speedup_pct(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cycles_panics() {
        let _ = speedup_pct(0.0, 1.0);
    }

    #[test]
    fn miss_reduction_handles_edge_cases() {
        assert!((miss_reduction_pct(200, 150) - 25.0).abs() < 1e-12);
        assert!(miss_reduction_pct(100, 150) < 0.0);
        assert_eq!(miss_reduction_pct(0, 5), 0.0);
    }

    #[test]
    fn geometric_mean_of_identical_values_is_that_value() {
        let gm = geometric_mean_speedup(&[5.0, 5.0, 5.0]);
        assert!((gm - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_mixes_gains_and_losses() {
        // +10% and -9.09% are reciprocal ratios: GM should be ~0.
        let gm = geometric_mean_speedup(&[10.0, -9.090909]);
        assert!(gm.abs() < 1e-3, "gm {gm}");
        assert_eq!(geometric_mean_speedup(&[]), 0.0);
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
