//! The experiment runner: dataset × reordering × application × LLC policy.

use crate::policy::PolicyKind;
use grasp_analytics::apps::{AppConfig, AppKind, AppResult};
use grasp_analytics::mem::{NativeMemory, RecordingMemory, TracedMemory};
use grasp_analytics::Workspace;
use grasp_cachesim::config::{CacheConfig, HierarchyConfig};
use grasp_cachesim::hint::RegionClassifier;
use grasp_cachesim::stats::HierarchyStats;
use grasp_cachesim::trace::{
    chunk_channel, replay_stream, ChunkReceiver, ChunkReplayer, LlcTrace, TraceTap,
    DEFAULT_STREAM_DEPTH,
};
use grasp_cachesim::{Hierarchy, TimingModel};
use grasp_graph::{Csr, GraphView};
use grasp_reorder::TechniqueKind;
use std::sync::Arc;
use std::time::Duration;

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which policy managed the LLC.
    pub policy: PolicyKind,
    /// Full hierarchy statistics.
    pub stats: HierarchyStats,
    /// Estimated execution cycles under the analytic timing model.
    pub cycles: f64,
    /// Application output (values, iterations, edges processed).
    pub app: AppResult,
    /// The recorded LLC demand trace, when requested.
    pub llc_trace: Option<LlcTrace>,
}

impl RunResult {
    /// Demand LLC misses.
    pub fn llc_misses(&self) -> u64 {
        self.stats.llc.misses
    }

    /// Demand LLC accesses.
    pub fn llc_accesses(&self) -> u64 {
        self.stats.llc.accesses
    }
}

/// The outcome of one native (wall-clock) run, used by the reordering study
/// (Fig. 10a).
#[derive(Debug, Clone)]
pub struct NativeRunResult {
    /// Application output.
    pub app: AppResult,
    /// Wall-clock time of the application kernel (excluding graph loading and
    /// reordering).
    pub runtime: Duration,
}

/// The record of one (graph, application) execution: the application's
/// output plus the canonical post-L2 request stream, ready to be replayed
/// under any number of LLC policies.
///
/// Produced by [`Experiment::record`]. The trace is behind an [`Arc`], so
/// cloning a `RecordedRun` — the way the replay-mode campaign fans one
/// recording out across policy workers — shares the stream instead of
/// copying it.
#[derive(Debug, Clone)]
pub struct RecordedRun {
    trace: Arc<LlcTrace>,
    app: AppResult,
    instructions: u64,
    llc: CacheConfig,
    timing: TimingModel,
}

impl RecordedRun {
    /// The recorded post-L2 stream.
    pub fn trace(&self) -> &LlcTrace {
        &self.trace
    }

    /// The application output of the recording run (identical for every
    /// policy — the LLC cannot change program results).
    pub fn app(&self) -> &AppResult {
        &self.app
    }

    /// The recording run's instruction estimate (what the trace store
    /// persists alongside the stream so a loaded recording can drive the
    /// timing model).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Runs an N-policy sweep by **re-broadcasting** the recorded stream
    /// through a bounded chunk channel ([`LlcTrace::stream_into`]) to up to
    /// `consumers` concurrent replay workers — the exact consumer pipeline
    /// live streaming recording uses, fed from a buffered (or store-loaded)
    /// trace instead of a running application. Results come back in
    /// `policies` order, bit-identical to [`RecordedRun::replay`] per
    /// policy.
    pub fn sweep_streaming(&self, policies: &[PolicyKind], consumers: usize) -> Vec<RunResult> {
        if policies.is_empty() {
            return Vec::new();
        }
        let ((), stats) = fan_out_stream(self.llc, policies, consumers, |tap| {
            self.trace.stream_into(&tap)
        });
        let streamed = self.as_streamed();
        policies
            .iter()
            .zip(stats)
            .map(|(&policy, stats)| streamed.assemble(policy, stats))
            .collect()
    }

    /// The streaming-assembly view of this buffered recording: what a
    /// scheduler needs to re-broadcast the trace through its own consumer
    /// tasks ([`StreamConsumerTask`]) and assemble their statistics exactly
    /// like a live [`Experiment::record_streaming`] run would.
    pub fn as_streamed(&self) -> StreamedRecord {
        StreamedRecord {
            app: self.app.clone(),
            instructions: self.instructions,
            llc: self.llc,
            timing: self.timing,
        }
    }

    /// Replays the stream under `policy` and returns a [`RunResult`]
    /// bit-identical to [`Experiment::run`] with the same policy.
    pub fn replay(&self, policy: PolicyKind) -> RunResult {
        self.replay_inner(policy, false)
    }

    /// Like [`RecordedRun::replay`], but the result also carries a copy of
    /// the recorded trace (the OPT study asks for it).
    pub fn replay_with_trace(&self, policy: PolicyKind) -> RunResult {
        self.replay_inner(policy, true)
    }

    /// Replays the stream under every policy of a sweep in one pass over
    /// the recorded chunks: each tile is decoded once and consumed by all
    /// policy stages through the batched kernel, so the decode cost is paid
    /// once for the whole fan-out instead of once per policy. Element `i`
    /// is bit-identical to [`RecordedRun::replay`] with `policies[i]`.
    pub fn replay_fanout(&self, policies: &[PolicyKind]) -> Vec<RunResult> {
        let dispatches: Vec<_> = policies
            .iter()
            .map(|policy| policy.build_dispatch(&self.llc))
            .collect();
        let stats = self.trace.replay_fanout(self.llc, dispatches);
        policies
            .iter()
            .zip(stats)
            .map(|(&policy, stats)| {
                let cycles = self.timing.cycles(&stats, self.instructions);
                RunResult {
                    policy,
                    stats,
                    cycles,
                    app: self.app.clone(),
                    llc_trace: None,
                }
            })
            .collect()
    }

    /// Replays through the per-event scalar path instead of the batched
    /// chunk-native kernel. Bit-identical to [`RecordedRun::replay`]; exists
    /// as the reference side of batched-replay parity tests and benchmarks.
    pub fn replay_scalar(&self, policy: PolicyKind) -> RunResult {
        let stats = self
            .trace
            .replay_scalar(self.llc, policy.build_dispatch(&self.llc));
        let cycles = self.timing.cycles(&stats, self.instructions);
        RunResult {
            policy,
            stats,
            cycles,
            app: self.app.clone(),
            llc_trace: None,
        }
    }

    fn replay_inner(&self, policy: PolicyKind, with_trace: bool) -> RunResult {
        let stats = self
            .trace
            .replay(self.llc, policy.build_dispatch(&self.llc));
        let cycles = self.timing.cycles(&stats, self.instructions);
        RunResult {
            policy,
            stats,
            cycles,
            app: self.app.clone(),
            llc_trace: with_trace.then(|| (*self.trace).clone()),
        }
    }
}

/// The completion record of one **streaming** recording run
/// ([`Experiment::record_streaming`]): the application output plus what the
/// timing model needs, with the post-L2 stream already gone — it was
/// consumed chunk-by-chunk while the run executed.
#[derive(Debug, Clone)]
pub struct StreamedRecord {
    /// The application output of the recording run.
    pub app: AppResult,
    instructions: u64,
    llc: CacheConfig,
    timing: TimingModel,
}

impl StreamedRecord {
    /// Combines one consumer's replayed hierarchy statistics with the
    /// recording run's outputs into a [`RunResult`] bit-identical to
    /// [`Experiment::run`] under `policy`.
    pub fn assemble(&self, policy: PolicyKind, stats: HierarchyStats) -> RunResult {
        let cycles = self.timing.cycles(&stats, self.instructions);
        RunResult {
            policy,
            stats,
            cycles,
            app: self.app.clone(),
            llc_trace: None,
        }
    }

    /// The LLC geometry streaming consumers should replay with.
    pub fn llc(&self) -> CacheConfig {
        self.llc
    }
}

/// An experiment: a (possibly reordered) graph, an application, and the cache
/// configuration to evaluate LLC policies under.
///
/// The graph is held behind an `Arc<dyn GraphView>`, so cloning an
/// experiment — the way the [`crate::campaign`] runner fans one reordered
/// graph out across many policies and worker threads — shares the backing
/// instead of copying it, and the backing itself is interchangeable: an
/// in-memory [`Csr`], an mmap-backed [`grasp_graph::MappedCsr`], or anything
/// else implementing [`GraphView`] produces bit-identical results.
#[derive(Debug, Clone)]
pub struct Experiment {
    graph: Arc<dyn GraphView>,
    app: AppKind,
    app_config: AppConfig,
    hierarchy: HierarchyConfig,
    timing: TimingModel,
    record_trace: bool,
}

impl Experiment {
    /// Creates an experiment over `graph` for `app` with default
    /// configuration (scaled hierarchy, traced iteration budget appropriate
    /// for the application).
    pub fn new(graph: Csr, app: AppKind) -> Self {
        Self::shared(Arc::new(graph), app)
    }

    /// Creates an experiment over an already-shared graph (no copy). Accepts
    /// any backing: `Arc<Csr>` and `Arc<MappedCsr>` both coerce.
    pub fn shared(graph: Arc<dyn GraphView>, app: AppKind) -> Self {
        let hierarchy = HierarchyConfig::scaled_default();
        Self {
            graph,
            app,
            app_config: Self::traced_app_config(app),
            hierarchy,
            timing: TimingModel::default(),
            record_trace: false,
        }
    }

    /// The iteration budget used for simulator runs. The paper simulates the
    /// region of interest — the iterations that dominate execution — rather
    /// than whole executions; these budgets keep traced runs representative
    /// yet affordable.
    pub fn traced_app_config(app: AppKind) -> AppConfig {
        let max_iterations = match app {
            AppKind::PageRank => 3,
            AppKind::PageRankDelta => 6,
            AppKind::Radii => 4,
            AppKind::Bc | AppKind::Sssp => 64,
        };
        AppConfig {
            max_iterations,
            epsilon: 0.0,
            ..AppConfig::default()
        }
    }

    /// Reorders the experiment's graph with `technique` (using the hotness
    /// direction appropriate for the application) and returns the updated
    /// experiment.
    #[must_use]
    pub fn with_reordering(mut self, technique: TechniqueKind) -> Self {
        let boxed = technique.instantiate();
        let perm = boxed.compute(&*self.graph, self.app.hotness_direction());
        self.graph = Arc::new(grasp_reorder::relabel(&*self.graph, &perm));
        self
    }

    /// Overrides the hierarchy configuration.
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Overrides the application configuration.
    #[must_use]
    pub fn with_app_config(mut self, config: AppConfig) -> Self {
        self.app_config = config;
        self
    }

    /// Overrides the timing model.
    #[must_use]
    pub fn with_timing(mut self, timing: TimingModel) -> Self {
        self.timing = timing;
        self
    }

    /// Requests recording of the demand LLC access trace (needed for the OPT
    /// study).
    #[must_use]
    pub fn recording_llc_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// The graph under experiment (after any reordering).
    pub fn graph(&self) -> &dyn GraphView {
        &*self.graph
    }

    /// The shared handle to the graph under experiment.
    pub fn graph_arc(&self) -> Arc<dyn GraphView> {
        Arc::clone(&self.graph)
    }

    /// The application under experiment.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// The hierarchy configuration in use.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// The application configuration in use (part of a stream's trace-store
    /// identity).
    pub fn app_config(&self) -> &AppConfig {
        &self.app_config
    }

    /// Reassembles a [`RecordedRun`] from a trace-store entry: the persisted
    /// stream, application output and instruction estimate, joined with
    /// *this* experiment's LLC geometry and timing model. The result replays
    /// exactly like the original [`Experiment::record`] product — the record
    /// phase is skipped, not approximated.
    pub fn recorded_from_parts(
        &self,
        trace: LlcTrace,
        app: AppResult,
        instructions: u64,
    ) -> RecordedRun {
        RecordedRun {
            trace: Arc::new(trace),
            app,
            instructions,
            llc: self.hierarchy.llc,
            timing: self.timing,
        }
    }

    /// Runs the application through the simulated hierarchy with `policy`
    /// managing the LLC.
    pub fn run(&self, policy: PolicyKind) -> RunResult {
        let mut config = self.hierarchy;
        if self.record_trace {
            config.record_llc_trace = true;
        }
        let llc_policy = policy.build_dispatch(&config.llc);
        // The classifier starts disabled; the application programs the ABRs
        // with its Property Array bounds as part of start-up, which rebuilds
        // the classifier with the right bounds (Sec. III-A).
        let mut hierarchy = Hierarchy::new(config, llc_policy, RegionClassifier::disabled());
        if self.record_trace {
            hierarchy.reserve_llc_trace(self.trace_capacity_estimate());
        }
        let mut ws = Workspace::new(TracedMemory::new(hierarchy));
        let app = self.app.run(&*self.graph, &mut ws, &self.app_config);
        let instructions = app.instruction_estimate();
        let traced = ws.into_memory();
        let stats = traced.stats();
        let cycles = self.timing.cycles(&stats, instructions);
        let llc_trace = if self.record_trace {
            Some(traced.into_hierarchy().into_llc_trace())
        } else {
            None
        };
        RunResult {
            policy,
            stats,
            cycles,
            app,
            llc_trace,
        }
    }

    fn trace_capacity_estimate(&self) -> usize {
        LlcTrace::estimate_capacity(
            self.graph.edge_count(),
            self.app_config.max_iterations as u64,
        )
    }

    /// Runs the application once through the upper levels only (L1 + L2 +
    /// prefetcher + classifier, no LLC) and captures the canonical post-L2
    /// request stream — the record half of the record-once / replay-many
    /// pipeline. The returned [`RecordedRun`] replays the stream under any
    /// LLC policy, producing [`RunResult`]s bit-identical to
    /// [`Experiment::run`] at a fraction of the cost.
    pub fn record(&self) -> RecordedRun {
        let mut config = self.hierarchy;
        config.record_llc_trace = true;
        let mut memory = RecordingMemory::new(config);
        memory.reserve_trace(self.trace_capacity_estimate());
        let mut ws = Workspace::new(memory);
        let app = self.app.run(&*self.graph, &mut ws, &self.app_config);
        let instructions = app.instruction_estimate();
        let trace = ws.into_memory().finish();
        RecordedRun {
            trace: Arc::new(trace),
            app,
            instructions,
            llc: self.hierarchy.llc,
            timing: self.timing,
        }
    }

    /// Like [`Experiment::record`], but every access goes through the
    /// per-event scalar path (an unbuffered workspace feeding
    /// [`grasp_cachesim::stage::UpperLevels::access`]) instead of the
    /// batched record kernel. Bit-identical to [`Experiment::record`];
    /// exists as the reference side of record-parity tests and benchmarks.
    pub fn record_scalar(&self) -> RecordedRun {
        let mut config = self.hierarchy;
        config.record_llc_trace = true;
        let mut memory = RecordingMemory::new(config);
        memory.reserve_trace(self.trace_capacity_estimate());
        let mut ws = Workspace::unbuffered(memory);
        let app = self.app.run(&*self.graph, &mut ws, &self.app_config);
        let instructions = app.instruction_estimate();
        let trace = ws.into_memory().finish();
        RecordedRun {
            trace: Arc::new(trace),
            app,
            instructions,
            llc: self.hierarchy.llc,
            timing: self.timing,
        }
    }

    /// The streaming counterpart of [`Experiment::record`]: runs the
    /// application once through the upper levels, broadcasting each frozen
    /// trace chunk through `tap` as it fills instead of buffering the
    /// stream. Consumers (one [`ChunkReplayer`] per policy, typically via
    /// [`replay_stream`]) replay **while this records**; the returned
    /// [`StreamedRecord`] assembles their statistics into [`RunResult`]s
    /// bit-identical to [`Experiment::run`].
    ///
    /// Blocks whenever a consumer falls a channel-depth behind, so it must
    /// run concurrently with the consumers (see
    /// [`Experiment::sweep_streaming`] for the packaged pattern).
    pub fn record_streaming(&self, tap: TraceTap) -> StreamedRecord {
        let memory = RecordingMemory::streaming(self.hierarchy, tap);
        let mut ws = Workspace::new(memory);
        let app = self.app.run(&*self.graph, &mut ws, &self.app_config);
        let instructions = app.instruction_estimate();
        ws.into_memory().finish_stream();
        StreamedRecord {
            app,
            instructions,
            llc: self.hierarchy.llc,
            timing: self.timing,
        }
    }

    /// Runs an N-policy sweep through the streaming pipeline: the recording
    /// run and up to `consumers` replay workers execute concurrently on
    /// scoped threads, sharing the post-L2 stream through a bounded chunk
    /// channel. Results come back in `policies` order, bit-identical to
    /// [`Experiment::run`] per policy, and the peak trace footprint is
    /// channel-depth × chunk-size per consumer instead of the whole trace.
    pub fn sweep_streaming(&self, policies: &[PolicyKind], consumers: usize) -> Vec<RunResult> {
        if policies.is_empty() {
            return Vec::new();
        }
        let (streamed, stats) = fan_out_stream(self.hierarchy.llc, policies, consumers, |tap| {
            self.record_streaming(tap)
        });
        policies
            .iter()
            .zip(stats)
            .map(|(&policy, stats)| streamed.assemble(policy, stats))
            .collect()
    }

    /// Runs the application natively (no cache simulation) and measures
    /// wall-clock time. Used by the Fig. 10a reordering study.
    pub fn run_native(&self) -> NativeRunResult {
        let mut ws = Workspace::new(NativeMemory::new());
        let start = std::time::Instant::now();
        let app = self.app.run(&*self.graph, &mut ws, &self.app_config);
        let runtime = start.elapsed();
        NativeRunResult { app, runtime }
    }
}

/// One independently spawnable consumer of a decomposed streaming fan-out:
/// replays its assigned policy subset off one [`ChunkReceiver`] until the
/// end-of-stream marker arrives.
///
/// Produced by [`streaming_fanout`]. A task is self-contained — receiver,
/// policy slots and pre-built replayers — so any thread (a scoped helper
/// inside [`Experiment::sweep_streaming`], or a campaign scheduler's worker)
/// can run it to completion independently of where the recorder and the
/// other consumers execute. The only coupling is the bounded chunk channel
/// itself: the producer must run concurrently, since it blocks once any
/// consumer falls a channel-depth behind.
#[derive(Debug)]
pub struct StreamConsumerTask {
    receiver: ChunkReceiver,
    llc: CacheConfig,
    slots: Vec<(usize, PolicyKind)>,
}

impl StreamConsumerTask {
    /// Drains the stream, returning `(policy index, statistics)` for each
    /// policy slot this consumer served. Replayers are built here, on the
    /// thread that runs the task — policy state is not `Send`, so the task
    /// carries only the plain `(slot, policy)` assignments across threads.
    ///
    /// # Panics
    ///
    /// Panics when the producer disconnects without an end-of-stream marker
    /// (the recording side panicked or was dropped mid-record).
    pub fn run(self) -> Vec<(usize, HierarchyStats)> {
        let replayers = self
            .slots
            .iter()
            .map(|&(_, policy)| ChunkReplayer::new(self.llc, policy.build_dispatch(&self.llc)))
            .collect();
        let stats = replay_stream(&self.receiver, replayers);
        self.slots
            .into_iter()
            .map(|(slot, _)| slot)
            .zip(stats)
            .collect()
    }
}

/// Decomposes an N-policy streaming fan-out into its producer tap and up to
/// `consumers` independently spawnable [`StreamConsumerTask`]s (policy `i`
/// served by consumer `i % consumers`, every chunk fed to all of a
/// consumer's replayers). The caller decides where each half runs: feed the
/// tap on one thread ([`Experiment::record_streaming`] live, or
/// [`grasp_cachesim::LlcTrace::stream_into`] for a buffered re-broadcast)
/// while the consumer tasks execute on any others.
pub fn streaming_fanout(
    llc: CacheConfig,
    policies: &[PolicyKind],
    consumers: usize,
) -> (TraceTap, Vec<StreamConsumerTask>) {
    let consumers = consumers.clamp(1, policies.len().max(1));
    let (tap, receivers) = chunk_channel(consumers, DEFAULT_STREAM_DEPTH);
    let tasks = receivers
        .into_iter()
        .enumerate()
        .map(|(c, receiver)| StreamConsumerTask {
            receiver,
            llc,
            slots: (c..policies.len())
                .step_by(consumers)
                .map(|i| (i, policies[i]))
                .collect(),
        })
        .collect();
    (tap, tasks)
}

/// The shared streaming consumer harness behind [`Experiment::sweep_streaming`]
/// (live recording) and [`RecordedRun::sweep_streaming`] (re-broadcast of a
/// buffered or store-loaded trace): spawns the [`streaming_fanout`] consumer
/// tasks on scoped threads, runs `produce` with the tap on the calling
/// thread, and returns its output together with the per-policy hierarchy
/// statistics in `policies` order.
fn fan_out_stream<R>(
    llc: CacheConfig,
    policies: &[PolicyKind],
    consumers: usize,
    produce: impl FnOnce(TraceTap) -> R,
) -> (R, Vec<HierarchyStats>) {
    let (tap, tasks) = streaming_fanout(llc, policies, consumers);
    let (produced, gathered) = std::thread::scope(|scope| {
        let workers: Vec<_> = tasks
            .into_iter()
            .map(|task| scope.spawn(move || task.run()))
            .collect();
        let produced = produce(tap);
        let gathered: Vec<Vec<(usize, HierarchyStats)>> = workers
            .into_iter()
            .map(|worker| worker.join().expect("streaming replay worker panicked"))
            .collect();
        (produced, gathered)
    });
    let mut slots: Vec<Option<HierarchyStats>> = (0..policies.len()).map(|_| None).collect();
    for (i, stats) in gathered.into_iter().flatten() {
        slots[i] = Some(stats);
    }
    let stats = slots
        .into_iter()
        .map(|slot| slot.expect("every policy is assigned to exactly one consumer"))
        .collect();
    (produced, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetKind, Scale};

    fn small_experiment(app: AppKind) -> Experiment {
        let dataset = DatasetKind::Twitter.build(Scale::Tiny);
        Experiment::new(dataset.graph, app)
            .with_hierarchy(Scale::Tiny.hierarchy())
            .with_reordering(TechniqueKind::Dbg)
    }

    #[test]
    fn simulated_run_produces_consistent_statistics() {
        let exp = small_experiment(AppKind::PageRank);
        let result = exp.run(PolicyKind::Rrip);
        assert_eq!(result.policy, PolicyKind::Rrip);
        assert!(result.stats.l1.accesses > 0);
        assert!(result.llc_accesses() > 0);
        assert!(result.llc_misses() <= result.llc_accesses());
        assert_eq!(result.stats.memory_accesses, result.llc_misses());
        assert!(result.cycles > 0.0);
        assert!(result.llc_trace.is_none());
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let exp = small_experiment(AppKind::PageRank);
        let a = exp.run(PolicyKind::Grasp);
        let b = exp.run(PolicyKind::Grasp);
        assert_eq!(a.llc_misses(), b.llc_misses());
        assert_eq!(a.stats.l1.accesses, b.stats.l1.accesses);
        assert!((a.cycles - b.cycles).abs() < 1e-9);
    }

    #[test]
    fn application_results_do_not_depend_on_the_cache_policy() {
        let exp = small_experiment(AppKind::Sssp);
        let a = exp.run(PolicyKind::Lru);
        let b = exp.run(PolicyKind::Grasp);
        assert_eq!(a.app.values, b.app.values);
    }

    #[test]
    fn trace_recording_captures_llc_accesses() {
        let exp = small_experiment(AppKind::PageRank).recording_llc_trace();
        let result = exp.run(PolicyKind::Rrip);
        let trace = result.llc_trace.as_ref().expect("trace was requested");
        assert_eq!(trace.demand_len() as u64, result.llc_accesses());
        assert!(
            trace.len() >= trace.demand_len(),
            "the stream also carries prefetches and writebacks"
        );
    }

    #[test]
    fn replay_matches_direct_execution_bit_for_bit() {
        let exp = small_experiment(AppKind::PageRank);
        let recorded = exp.record();
        for policy in [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp] {
            let direct = exp.run(policy);
            let replayed = recorded.replay(policy);
            assert_eq!(direct.stats, replayed.stats, "{policy}");
            assert_eq!(direct.app.values, replayed.app.values, "{policy}");
            assert!((direct.cycles - replayed.cycles).abs() < 1e-12, "{policy}");
            assert!(replayed.llc_trace.is_none());
        }
    }

    #[test]
    fn streaming_sweep_matches_direct_execution_bit_for_bit() {
        let exp = small_experiment(AppKind::PageRank);
        let policies = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp];
        // More consumers than policies, and fewer, both work.
        for consumers in [1, 2, 5] {
            let streamed = exp.sweep_streaming(&policies, consumers);
            assert_eq!(streamed.len(), policies.len());
            for (policy, replayed) in policies.iter().zip(&streamed) {
                let direct = exp.run(*policy);
                assert_eq!(replayed.policy, *policy);
                assert_eq!(direct.stats, replayed.stats, "{policy} x{consumers}");
                assert_eq!(direct.app.values, replayed.app.values, "{policy}");
                assert!((direct.cycles - replayed.cycles).abs() < 1e-12, "{policy}");
                assert!(replayed.llc_trace.is_none());
            }
        }
        assert!(exp.sweep_streaming(&[], 4).is_empty());
    }

    #[test]
    fn rebroadcast_sweep_matches_buffered_replay_bit_for_bit() {
        // The store-hit streaming path: a buffered RecordedRun re-broadcast
        // through the chunk channel must equal per-policy buffered replays.
        let exp = small_experiment(AppKind::PageRank);
        let recorded = exp.record();
        let policies = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp];
        for consumers in [1, 2, 5] {
            let streamed = recorded.sweep_streaming(&policies, consumers);
            assert_eq!(streamed.len(), policies.len());
            for (policy, rebroadcast) in policies.iter().zip(&streamed) {
                let buffered = recorded.replay(*policy);
                assert_eq!(rebroadcast.policy, *policy);
                assert_eq!(buffered.stats, rebroadcast.stats, "{policy} x{consumers}");
                assert_eq!(buffered.app.values, rebroadcast.app.values, "{policy}");
                assert!(
                    (buffered.cycles - rebroadcast.cycles).abs() < 1e-12,
                    "{policy}"
                );
            }
        }
        assert!(recorded.sweep_streaming(&[], 4).is_empty());
    }

    #[test]
    fn recorded_from_parts_reassembles_a_replayable_run() {
        let exp = small_experiment(AppKind::PageRank);
        let recorded = exp.record();
        let reassembled = exp.recorded_from_parts(
            recorded.trace().clone(),
            recorded.app().clone(),
            recorded.instructions(),
        );
        for policy in [PolicyKind::Rrip, PolicyKind::Grasp] {
            let a = recorded.replay(policy);
            let b = reassembled.replay(policy);
            assert_eq!(a.stats, b.stats, "{policy}");
            assert_eq!(a.cycles, b.cycles, "{policy}");
            assert_eq!(a.app.values, b.app.values, "{policy}");
        }
    }

    #[test]
    fn replay_with_trace_carries_the_recorded_stream() {
        let exp = small_experiment(AppKind::PageRank);
        let recorded = exp.record();
        let direct = exp.recording_llc_trace().run(PolicyKind::Rrip);
        let replayed = recorded.replay_with_trace(PolicyKind::Rrip);
        assert_eq!(
            direct.llc_trace.expect("direct trace"),
            replayed.llc_trace.expect("replayed trace"),
            "record() and a recording run() capture the same stream"
        );
    }

    #[test]
    fn native_run_returns_valid_output() {
        let exp = small_experiment(AppKind::PageRank);
        let native = exp.run_native();
        assert_eq!(native.app.values.len(), exp.graph().vertex_count());
        assert!(native.runtime.as_nanos() > 0);
    }

    #[test]
    fn grasp_does_not_lose_to_rrip_on_a_skewed_dataset() {
        // The headline qualitative result at tiny scale: GRASP's misses are
        // never (meaningfully) worse than RRIP's on a skewed, DBG-reordered
        // graph.
        let exp = small_experiment(AppKind::PageRank);
        let rrip = exp.run(PolicyKind::Rrip);
        let grasp = exp.run(PolicyKind::Grasp);
        assert!(
            grasp.llc_misses() as f64 <= rrip.llc_misses() as f64 * 1.02,
            "grasp {} rrip {}",
            grasp.llc_misses(),
            rrip.llc_misses()
        );
    }
}
