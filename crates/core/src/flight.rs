//! Single-flight deduplication of in-flight stream recordings.
//!
//! The trace store already collapses recordings *across* runs: a published
//! entry serves every later campaign. What it cannot collapse is the window
//! *during* a recording — two campaigns probing the same missing key both
//! plan a `Record` task and both pay the full application run. At fleet
//! scale (the campaign service, many clients sharing one store) that window
//! is exactly where the duplicated work lives.
//!
//! A [`FlightRegistry`] closes it. Layered over [`TraceStore::probe`]/
//! [`TraceStore::publish`](crate::trace_store::TraceStore::publish)
//! semantics, it keys in-flight obtains by [`TraceStoreKey`]: the first
//! caller per key becomes the **leader** and runs the real obtain (store
//! load, else record + publish); every concurrent caller for the same key
//! becomes a **waiter** and blocks until the leader finishes, then attaches
//! to the leader's [`Arc<RecordedRun>`] — sharing the recording without
//! copying the trace and without touching the store. The registry entry is
//! removed as soon as the flight lands, so later campaigns go back to the
//! store (and hit the published entry).
//!
//! If a leader panics, its flight is marked aborted and one blocked waiter
//! takes over as the new leader — a crash never strands the other clients.
//!
//! [`TraceStore::probe`]: crate::trace_store::TraceStore::probe

use crate::experiment::RecordedRun;
use crate::trace_store::TraceStoreKey;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How one obtain call was ultimately served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightServed {
    /// This caller recorded the stream itself (it led the flight and the
    /// store missed). Exactly one caller per key reports this while the
    /// flight is shared.
    Recorded,
    /// The trace store served the stream; nothing was recorded.
    StoreHit,
    /// Another in-flight caller's recording was shared: this caller waited
    /// on the leader and attached to its [`Arc<RecordedRun>`].
    Attached,
}

/// One in-flight obtain: waiters park on `done` until the leader resolves
/// the state away from `Pending`.
#[derive(Default)]
struct FlightSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

#[derive(Default)]
enum SlotState {
    #[default]
    Pending,
    /// The leader unwound without landing the flight; a waiter retries.
    Aborted,
    Landed(Arc<RecordedRun>),
}

/// Counters of how a registry's flights were served (see
/// [`FlightRegistry::stats`]). `recorded` counts actual recordings — the
/// number the single-flight guarantee bounds at one per unique key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlightStats {
    /// Flights this registry's leaders actually recorded.
    pub recorded: u64,
    /// Flights a leader resolved straight from the trace store.
    pub store_hits: u64,
    /// Obtain calls served by attaching to another caller's in-flight
    /// recording (the deduplicated work).
    pub attached: u64,
}

/// An in-flight registry deduplicating concurrent recordings by
/// [`TraceStoreKey`]. Share one instance (behind an `Arc`) across every
/// campaign that should coordinate — the campaign service hands the same
/// registry to all client campaigns via
/// [`Campaign::with_single_flight`](crate::campaign::Campaign::with_single_flight).
#[derive(Debug, Default)]
pub struct FlightRegistry {
    inflight: Mutex<HashMap<TraceStoreKey, Arc<FlightSlot>>>,
    recorded: AtomicU64,
    store_hits: AtomicU64,
    attached: AtomicU64,
}

impl std::fmt::Debug for FlightSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightSlot").finish_non_exhaustive()
    }
}

impl FlightRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the registry's service counters.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            attached: self.attached.load(Ordering::Relaxed),
        }
    }

    /// Obtains the stream for `key`, deduplicating against every concurrent
    /// call with the same key. `produce` is the uncoordinated obtain (store
    /// load, else record + publish) returning the recording and whether the
    /// store served it; it runs on **at most one** caller per key at a time
    /// — everyone else blocks and attaches to the winner's recording.
    pub fn obtain(
        &self,
        key: TraceStoreKey,
        produce: impl FnOnce() -> (RecordedRun, bool),
    ) -> (Arc<RecordedRun>, FlightServed) {
        let mut produce = Some(produce);
        loop {
            let (slot, leads) = {
                let mut map = self.inflight.lock().expect("flight registry not poisoned");
                match map.entry(key) {
                    Entry::Occupied(entry) => (Arc::clone(entry.get()), false),
                    Entry::Vacant(vacant) => {
                        let slot = Arc::new(FlightSlot::default());
                        vacant.insert(Arc::clone(&slot));
                        (slot, true)
                    }
                }
            };
            if leads {
                // Abort the flight (waking a waiter to take over) if
                // `produce` unwinds before the flight lands.
                let guard = LandOrAbort {
                    registry: self,
                    key,
                    slot: &slot,
                    landed: false,
                };
                let (recorded, store_hit) =
                    (produce.take().expect("a caller leads at most once"))();
                let recorded = Arc::new(recorded);
                {
                    let mut state = slot.state.lock().expect("flight slot not poisoned");
                    *state = SlotState::Landed(Arc::clone(&recorded));
                }
                let mut guard = guard;
                guard.landed = true;
                drop(guard); // removes the registry entry, wakes the waiters
                let served = if store_hit {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    FlightServed::StoreHit
                } else {
                    self.recorded.fetch_add(1, Ordering::Relaxed);
                    FlightServed::Recorded
                };
                return (recorded, served);
            }
            let mut state = slot.state.lock().expect("flight slot not poisoned");
            loop {
                match &*state {
                    SlotState::Pending => {
                        state = slot.done.wait(state).expect("flight slot not poisoned");
                    }
                    SlotState::Landed(recorded) => {
                        self.attached.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(recorded), FlightServed::Attached);
                    }
                    SlotState::Aborted => break,
                }
            }
            // The leader unwound: retry from the top — the registry entry is
            // gone, so this caller (or another waiter) becomes the new
            // leader and produces the stream itself.
        }
    }
}

/// Removes the flight's registry entry and wakes its waiters when the
/// leader finishes — or unwinds. On unwind the slot is marked aborted so
/// waiters retry instead of parking forever.
struct LandOrAbort<'a> {
    registry: &'a FlightRegistry,
    key: TraceStoreKey,
    slot: &'a FlightSlot,
    landed: bool,
}

impl Drop for LandOrAbort<'_> {
    fn drop(&mut self) {
        if !self.landed {
            if let Ok(mut state) = self.slot.state.lock() {
                *state = SlotState::Aborted;
            }
        }
        if let Ok(mut map) = self.registry.inflight.lock() {
            map.remove(&self.key);
        }
        self.slot.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetKind, Scale};
    use crate::experiment::Experiment;
    use crate::policy::PolicyKind;
    use grasp_analytics::apps::AppKind;
    use std::sync::atomic::AtomicUsize;

    fn test_key(config_hash: u64) -> TraceStoreKey {
        let hierarchy = Scale::Tiny.hierarchy();
        let experiment = Experiment::new(
            DatasetKind::Twitter.build(Scale::Tiny).graph,
            AppKind::PageRank,
        );
        let mut key = TraceStoreKey::new(
            DatasetKind::Twitter,
            Scale::Tiny,
            grasp_reorder::TechniqueKind::Dbg,
            AppKind::PageRank,
            &hierarchy,
            experiment.app_config(),
        );
        key.config_hash = config_hash;
        key
    }

    fn record_tiny() -> RecordedRun {
        Experiment::new(
            DatasetKind::Twitter.build(Scale::Tiny).graph,
            AppKind::PageRank,
        )
        .with_hierarchy(Scale::Tiny.hierarchy())
        .record()
    }

    #[test]
    fn concurrent_same_key_obtains_record_once() {
        let registry = FlightRegistry::new();
        let produced = AtomicUsize::new(0);
        let threads = 4;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let (recorded, _) = registry.obtain(test_key(7), || {
                        produced.fetch_add(1, Ordering::Relaxed);
                        // A real recording takes long enough that siblings
                        // reliably pile onto the same flight.
                        (record_tiny(), false)
                    });
                    assert!(!recorded.trace().is_empty());
                });
            }
        });
        let stats = registry.stats();
        assert_eq!(
            stats.recorded + stats.attached,
            threads,
            "every obtain is served exactly once"
        );
        assert_eq!(
            produced.load(Ordering::Relaxed) as u64,
            stats.recorded,
            "produce runs once per recording"
        );
        // All entries drain once the flights land.
        assert!(registry.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let registry = FlightRegistry::new();
        let (a, served_a) = registry.obtain(test_key(1), || (record_tiny(), false));
        let (b, served_b) = registry.obtain(test_key(2), || (record_tiny(), true));
        assert_eq!(served_a, FlightServed::Recorded);
        assert_eq!(served_b, FlightServed::StoreHit);
        assert!(!Arc::ptr_eq(&a, &b));
        let stats = registry.stats();
        assert_eq!(stats.recorded, 1);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.attached, 0);
    }

    #[test]
    fn waiters_share_the_leaders_arc() {
        let registry = Arc::new(FlightRegistry::new());
        let results: Vec<Arc<RecordedRun>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    scope.spawn(move || registry.obtain(test_key(9), || (record_tiny(), false)).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Replays through shared and freshly recorded runs agree bit for bit.
        let reference = results[0].replay(PolicyKind::Rrip);
        for recorded in &results[1..] {
            let replayed = recorded.replay(PolicyKind::Rrip);
            assert_eq!(reference.stats, replayed.stats);
        }
    }

    #[test]
    fn aborted_leader_hands_the_flight_to_a_waiter() {
        let registry = Arc::new(FlightRegistry::new());
        let key = test_key(3);
        // Leader panics mid-produce; the waiter must take over and succeed.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            let leader_registry = Arc::clone(&registry);
            let leader_barrier = Arc::clone(&barrier);
            let leader = scope.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    leader_registry.obtain(key, || {
                        leader_barrier.wait(); // waiter is parked (or about to be)
                        panic!("recording failed");
                    })
                }));
                assert!(result.is_err());
            });
            let waiter_registry = Arc::clone(&registry);
            let waiter_barrier = Arc::clone(&barrier);
            let waiter = scope.spawn(move || {
                waiter_barrier.wait();
                waiter_registry.obtain(key, || (record_tiny(), false))
            });
            leader.join().unwrap();
            let (recorded, served) = waiter.join().unwrap();
            assert!(!recorded.trace().is_empty());
            // The waiter either retried as the new leader or (if it arrived
            // after the abort) led from the start — never stranded.
            assert_eq!(served, FlightServed::Recorded);
        });
        assert!(registry.inflight.lock().unwrap().is_empty());
    }
}
