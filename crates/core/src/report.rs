//! Report tables printed by the bench harness, plus the machine-readable
//! JSON writer the benches use to dump per-figure results
//! (`BENCH_<figure>.json`) so the performance trajectory can be tracked
//! across PRs.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table with a title, headers and rows of cells.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells);
    }

    /// Appends a row whose first cell is a label and whose remaining cells
    /// are numbers formatted with one decimal place.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.1}")));
        self.push_row(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw rows (used by tests and serialization).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Escapes a string for inclusion in a JSON document (the one escaping
/// implementation lives in [`crate::json`]).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    crate::json::escape_into(&mut out, s);
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items
        .iter()
        .map(|c| format!("\"{}\"", json_escape(c)))
        .collect();
    format!("[{}]", cells.join(","))
}

/// Environment metadata embedded in a `BENCH_*.json` dump, so trajectory
/// readers can tell *how* a figure was measured: speedup bars are enforced
/// only at ≥ 4 hardware threads (and demotable via
/// `GRASP_BENCH_NO_SPEEDUP_BARS=1`), which makes a bar-demoted 1-core CI
/// dump and a bar-enforced workstation dump different measurements of the
/// same figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMeta {
    /// Hardware threads available where the dump was produced.
    pub hardware_threads: usize,
    /// Whether the run's speedup bars were enforced (`false` = demoted:
    /// too few threads, or `GRASP_BENCH_NO_SPEEDUP_BARS=1`).
    pub speedup_bars_enforced: bool,
}

/// Serializes one or more tables into a stable, machine-readable JSON
/// document:
///
/// ```json
/// {"figure":"fig5","wall_ms":1234,
///  "tables":[{"title":"...","headers":[...],"rows":[[...],[...]]}]}
/// ```
///
/// `wall_ms` is the wall-clock time the figure's campaign took, so the
/// per-PR `BENCH_<figure>.json` dumps double as a performance trajectory.
pub fn to_json(figure: &str, wall_ms: u128, tables: &[&Table]) -> String {
    to_json_with_meta(figure, wall_ms, None, tables)
}

/// [`to_json`] with environment metadata: adds `"hardware_threads"` and
/// `"speedup_bars_enforced"` members after `wall_ms`. Trajectory readers
/// that predate the fields ignore unknown keys, so dumps with and without
/// metadata diff cleanly against each other.
pub fn to_json_with_meta(
    figure: &str,
    wall_ms: u128,
    meta: Option<BenchMeta>,
    tables: &[&Table],
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"figure\":\"{}\",\"wall_ms\":{}",
        json_escape(figure),
        wall_ms
    ));
    if let Some(meta) = meta {
        out.push_str(&format!(
            ",\"hardware_threads\":{},\"speedup_bars_enforced\":{}",
            meta.hardware_threads, meta.speedup_bars_enforced
        ));
    }
    out.push_str(",\"tables\":[");
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"title\":\"{}\",\"headers\":{},\"rows\":[",
            json_escape(&table.title),
            json_string_array(&table.headers)
        ));
        for (r, row) in table.rows.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str(&json_string_array(row));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Compute column widths over headers and cells.
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_must_match_header_width() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn numeric_rows_are_formatted() {
        let mut t = Table::new("demo", &["dataset", "RRIP", "GRASP"]);
        t.push_numeric_row("tw", &[1.234, 5.678]);
        assert_eq!(t.rows()[0], vec!["tw", "1.2", "5.7"]);
    }

    #[test]
    fn json_output_is_wellformed_and_escaped() {
        let mut t = Table::new("Fig \"5\"", &["dataset", "GRASP"]);
        t.push_numeric_row("lj\n", &[6.4]);
        let json = to_json("fig5", 42, &[&t]);
        assert!(json.starts_with("{\"figure\":\"fig5\",\"wall_ms\":42,"));
        assert!(json.contains("\"title\":\"Fig \\\"5\\\"\""));
        assert!(json.contains("\"headers\":[\"dataset\",\"GRASP\"]"));
        assert!(json.contains("\"rows\":[[\"lj\\n\",\"6.4\"]]"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn json_output_embeds_bench_metadata() {
        let t = Table::new("t", &["x"]);
        let meta = BenchMeta {
            hardware_threads: 8,
            speedup_bars_enforced: true,
        };
        let json = to_json_with_meta("fig", 7, Some(meta), &[&t]);
        assert!(json.contains("\"wall_ms\":7,\"hardware_threads\":8,"));
        assert!(json.contains("\"speedup_bars_enforced\":true,\"tables\":["));
        // Without metadata the document is byte-identical to the legacy
        // shape, so committed baselines stay diffable.
        assert_eq!(
            to_json_with_meta("fig", 7, None, &[&t]),
            to_json("fig", 7, &[&t])
        );
        assert!(to_json("fig", 7, &[&t]).contains("\"wall_ms\":7,\"tables\":["));
    }

    #[test]
    fn json_output_joins_multiple_tables() {
        let a = Table::new("a", &["x"]);
        let b = Table::new("b", &["y"]);
        let json = to_json("combo", 0, &[&a, &b]);
        assert_eq!(json.matches("\"title\"").count(), 2);
        assert!(json.contains("\"rows\":[]"));
    }

    #[test]
    fn display_is_aligned_and_contains_everything() {
        let mut t = Table::new("Fig. 5", &["dataset", "GRASP"]);
        t.push_numeric_row("lj", &[6.4]);
        t.push_numeric_row("kr", &[9.0]);
        let text = t.to_string();
        assert!(text.contains("== Fig. 5 =="));
        assert!(text.contains("dataset"));
        assert!(text.contains("6.4"));
        assert!(text.contains("kr"));
        assert_eq!(t.title(), "Fig. 5");
    }
}
