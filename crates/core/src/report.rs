//! Plain-text report tables printed by the bench harness.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table with a title, headers and rows of cells.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header width"
        );
        self.rows.push(cells);
    }

    /// Appends a row whose first cell is a label and whose remaining cells
    /// are numbers formatted with one decimal place.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.1}")));
        self.push_row(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw rows (used by tests and serialization).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Compute column widths over headers and cells.
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let write_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| -> std::fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            writeln!(f, "{line}")
        };
        write_row(f, &self.headers)?;
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total_width))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_must_match_header_width() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn numeric_rows_are_formatted() {
        let mut t = Table::new("demo", &["dataset", "RRIP", "GRASP"]);
        t.push_numeric_row("tw", &[1.234, 5.678]);
        assert_eq!(t.rows()[0], vec!["tw", "1.2", "5.7"]);
    }

    #[test]
    fn display_is_aligned_and_contains_everything() {
        let mut t = Table::new("Fig. 5", &["dataset", "GRASP"]);
        t.push_numeric_row("lj", &[6.4]);
        t.push_numeric_row("kr", &[9.0]);
        let text = t.to_string();
        assert!(text.contains("== Fig. 5 =="));
        assert!(text.contains("dataset"));
        assert!(text.contains("6.4"));
        assert!(text.contains("kr"));
        assert_eq!(t.title(), "Fig. 5");
    }
}
