//! The dataset catalog.
//!
//! The paper evaluates on five large high-skew graphs (LiveJournal, PLD,
//! Twitter, Kron, SD1-ARC) plus two adversarial low-/no-skew graphs
//! (Friendster, Uniform) — Table V. Those datasets total tens of gigabytes
//! and are not available offline, so the reproduction substitutes synthetic
//! graphs whose *skew* (hot-vertex fraction and edge coverage, Table I)
//! mirrors each original, scaled down together with the simulated LLC so the
//! cache-pressure regime is preserved (see DESIGN.md).

use grasp_cachesim::config::HierarchyConfig;
use grasp_graph::degree::SkewReport;
use grasp_graph::generators::{ChungLu, GraphGenerator, Rmat, Uniform};
use grasp_graph::ingest::{self, DiskCsrError};
use grasp_graph::{Csr, GraphView};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Scale of a synthetic dataset (vertex count and the matching LLC size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// ~1K vertices — unit tests only.
    Tiny,
    /// ~8K vertices — fast experiments, CI.
    Small,
    /// ~32K vertices — the default for the bench harness.
    Medium,
    /// ~128K vertices — closer to the paper's regime; slower.
    Large,
}

impl Scale {
    /// Reads the scale from the `GRASP_SCALE` environment variable
    /// (`tiny` / `small` / `medium` / `large`), defaulting to `Small` so that
    /// the full bench suite completes quickly out of the box.
    pub fn from_env() -> Self {
        match std::env::var("GRASP_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "tiny" => Scale::Tiny,
            "medium" => Scale::Medium,
            "large" => Scale::Large,
            "small" | "" => Scale::Small,
            other => {
                eprintln!("unknown GRASP_SCALE '{other}', using small");
                Scale::Small
            }
        }
    }

    /// log2 of the number of vertices.
    pub fn scale_log2(self) -> u32 {
        match self {
            Scale::Tiny => 11,
            Scale::Small => 15,
            Scale::Medium => 17,
            Scale::Large => 19,
        }
    }

    /// Number of vertices.
    pub fn vertices(self) -> u64 {
        1 << self.scale_log2()
    }

    /// LLC capacity paired with this scale, keeping the LLC : Property Array
    /// footprint ratio in the paper's regime: the footprint of the hot
    /// vertices alone meets or exceeds the LLC capacity, so thrashing occurs
    /// even among hot vertices (Sec. II-E).
    pub fn llc_bytes(self) -> u64 {
        match self {
            Scale::Tiny => 32 * 1024,
            Scale::Small => 64 * 1024,
            Scale::Medium => 128 * 1024,
            Scale::Large => 256 * 1024,
        }
    }

    /// The hierarchy configuration paired with this scale.
    pub fn hierarchy(self) -> HierarchyConfig {
        HierarchyConfig::scaled_with_llc(self.llc_bytes())
    }

    /// The scale's wire/store slug (`tiny` / `small` / `medium` / `large`),
    /// used in trace-store entry file names and [`CampaignSpec`] documents.
    ///
    /// [`CampaignSpec`]: crate::spec::CampaignSpec
    pub fn slug(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Parses a [`Scale::slug`] back to the scale (case-sensitive, exact).
    pub fn from_slug(slug: &str) -> Option<Self> {
        [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large]
            .into_iter()
            .find(|scale| scale.slug() == slug)
    }
}

/// The seven datasets of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// LiveJournal (`lj`) — moderate skew social network.
    LiveJournal,
    /// PLD hyperlink graph (`pl`).
    Pld,
    /// Twitter follower graph (`tw`) — high skew.
    Twitter,
    /// Synthetic Kronecker graph (`kr`) — highest skew.
    Kron,
    /// SD1-ARC web crawl (`sd`).
    Sd1Arc,
    /// Friendster (`fr`) — low-skew adversarial dataset.
    Friendster,
    /// Uniform random graph (`uni`) — no-skew adversarial dataset.
    Uniform,
}

impl DatasetKind {
    /// The five high-skew datasets used in the main evaluation, in the
    /// paper's order (lj, pl, tw, kr, sd).
    pub const HIGH_SKEW: [DatasetKind; 5] = [
        DatasetKind::LiveJournal,
        DatasetKind::Pld,
        DatasetKind::Twitter,
        DatasetKind::Kron,
        DatasetKind::Sd1Arc,
    ];

    /// The two adversarial datasets (fr, uni).
    pub const ADVERSARIAL: [DatasetKind; 2] = [DatasetKind::Friendster, DatasetKind::Uniform];

    /// All seven datasets.
    pub const ALL: [DatasetKind; 7] = [
        DatasetKind::LiveJournal,
        DatasetKind::Pld,
        DatasetKind::Twitter,
        DatasetKind::Kron,
        DatasetKind::Sd1Arc,
        DatasetKind::Friendster,
        DatasetKind::Uniform,
    ];

    /// Short label matching the paper (lj, pl, tw, kr, sd, fr, uni).
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::LiveJournal => "lj",
            DatasetKind::Pld => "pl",
            DatasetKind::Twitter => "tw",
            DatasetKind::Kron => "kr",
            DatasetKind::Sd1Arc => "sd",
            DatasetKind::Friendster => "fr",
            DatasetKind::Uniform => "uni",
        }
    }

    /// Parses a paper label ([`DatasetKind::label`]) back to the kind.
    pub fn from_label(label: &str) -> Option<Self> {
        DatasetKind::ALL
            .into_iter()
            .find(|kind| kind.label() == label)
    }

    /// Average degree of the synthetic stand-in (Table V reports 14–33).
    pub fn average_degree(self) -> u64 {
        match self {
            DatasetKind::LiveJournal => 14,
            DatasetKind::Pld => 15,
            DatasetKind::Twitter => 24,
            DatasetKind::Kron => 20,
            DatasetKind::Sd1Arc => 20,
            DatasetKind::Friendster => 16,
            DatasetKind::Uniform => 20,
        }
    }

    /// Deterministic generator seed per dataset so every run of the harness
    /// sees the same graphs.
    fn seed(self) -> u64 {
        match self {
            DatasetKind::LiveJournal => 0x1001,
            DatasetKind::Pld => 0x1002,
            DatasetKind::Twitter => 0x1003,
            DatasetKind::Kron => 0x1004,
            DatasetKind::Sd1Arc => 0x1005,
            DatasetKind::Friendster => 0x1006,
            DatasetKind::Uniform => 0x1007,
        }
    }

    /// Returns `true` for the high-skew datasets.
    pub fn is_high_skew(self) -> bool {
        !matches!(self, DatasetKind::Friendster | DatasetKind::Uniform)
    }

    /// Builds the synthetic stand-in graph at the given scale.
    pub fn generate(self, scale: Scale) -> Csr {
        let n = scale.vertices();
        let log2 = scale.scale_log2();
        let degree = self.average_degree();
        match self {
            // Moderate-skew social graphs: Chung-Lu with gamma ~2.2-2.4 gives
            // hot-vertex fractions around 20-25% (Table I: lj 25%, pl 16%).
            DatasetKind::LiveJournal => ChungLu::new(n, degree, 2.40).generate(self.seed()),
            DatasetKind::Pld => ChungLu::new(n, degree, 2.15).generate(self.seed()),
            // High-skew graphs: R-MAT with Graph500 parameters (tw, sd) and a
            // more aggressive quadrant split for kr (Table I: 9% hot, 93%
            // coverage).
            DatasetKind::Twitter => Rmat::new(log2, degree).generate(self.seed()),
            DatasetKind::Kron => {
                Rmat::with_probabilities(log2, degree, 0.63, 0.17, 0.17).generate(self.seed())
            }
            DatasetKind::Sd1Arc => Rmat::new(log2, degree).generate(self.seed()),
            // Low-skew adversarial dataset: a mild power law.
            DatasetKind::Friendster => ChungLu::new(n, degree, 3.5).generate(self.seed()),
            // No-skew adversarial dataset.
            DatasetKind::Uniform => Uniform::new(n, degree).generate(self.seed()),
        }
    }

    /// Builds the dataset together with its metadata.
    pub fn build(self, scale: Scale) -> Dataset {
        let graph = self.generate(scale);
        Dataset {
            kind: self,
            scale,
            graph,
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Content hash of an ingested on-disk graph: the FNV-1a digest computed by
/// `grasp_graph::ingest::write_disk_csr` over the graph's dimensions and
/// column bytes. Two ingests of the same edge list — at any thread count —
/// produce the same hash; any structural edit changes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphHash(pub u64);

impl GraphHash {
    /// Store slug for this hash (`g<hash:016x>`), used in trace-store entry
    /// file names.
    pub fn slug(self) -> String {
        format!("g{:016x}", self.0)
    }
}

impl std::fmt::Display for GraphHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The identity of a dataset on a campaign axis: either one of the paper's
/// synthetic stand-ins ([`DatasetKind`]) or a real graph ingested to the
/// on-disk binary CSR format, referenced by content hash and resolved
/// through a [`DatasetCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// A synthetic Table V stand-in, generated at campaign scale.
    Synthetic(DatasetKind),
    /// An ingested on-disk graph, identified by content hash.
    Ingested(GraphHash),
}

impl DatasetId {
    /// Store slug: the paper label for synthetic datasets (`lj`, `tw`, ...),
    /// `g<hash:016x>` for ingested graphs. Lands verbatim in trace-store
    /// entry file names, so a re-ingested (changed) graph can never serve a
    /// stale trace.
    pub fn slug(&self) -> String {
        match self {
            DatasetId::Synthetic(kind) => kind.label().to_owned(),
            DatasetId::Ingested(hash) => hash.slug(),
        }
    }

    /// Parses a [`DatasetId::slug`] back to the identity: a paper label
    /// (`lj`, `tw`, ...) resolves to the synthetic kind, a `g<hash:016x>`
    /// slug to the ingested content hash.
    pub fn from_slug(slug: &str) -> Option<Self> {
        if let Some(kind) = DatasetKind::from_label(slug) {
            return Some(DatasetId::Synthetic(kind));
        }
        let hex = slug.strip_prefix('g')?;
        if hex.len() != 16 {
            return None;
        }
        u64::from_str_radix(hex, 16)
            .ok()
            .map(|hash| DatasetId::Ingested(GraphHash(hash)))
    }

    /// The synthetic kind, if this is a synthetic dataset.
    pub fn as_synthetic(&self) -> Option<DatasetKind> {
        match self {
            DatasetId::Synthetic(kind) => Some(*kind),
            DatasetId::Ingested(_) => None,
        }
    }

    /// The content hash, if this is an ingested dataset.
    pub fn as_ingested(&self) -> Option<GraphHash> {
        match self {
            DatasetId::Synthetic(_) => None,
            DatasetId::Ingested(hash) => Some(*hash),
        }
    }
}

impl From<DatasetKind> for DatasetId {
    fn from(kind: DatasetKind) -> Self {
        DatasetId::Synthetic(kind)
    }
}

impl From<GraphHash> for DatasetId {
    fn from(hash: GraphHash) -> Self {
        DatasetId::Ingested(hash)
    }
}

impl PartialEq<DatasetKind> for DatasetId {
    fn eq(&self, other: &DatasetKind) -> bool {
        matches!(self, DatasetId::Synthetic(kind) if kind == other)
    }
}

impl PartialEq<DatasetId> for DatasetKind {
    fn eq(&self, other: &DatasetId) -> bool {
        other == self
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.slug())
    }
}

/// How an ingested on-disk graph is backed when an experiment runs over it.
///
/// Both backings produce bit-identical results — [`GraphBacking::Mapped`]
/// serves adjacency slices straight from the mmapped column files, while
/// [`GraphBacking::InMemory`] decodes the same files into a [`Csr`] up
/// front.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GraphBacking {
    /// mmap the column files and traverse them in place (out-of-core).
    #[default]
    Mapped,
    /// Decode the columns into an in-memory [`Csr`] before running.
    InMemory,
}

/// One catalog entry: where an ingested graph lives and how to back it.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Directory holding `graph.gcsr` and the column files.
    pub path: PathBuf,
    /// Backing used when the graph is opened for an experiment.
    pub backing: GraphBacking,
}

/// Registry of ingested on-disk graphs, keyed by content hash.
///
/// A campaign that lists [`DatasetId::Ingested`] coordinates resolves them
/// here: registration reads (and checksums) the on-disk header to learn the
/// hash, and [`DatasetCatalog::load`] opens the graph with the registered
/// backing.
#[derive(Debug, Clone, Default)]
pub struct DatasetCatalog {
    entries: HashMap<GraphHash, CatalogEntry>,
}

impl DatasetCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the on-disk graph at `path` with the default (mmap)
    /// backing. Returns its content hash, read from the checksummed header.
    pub fn register(&mut self, path: impl AsRef<Path>) -> Result<GraphHash, DiskCsrError> {
        self.register_with_backing(path, GraphBacking::default())
    }

    /// Registers the on-disk graph at `path`, choosing the backing
    /// experiments open it with.
    pub fn register_with_backing(
        &mut self,
        path: impl AsRef<Path>,
        backing: GraphBacking,
    ) -> Result<GraphHash, DiskCsrError> {
        let path = path.as_ref().to_path_buf();
        let header = ingest::read_header(&path)?;
        let hash = GraphHash(header.content_hash);
        self.entries.insert(hash, CatalogEntry { path, backing });
        Ok(hash)
    }

    /// Looks up a registered graph.
    pub fn get(&self, hash: GraphHash) -> Option<&CatalogEntry> {
        self.entries.get(&hash)
    }

    /// Whether `hash` is registered.
    pub fn contains(&self, hash: GraphHash) -> bool {
        self.entries.contains_key(&hash)
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered hashes, in no particular order.
    pub fn hashes(&self) -> impl Iterator<Item = GraphHash> + '_ {
        self.entries.keys().copied()
    }

    /// Opens a registered graph with its registered backing.
    ///
    /// The mmap backing validates the header and column sizes on open; the
    /// in-memory backing additionally verifies every column checksum while
    /// decoding.
    pub fn load(&self, hash: GraphHash) -> Result<Arc<dyn GraphView>, DiskCsrError> {
        let entry = self.entries.get(&hash).ok_or_else(|| {
            DiskCsrError::Corrupt(format!(
                "graph {hash} is not registered in the dataset catalog"
            ))
        })?;
        let graph: Arc<dyn GraphView> = match entry.backing {
            GraphBacking::Mapped => Arc::new(ingest::MappedCsr::open(&entry.path)?),
            GraphBacking::InMemory => Arc::new(ingest::load_csr(&entry.path)?),
        };
        Ok(graph)
    }
}

/// A generated dataset: the graph plus its provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which of the paper's datasets this stands in for.
    pub kind: DatasetKind,
    /// The scale it was generated at.
    pub scale: Scale,
    /// The graph itself.
    pub graph: Csr,
}

impl Dataset {
    /// Table I-style skew report (in- and out-edge directions).
    pub fn skew(&self) -> (SkewReport, SkewReport) {
        (
            SkewReport::for_in_edges(&self.graph),
            SkewReport::for_out_edges(&self.graph),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = DatasetKind::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels, vec!["lj", "pl", "tw", "kr", "sd", "fr", "uni"]);
    }

    #[test]
    fn high_skew_and_adversarial_partition_all() {
        assert_eq!(
            DatasetKind::HIGH_SKEW.len() + DatasetKind::ADVERSARIAL.len(),
            DatasetKind::ALL.len()
        );
        assert!(DatasetKind::HIGH_SKEW.iter().all(|d| d.is_high_skew()));
        assert!(DatasetKind::ADVERSARIAL.iter().all(|d| !d.is_high_skew()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetKind::Twitter.generate(Scale::Tiny);
        let b = DatasetKind::Twitter.generate(Scale::Tiny);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn scales_grow() {
        assert!(Scale::Tiny.vertices() < Scale::Small.vertices());
        assert!(Scale::Small.vertices() < Scale::Medium.vertices());
        assert!(Scale::Medium.vertices() < Scale::Large.vertices());
        assert!(Scale::Small.llc_bytes() <= Scale::Large.llc_bytes());
        let h = Scale::Small.hierarchy();
        assert_eq!(h.llc.size_bytes, Scale::Small.llc_bytes());
    }

    #[test]
    fn skew_ordering_mirrors_table_i() {
        // Table I: kr is the most skewed (9% hot vertices, 93% edge
        // coverage); uni has essentially no skew; fr sits in between the
        // high-skew datasets and uni.
        let scale = Scale::Small;
        let kr = DatasetKind::Kron.build(scale);
        let tw = DatasetKind::Twitter.build(scale);
        let fr = DatasetKind::Friendster.build(scale);
        let uni = DatasetKind::Uniform.build(scale);
        let idx = |d: &Dataset| d.skew().0.skew_index();
        assert!(idx(&kr) > idx(&fr), "kr {} fr {}", idx(&kr), idx(&fr));
        assert!(idx(&tw) > idx(&fr), "tw {} fr {}", idx(&tw), idx(&fr));
        assert!(idx(&fr) > idx(&uni), "fr {} uni {}", idx(&fr), idx(&uni));
        // High-skew datasets: a minority of hot vertices covers a large
        // majority of edges.
        for d in [&kr, &tw] {
            let (in_skew, _) = d.skew();
            assert!(in_skew.hot_vertices_pct() < 40.0);
            assert!(in_skew.edge_coverage_pct() > 60.0);
        }
        // Uniform: around half the vertices are "hot" — no exploitable skew.
        let (uni_in, _) = uni.skew();
        assert!(uni_in.hot_vertices_pct() > 35.0);
    }

    #[test]
    fn scale_from_env_parses_known_values() {
        // Not setting the variable in-process (tests run in parallel);
        // only check the default path is sane.
        let s = Scale::from_env();
        assert!(matches!(
            s,
            Scale::Tiny | Scale::Small | Scale::Medium | Scale::Large
        ));
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(DatasetKind::Kron.to_string(), "kr");
    }
}
