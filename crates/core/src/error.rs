//! One error surface for everything a campaign can fail on.
//!
//! The workspace grew three independent error enums — the trace store's
//! [`StoreError`], the trace persist format's [`PersistError`] and the
//! on-disk graph format's [`DiskCsrError`] — which was fine while every
//! caller was a CLI printing to stderr. The campaign service needs one type
//! it can turn into a machine-readable error frame, so [`Error`] wraps all
//! three (plus spec decode failures) and assigns every case a **stable**
//! [`Error::kind`] string. Service error frames carry that string verbatim;
//! it is part of the wire protocol and must never change for an existing
//! case (see `docs/service.md`).

use crate::trace_store::StoreError;
use grasp_cachesim::trace::persist::PersistError;
use grasp_graph::ingest::DiskCsrError;

/// Any failure the campaign layer can surface: store, trace-format, graph
/// ingest, or spec decode. See the module docs for the `kind()` contract.
#[derive(Debug)]
pub enum Error {
    /// A trace-store lookup or publication failed.
    Store(StoreError),
    /// A persisted trace block failed to decode.
    Trace(PersistError),
    /// An on-disk graph failed to open or verify.
    Graph(DiskCsrError),
    /// A [`CampaignSpec`](crate::spec::CampaignSpec) failed to decode or
    /// validate; the message says which field and why.
    Spec(String),
}

impl Error {
    /// The stable machine-readable kind string for this error, used verbatim
    /// in service error frames. The set only ever grows; existing strings
    /// never change. A wrapped trace decode failure reports the same kind
    /// whether it surfaced through the store or directly.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Store(StoreError::Io(_)) => "store/io",
            Error::Store(StoreError::Corrupt(_)) => "store/corrupt",
            Error::Store(StoreError::Trace(e)) | Error::Trace(e) => trace_kind(e),
            Error::Graph(e) => graph_kind(e),
            Error::Spec(_) => "spec/invalid",
        }
    }
}

fn trace_kind(error: &PersistError) -> &'static str {
    match error {
        PersistError::Io(_) => "trace/io",
        PersistError::BadMagic(_) => "trace/bad-magic",
        PersistError::UnsupportedVersion(_) => "trace/unsupported-version",
        PersistError::IncompatibleChunkSize { .. } => "trace/incompatible-chunk-size",
        PersistError::Truncated { .. } => "trace/truncated",
        PersistError::ChecksumMismatch { .. } => "trace/checksum-mismatch",
        PersistError::Corrupt(_) => "trace/corrupt",
    }
}

fn graph_kind(error: &DiskCsrError) -> &'static str {
    match error {
        DiskCsrError::BadMagic => "graph/bad-magic",
        DiskCsrError::UnsupportedVersion(_) => "graph/unsupported-version",
        DiskCsrError::Truncated { .. } => "graph/truncated",
        DiskCsrError::HeaderChecksumMismatch { .. } => "graph/header-checksum-mismatch",
        DiskCsrError::ColumnChecksumMismatch { .. } => "graph/column-checksum-mismatch",
        DiskCsrError::Corrupt(_) => "graph/corrupt",
        DiskCsrError::Io(_) => "graph/io",
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Store(e) => write!(f, "trace store: {e}"),
            Error::Trace(e) => write!(f, "trace: {e}"),
            Error::Graph(e) => write!(f, "graph: {e}"),
            Error::Spec(msg) => write!(f, "campaign spec: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            Error::Trace(e) => Some(e),
            Error::Graph(e) => Some(e),
            Error::Spec(_) => None,
        }
    }
}

impl From<StoreError> for Error {
    fn from(error: StoreError) -> Self {
        Error::Store(error)
    }
}

impl From<PersistError> for Error {
    fn from(error: PersistError) -> Self {
        Error::Trace(error)
    }
}

impl From<DiskCsrError> for Error {
    fn from(error: DiskCsrError) -> Self {
        Error::Graph(error)
    }
}

impl From<std::io::Error> for Error {
    fn from(error: std::io::Error) -> Self {
        Error::Store(StoreError::Io(error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_strings() {
        // These strings are wire protocol: the cases here pin them.
        let io = || std::io::Error::other("x");
        assert_eq!(Error::Store(StoreError::Io(io())).kind(), "store/io");
        assert_eq!(
            Error::Store(StoreError::Corrupt("x".into())).kind(),
            "store/corrupt"
        );
        assert_eq!(
            Error::Trace(PersistError::ChecksumMismatch {
                stored: 1,
                computed: 2
            })
            .kind(),
            "trace/checksum-mismatch"
        );
        // The same trace failure reports the same kind through the store.
        assert_eq!(
            Error::Store(StoreError::Trace(PersistError::ChecksumMismatch {
                stored: 1,
                computed: 2
            }))
            .kind(),
            "trace/checksum-mismatch"
        );
        assert_eq!(
            Error::Graph(DiskCsrError::BadMagic).kind(),
            "graph/bad-magic"
        );
        assert_eq!(Error::Spec("bad scale".into()).kind(), "spec/invalid");
    }

    #[test]
    fn io_errors_convert_through_the_store_case() {
        let err: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert_eq!(err.kind(), "store/io");
        assert!(err.to_string().contains("gone"));
    }
}
