//! The persistent trace store: cross-run reuse of recorded post-L2 streams.
//!
//! A recorded trace is bit-identical run to run (fixed seeds end to end), so
//! re-recording it for every campaign wastes the full application +
//! upper-level simulation cost. The [`TraceStore`] is a directory of
//! persisted recordings keyed by everything that determines the stream:
//!
//! ```text
//! (dataset, scale, technique, app, hierarchy/app-config hash, format version)
//!   └──► <dataset>-<scale>-<technique>-<app>-<confighash>.v<version>.trace
//! ```
//!
//! Each entry carries the recording run's **metadata** (application output,
//! instruction estimate) followed by the trace itself in the versioned
//! binary format of [`grasp_cachesim::trace::persist`], so a store hit
//! reconstructs a complete [`RecordedRun`](crate::experiment::RecordedRun) —
//! the campaign skips the record phase entirely and fans the loaded stream
//! out across policies (buffered replay or
//! [`LlcTrace::stream_into`](grasp_cachesim::LlcTrace::stream_into)
//! re-broadcast), bit-identical to a fresh recording.
//!
//! Publication is **atomic**: entries are written to a temp file in the
//! store directory and `rename`d into place, so concurrent campaigns (or a
//! campaign racing `cargo xtask trace gc`) never observe half-written
//! entries. A human-readable `index.tsv` tracks per-entry sizes and
//! last-used timestamps (the LRU order `gc` evicts by); the index is
//! advisory — the `*.trace` files are the source of truth, and readers fall
//! back to filesystem metadata when the index is missing or stale.
//!
//! The store location comes from the builder
//! ([`Campaign::with_trace_store`](crate::campaign::Campaign::with_trace_store))
//! or the `GRASP_TRACE_STORE` environment variable ([`TraceStore::from_env`]).

use crate::datasets::{DatasetKind, Scale};
use grasp_analytics::apps::{AppConfig, AppKind, AppResult};
use grasp_analytics::props::PropertyLayout;
use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::trace::persist::{Fnv64, PersistError, TRACE_FORMAT_VERSION};
use grasp_cachesim::LlcTrace;
use grasp_reorder::TechniqueKind;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Magic bytes opening every store entry (the metadata wrapper around the
/// trace block).
pub const STORE_MAGIC: [u8; 8] = *b"GRSPSTO\0";

/// Version of the store entry layout (metadata framing). Orthogonal to the
/// trace format version, which is part of the entry *file name* so that a
/// trace-format bump naturally cold-starts the store.
pub const STORE_ENTRY_VERSION: u32 = 1;

/// Upper bound on a metadata block; anything larger is corruption, not data.
const MAX_META_LEN: u32 = 1 << 28;

/// The environment variable naming the store directory campaigns and the
/// bench harness pick up by default.
pub const STORE_ENV_VAR: &str = "GRASP_TRACE_STORE";

/// Why a store entry could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The embedded trace block failed to decode.
    Trace(PersistError),
    /// The metadata wrapper is structurally invalid.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::Trace(err) => write!(f, "store entry trace block: {err}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store entry: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Trace(err) => Some(err),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<PersistError> for StoreError {
    fn from(err: PersistError) -> Self {
        StoreError::Trace(err)
    }
}

/// Version of the *recording code*: everything between the application and
/// the post-L2 stream — app kernels, graph generation/reordering, L1/L2/
/// prefetcher simulation, the region classifier. Folded into every store
/// key, so bumping it invalidates all persisted recordings at once. **Bump
/// this whenever a change can alter a recorded stream's contents**; the
/// trace *format* version (file layout) is tracked separately by
/// [`TRACE_FORMAT_VERSION`].
pub const RECORDING_CODE_VERSION: u32 = 1;

/// FNV-1a over the configuration words that determine a recorded stream —
/// stable across runs, platforms and (deliberately) pointer widths. Wraps
/// the persist format's [`Fnv64`] so the store and the format share one
/// hash primitive.
#[derive(Debug, Clone, Copy)]
struct ConfigHasher(Fnv64);

impl ConfigHasher {
    fn new() -> Self {
        let mut hasher = Self(Fnv64::new());
        hasher.word(u64::from(RECORDING_CODE_VERSION));
        hasher
    }

    fn word(&mut self, value: u64) {
        self.0.update(&value.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0.finish()
    }
}

fn hash_hierarchy(hasher: &mut ConfigHasher, hierarchy: &HierarchyConfig) {
    for cache in [&hierarchy.l1, &hierarchy.l2, &hierarchy.llc] {
        hasher.word(cache.size_bytes);
        hasher.word(cache.ways as u64);
        hasher.word(cache.block_bytes);
    }
    // Latencies only shape the timing model, not the recorded stream, but
    // folding them in keeps one key per *experiment configuration*, which is
    // the granularity campaigns reason about.
    hasher.word(hierarchy.latency.l1_cycles);
    hasher.word(hierarchy.latency.l2_cycles);
    hasher.word(hierarchy.latency.llc_cycles);
    hasher.word(hierarchy.latency.memory_cycles);
    hasher.word(u64::from(hierarchy.prefetch));
}

fn hash_app_config(hasher: &mut ConfigHasher, config: &AppConfig) {
    hasher.word(config.max_iterations as u64);
    hasher.word(u64::from(config.root));
    hasher.word(config.sample_roots as u64);
    hasher.word(config.damping.to_bits());
    hasher.word(config.epsilon.to_bits());
    hasher.word(match config.layout {
        PropertyLayout::Separate => 0,
        PropertyLayout::Merged => 1,
    });
}

fn scale_slug(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    }
}

/// Lowercases a display label and maps every non-alphanumeric run to a
/// single `_` (so "Gorder(+DBG)" becomes "gorder_dbg").
fn slugify(label: &str) -> String {
    let mut slug = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !slug.is_empty() {
                slug.push('_');
            }
            gap = false;
            slug.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    slug
}

/// The identity of one recorded stream: everything that determines its
/// contents, plus the trace format version (folded into the file name so a
/// format bump cold-starts the store instead of erroring on every entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceStoreKey {
    /// Dataset the stream was recorded over.
    pub dataset: DatasetKind,
    /// Scale the dataset was generated at.
    pub scale: Scale,
    /// Reordering technique applied before recording.
    pub technique: TechniqueKind,
    /// Application that produced the stream.
    pub app: AppKind,
    /// Fingerprint of the hierarchy + application configuration.
    pub config_hash: u64,
}

impl TraceStoreKey {
    /// Builds the key for one campaign stream coordinate.
    pub fn new(
        dataset: DatasetKind,
        scale: Scale,
        technique: TechniqueKind,
        app: AppKind,
        hierarchy: &HierarchyConfig,
        app_config: &AppConfig,
    ) -> Self {
        let mut hasher = ConfigHasher::new();
        hash_hierarchy(&mut hasher, hierarchy);
        hash_app_config(&mut hasher, app_config);
        Self {
            dataset,
            scale,
            technique,
            app,
            config_hash: hasher.finish(),
        }
    }

    /// The entry file name this key resolves to.
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}-{}-{:016x}.v{}.trace",
            self.dataset.label(),
            scale_slug(self.scale),
            slugify(self.technique.label()),
            slugify(self.app.label()),
            self.config_hash,
            TRACE_FORMAT_VERSION,
        )
    }
}

impl std::fmt::Display for TraceStoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.file_name())
    }
}

/// One reconstructed store entry: the recording run's outputs, ready to be
/// turned back into a `RecordedRun` without touching the application.
#[derive(Debug, Clone)]
pub struct StoredRecording {
    /// The persisted post-L2 stream (context included).
    pub trace: LlcTrace,
    /// The recording run's application output.
    pub app: AppResult,
    /// The recording run's instruction estimate (timing-model input).
    pub instructions: u64,
}

/// Microseconds since the Unix epoch, strictly monotonic within this process
/// so that publications landing in the same clock instant still have a
/// defined LRU order.
fn now_unix_micros() -> u64 {
    static LAST: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    LAST.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |last| {
        Some(now.max(last + 1))
    })
    .expect("fetch_update closure always returns Some")
}

/// Counters of one store handle's traffic (process-lifetime, shared across
/// campaign worker threads).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A snapshot of a store's hit/miss/byte traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Lookups that reconstructed a recording from disk (record phase
    /// skipped).
    pub hits: u64,
    /// Lookups that found no entry (a fresh recording was required).
    pub misses: u64,
    /// Lookups that found an entry but could not decode it (counted in
    /// `misses` as well — the caller records freshly and overwrites).
    pub corrupt: u64,
    /// Entry bytes read on hits.
    pub bytes_read: u64,
    /// Entry bytes written on publications.
    pub bytes_written: u64,
}

impl std::fmt::Display for TraceStoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es) ({} corrupt), {} B read, {} B written",
            self.hits, self.misses, self.corrupt, self.bytes_read, self.bytes_written
        )
    }
}

/// One entry of the store directory, as reported by [`TraceStore::entries`].
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Entry file name (also the key's string form).
    pub file: String,
    /// Entry size in bytes.
    pub bytes: u64,
    /// Unix timestamp (microseconds) of the last recorded use (publication
    /// or hit); falls back to the file's modification time when the index
    /// has no record.
    pub last_used: u64,
}

/// The result of a [`TraceStore::gc`] sweep.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Entries examined.
    pub examined: usize,
    /// File names evicted, least-recently-used first.
    pub evicted: Vec<String>,
    /// Bytes freed by the eviction.
    pub freed_bytes: u64,
    /// Bytes retained after the sweep.
    pub kept_bytes: u64,
}

/// A directory-backed store of persisted recordings. Cloning is not needed:
/// campaigns share one store behind an `Arc`.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    counters: Counters,
    /// Serializes index rewrites within this process. Cross-process index
    /// races are benign: the index is advisory and rebuilt from the entry
    /// files on read.
    index_lock: Mutex<()>,
}

const INDEX_FILE: &str = "index.tsv";

impl TraceStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            counters: Counters::default(),
            index_lock: Mutex::new(()),
        })
    }

    /// Opens the store named by the `GRASP_TRACE_STORE` environment variable,
    /// or `None` when the variable is unset/empty. Creation failures are
    /// reported and treated as unset (a missing store must never break a
    /// campaign).
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var(STORE_ENV_VAR)
            .ok()
            .filter(|s| !s.is_empty())?;
        match Self::open(&dir) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!("{STORE_ENV_VAR}={dir}: cannot open trace store: {err}");
                None
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of this handle's traffic counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &TraceStoreKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Looks `key` up, counting the outcome. A present, valid entry is a
    /// **hit** (the caller skips its record phase); a missing entry is a
    /// **miss**; an unreadable entry is a **corrupt miss** — the caller
    /// records freshly and the subsequent [`TraceStore::publish`] atomically
    /// replaces the bad file.
    pub fn load(&self, key: &TraceStoreKey) -> Option<StoredRecording> {
        match self.try_load(key) {
            Ok(Some(stored)) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&key.file_name());
                Some(stored)
            }
            Ok(None) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(err) => {
                eprintln!(
                    "trace store: {}: {err} (recording freshly)",
                    key.file_name()
                );
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks `key` up without touching the traffic counters. `Ok(None)`
    /// means no entry exists; decode failures are returned, never masked.
    pub fn try_load(&self, key: &TraceStoreKey) -> Result<Option<StoredRecording>, StoreError> {
        let path = self.entry_path(key);
        let file = match std::fs::File::open(&path) {
            Ok(file) => file,
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(err) => return Err(err.into()),
        };
        let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        let mut reader = std::io::BufReader::new(file);
        let stored = read_entry(&mut reader, Some(key.app))?;
        self.counters.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        Ok(Some(stored))
    }

    /// Atomically publishes a recording under `key` (write to a temp file in
    /// the store directory, then rename). Returns the entry size in bytes.
    pub fn publish(
        &self,
        key: &TraceStoreKey,
        trace: &LlcTrace,
        app: &AppResult,
        instructions: u64,
    ) -> Result<u64, StoreError> {
        let final_path = self.entry_path(key);
        // Unique per process *and* per publication: two threads publishing
        // the same key concurrently (campaigns sharing one store) must never
        // interleave writes into one temp file.
        static PUBLICATION: AtomicU64 = AtomicU64::new(0);
        let tmp_path = self.dir.join(format!(
            ".{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            PUBLICATION.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> Result<u64, StoreError> {
            let file = std::fs::File::create(&tmp_path)?;
            let mut writer = std::io::BufWriter::new(file);
            let written = write_entry(&mut writer, trace, app, instructions)?;
            writer.flush()?;
            drop(writer);
            std::fs::rename(&tmp_path, &final_path)?;
            Ok(written)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp_path).ok();
        }
        let written = result?;
        self.counters
            .bytes_written
            .fetch_add(written, Ordering::Relaxed);
        self.record_in_index(&key.file_name(), written);
        Ok(written)
    }

    /// Lists the store's entries (directory scan merged with the index's
    /// last-used timestamps), most recently used first.
    pub fn entries(&self) -> std::io::Result<Vec<StoreEntry>> {
        let index = self.read_index();
        let mut entries = Vec::new();
        for item in std::fs::read_dir(&self.dir)? {
            let item = item?;
            let Ok(file) = item.file_name().into_string() else {
                continue;
            };
            if !file.ends_with(".trace") || file.starts_with('.') {
                continue;
            }
            let metadata = item.metadata()?;
            let fs_mtime = metadata
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            let last_used = index
                .iter()
                .find(|(name, _)| *name == file)
                .map(|&(_, used)| used)
                .unwrap_or(fs_mtime);
            entries.push(StoreEntry {
                file,
                bytes: metadata.len(),
                last_used,
            });
        }
        entries.sort_by(|a, b| b.last_used.cmp(&a.last_used).then(a.file.cmp(&b.file)));
        Ok(entries)
    }

    /// Checksum-verifies every entry. Returns `(file, result)` pairs; an
    /// empty error set means the store is fully intact.
    pub fn verify(&self) -> std::io::Result<Vec<(String, Result<(), StoreError>)>> {
        let mut report = Vec::new();
        for entry in self.entries()? {
            let path = self.dir.join(&entry.file);
            let outcome = (|| -> Result<(), StoreError> {
                let file = std::fs::File::open(&path)?;
                let mut reader = std::io::BufReader::new(file);
                read_entry(&mut reader, None)?;
                Ok(())
            })();
            report.push((entry.file, outcome));
        }
        Ok(report)
    }

    /// Evicts least-recently-used entries until the store holds at most
    /// `max_bytes` of entries. Corrupt or orphaned temp files are always
    /// removed.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcReport> {
        // Sweep stale temp files first (a crashed writer's leftovers).
        for item in std::fs::read_dir(&self.dir)? {
            let item = item?;
            if let Ok(name) = item.file_name().into_string() {
                if name.starts_with('.') && name.contains(".tmp.") {
                    std::fs::remove_file(item.path()).ok();
                }
            }
        }
        let mut entries = self.entries()?; // most recently used first
        let mut report = GcReport {
            examined: entries.len(),
            ..GcReport::default()
        };
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        // Evict from the LRU end until under budget. A victim already gone
        // (a concurrent gc or a manual deletion won the race) still counts
        // as freed — cross-process races stay benign, as the module doc
        // promises.
        while total > max_bytes {
            let Some(victim) = entries.pop() else {
                break;
            };
            if let Err(err) = std::fs::remove_file(self.dir.join(&victim.file)) {
                if err.kind() != std::io::ErrorKind::NotFound {
                    return Err(err);
                }
            }
            total -= victim.bytes;
            report.freed_bytes += victim.bytes;
            report.evicted.push(victim.file);
        }
        report.kept_bytes = total;
        self.rewrite_index(&entries);
        Ok(report)
    }

    // ---- index maintenance (advisory; best-effort) ----

    fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    fn read_index(&self) -> Vec<(String, u64)> {
        let Ok(text) = std::fs::read_to_string(self.index_path()) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut fields = line.split('\t');
                let file = fields.next()?.to_owned();
                let last_used = fields.next()?.parse().ok()?;
                Some((file, last_used))
            })
            .collect()
    }

    fn write_index(&self, entries: &[(String, u64)]) {
        let mut text = String::new();
        for (file, last_used) in entries {
            text.push_str(file);
            text.push('\t');
            text.push_str(&last_used.to_string());
            text.push('\n');
        }
        let tmp = self
            .dir
            .join(format!(".{INDEX_FILE}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, self.index_path()).is_err() {
            std::fs::remove_file(&tmp).ok();
        }
    }

    fn update_index_entry(&self, file: &str) {
        let _guard = self.index_lock.lock().expect("index lock");
        let mut index = self.read_index();
        let now = now_unix_micros();
        match index.iter_mut().find(|(name, _)| name == file) {
            Some(entry) => entry.1 = now,
            None => index.push((file.to_owned(), now)),
        }
        self.write_index(&index);
    }

    fn touch(&self, file: &str) {
        self.update_index_entry(file);
    }

    fn record_in_index(&self, file: &str, _bytes: u64) {
        self.update_index_entry(file);
    }

    fn rewrite_index(&self, entries: &[StoreEntry]) {
        let _guard = self.index_lock.lock().expect("index lock");
        let index: Vec<(String, u64)> = entries
            .iter()
            .map(|e| (e.file.clone(), e.last_used))
            .collect();
        self.write_index(&index);
    }
}

// ---- entry encoding ----

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn encode_meta(app: &AppResult, instructions: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40 + app.app.len() + app.values.len() * 8);
    put_u32(&mut buf, app.app.len() as u32);
    buf.extend_from_slice(app.app.as_bytes());
    put_u64(&mut buf, app.iterations as u64);
    put_u64(&mut buf, app.edges_processed);
    put_u64(&mut buf, instructions);
    put_u64(&mut buf, app.values.len() as u64);
    for &value in &app.values {
        put_u64(&mut buf, value.to_bits());
    }
    buf
}

fn meta_checksum(bytes: &[u8]) -> u64 {
    Fnv64::digest(bytes)
}

fn write_entry(
    writer: &mut impl Write,
    trace: &LlcTrace,
    app: &AppResult,
    instructions: u64,
) -> Result<u64, StoreError> {
    let meta = encode_meta(app, instructions);
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(&STORE_MAGIC);
    put_u32(&mut header, STORE_ENTRY_VERSION);
    put_u32(&mut header, meta.len() as u32);
    put_u64(&mut header, meta_checksum(&meta));
    writer.write_all(&header).map_err(StoreError::Io)?;
    writer.write_all(&meta).map_err(StoreError::Io)?;
    let trace_bytes = trace.write_to(writer)?;
    Ok(header.len() as u64 + meta.len() as u64 + trace_bytes)
}

struct MetaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaCursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(StoreError::Corrupt(format!("metadata ends inside {what}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Reads one entry. When `expected_app` is given, the stored application
/// label must match it (and the result reuses the canonical static label);
/// verification passes `None` and accepts any known application.
fn read_entry(
    reader: &mut impl Read,
    expected_app: Option<AppKind>,
) -> Result<StoredRecording, StoreError> {
    let mut header = [0u8; 24];
    reader
        .read_exact(&mut header)
        .map_err(|err| truncated(err, "entry header"))?;
    if header[0..8] != STORE_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "bad entry magic {:02x?}",
            &header[0..8]
        )));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != STORE_ENTRY_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported entry version {version} (this build reads {STORE_ENTRY_VERSION})"
        )));
    }
    let meta_len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
    if meta_len > MAX_META_LEN {
        return Err(StoreError::Corrupt(format!(
            "metadata block of {meta_len} bytes is implausibly large"
        )));
    }
    let stored_checksum = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let mut meta = vec![0u8; meta_len as usize];
    reader
        .read_exact(&mut meta)
        .map_err(|err| truncated(err, "metadata block"))?;
    let computed = meta_checksum(&meta);
    if computed != stored_checksum {
        return Err(StoreError::Corrupt(format!(
            "metadata checksum mismatch: stored {stored_checksum:#018x}, computed {computed:#018x}"
        )));
    }

    let mut cursor = MetaCursor {
        bytes: &meta,
        pos: 0,
    };
    let app_len = cursor.u32("app label length")? as usize;
    let app_label = std::str::from_utf8(cursor.take(app_len, "app label")?)
        .map_err(|_| StoreError::Corrupt("app label is not UTF-8".to_owned()))?;
    let app_kind = AppKind::ALL
        .into_iter()
        .find(|kind| kind.label() == app_label)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown application {app_label:?}")))?;
    if let Some(expected) = expected_app {
        if app_kind != expected {
            return Err(StoreError::Corrupt(format!(
                "entry records {app_label:?} but the key names {:?}",
                expected.label()
            )));
        }
    }
    let iterations = cursor.u64("iterations")? as usize;
    let edges_processed = cursor.u64("edges processed")?;
    let instructions = cursor.u64("instruction estimate")?;
    let value_count = cursor.u64("value count")? as usize;
    if value_count > (meta.len() - cursor.pos) / 8 {
        return Err(StoreError::Corrupt(format!(
            "value count {value_count} exceeds the metadata block"
        )));
    }
    let mut values = Vec::with_capacity(value_count);
    for _ in 0..value_count {
        values.push(f64::from_bits(cursor.u64("value")?));
    }
    if cursor.pos != meta.len() {
        return Err(StoreError::Corrupt(
            "trailing bytes after the metadata block".to_owned(),
        ));
    }

    let trace = LlcTrace::read_from(reader)?;
    Ok(StoredRecording {
        trace,
        app: AppResult {
            app: app_kind.label(),
            values,
            iterations,
            edges_processed,
        },
        instructions,
    })
}

fn truncated(err: std::io::Error, what: &str) -> StoreError {
    if err.kind() == std::io::ErrorKind::UnexpectedEof {
        StoreError::Corrupt(format!("entry truncated while reading {what}"))
    } else {
        StoreError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_cachesim::request::AccessInfo;

    fn temp_store(tag: &str) -> TraceStore {
        let dir = std::env::temp_dir().join(format!(
            "grasp-trace-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TraceStore::open(dir).expect("store opens")
    }

    fn sample_key(config_seed: u64) -> TraceStoreKey {
        let mut hierarchy = Scale::Tiny.hierarchy();
        hierarchy.latency.memory_cycles += config_seed; // vary the hash
        TraceStoreKey::new(
            DatasetKind::Twitter,
            Scale::Tiny,
            TechniqueKind::Dbg,
            AppKind::PageRank,
            &hierarchy,
            &AppConfig::default(),
        )
    }

    fn sample_recording(events: u64) -> (LlcTrace, AppResult) {
        let mut trace = LlcTrace::new();
        for i in 0..events {
            trace.push(&AccessInfo::read(i * 64).with_site((i % 5) as u16));
            if i % 11 == 0 {
                trace.push_writeback(i * 64);
            }
        }
        let app = AppResult {
            app: AppKind::PageRank.label(),
            values: (0..16).map(|i| i as f64 / 7.0).collect(),
            iterations: 3,
            edges_processed: events * 2,
        };
        (trace, app)
    }

    #[test]
    fn publish_then_load_roundtrips() {
        let store = temp_store("roundtrip");
        let key = sample_key(0);
        let (trace, app) = sample_recording(500);
        assert!(store.load(&key).is_none(), "empty store must miss");
        let written = store.publish(&key, &trace, &app, 12_345).expect("publish");
        assert!(written > 0);
        let stored = store.load(&key).expect("hit after publish");
        assert_eq!(stored.trace, trace);
        assert_eq!(stored.app, app);
        assert_eq!(stored.instructions, 12_345);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.corrupt, 0);
        assert_eq!(stats.bytes_written, written);
        assert!(stats.bytes_read >= written);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let a = sample_key(0);
        let b = sample_key(7);
        assert_ne!(a.config_hash, b.config_hash);
        assert_ne!(a.file_name(), b.file_name());
        // Every axis of the key lands in the file name.
        let name = a.file_name();
        assert!(name.contains("tw-"), "{name}");
        assert!(name.contains("-tiny-"), "{name}");
        assert!(name.contains("-dbg-"), "{name}");
        assert!(name.contains("-pr-"), "{name}");
        assert!(
            name.ends_with(&format!(".v{TRACE_FORMAT_VERSION}.trace")),
            "{name}"
        );
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slugify("Gorder(+DBG)"), "gorder_dbg");
        assert_eq!(slugify("PRD"), "prd");
        assert_eq!(slugify("GRASP (Insertion-Only)"), "grasp_insertion_only");
        for technique in TechniqueKind::ALL {
            let slug = slugify(technique.label());
            assert!(
                slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{slug}"
            );
            assert!(!slug.is_empty());
        }
    }

    #[test]
    fn corrupt_entries_are_counted_and_overwritable() {
        let store = temp_store("corrupt");
        let key = sample_key(0);
        let (trace, app) = sample_recording(100);
        store.publish(&key, &trace, &app, 1).expect("publish");
        // Flip one byte near the end (inside the trace payload).
        let path = store.dir().join(key.file_name());
        let mut bytes = std::fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted entry");
        // try_load surfaces the typed error; load treats it as a corrupt miss.
        assert!(matches!(
            store.try_load(&key),
            Err(StoreError::Trace(PersistError::ChecksumMismatch { .. }))
        ));
        assert!(store.load(&key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        // Re-publishing atomically replaces the bad entry.
        store.publish(&key, &trace, &app, 1).expect("re-publish");
        assert!(store.load(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn metadata_corruption_is_typed_not_silent() {
        let store = temp_store("meta-corrupt");
        let key = sample_key(0);
        let (trace, app) = sample_recording(50);
        store.publish(&key, &trace, &app, 1).expect("publish");
        let path = store.dir().join(key.file_name());
        let mut bytes = std::fs::read(&path).expect("read entry");
        bytes[30] ^= 0x10; // inside the metadata block
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(store.try_load(&key), Err(StoreError::Corrupt(_))));
        // Truncation inside the metadata block, and inside the trace block.
        for cut in [10, 40, bytes.len() - 3] {
            std::fs::write(&path, &bytes[..cut]).expect("write truncated");
            assert!(store.try_load(&key).is_err(), "cut at {cut}");
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wrong_app_in_entry_is_rejected() {
        let store = temp_store("wrong-app");
        let key = sample_key(0);
        let (trace, mut app) = sample_recording(20);
        app.app = AppKind::Sssp.label();
        store.publish(&key, &trace, &app, 1).expect("publish");
        assert!(matches!(
            store.try_load(&key),
            Err(StoreError::Corrupt(msg)) if msg.contains("SSSP")
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn entries_verify_and_gc_evicts_lru() {
        let store = temp_store("gc");
        let (trace, app) = sample_recording(2000);
        let keys: Vec<TraceStoreKey> = (0..3).map(sample_key).collect();
        let mut sizes = Vec::new();
        for key in &keys {
            sizes.push(store.publish(key, &trace, &app, 1).expect("publish"));
        }
        // Touch entry 0 so it is the most recently used.
        assert!(store.load(&keys[0]).is_some());
        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].file, keys[0].file_name(), "MRU first");
        let verify = store.verify().expect("verify");
        assert!(verify.iter().all(|(_, outcome)| outcome.is_ok()));
        // Budget for one entry: the two least-recently-used are evicted.
        let report = store.gc(sizes[0] + 1).expect("gc");
        assert_eq!(report.examined, 3);
        assert_eq!(report.evicted.len(), 2);
        assert!(!report.evicted.contains(&keys[0].file_name()));
        assert_eq!(report.kept_bytes, sizes[0]);
        assert_eq!(store.entries().expect("entries").len(), 1);
        // gc(0) clears the store.
        let report = store.gc(0).expect("gc all");
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.kept_bytes, 0);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_sweeps_stale_temp_files() {
        let store = temp_store("tmp-sweep");
        std::fs::write(store.dir().join(".orphan.trace.tmp.999"), b"junk").expect("write");
        let report = store.gc(u64::MAX).expect("gc");
        assert_eq!(report.examined, 0);
        assert!(!store.dir().join(".orphan.trace.tmp.999").exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn index_survives_deletion() {
        let store = temp_store("index");
        let key = sample_key(0);
        let (trace, app) = sample_recording(30);
        store.publish(&key, &trace, &app, 1).expect("publish");
        std::fs::remove_file(store.dir().join(INDEX_FILE)).expect("drop index");
        // entries() falls back to filesystem metadata.
        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].last_used > 0, "falls back to fs mtime");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn stats_display_reads_well() {
        let stats = TraceStoreStats {
            hits: 2,
            misses: 1,
            corrupt: 0,
            bytes_read: 10,
            bytes_written: 20,
        };
        let text = stats.to_string();
        assert!(text.contains("2 hit(s)"));
        assert!(text.contains("20 B written"));
    }
}
