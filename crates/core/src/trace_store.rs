//! The persistent trace store: cross-run reuse of recorded post-L2 streams.
//!
//! A recorded trace is bit-identical run to run (fixed seeds end to end), so
//! re-recording it for every campaign wastes the full application +
//! upper-level simulation cost. The [`TraceStore`] is a directory of
//! persisted recordings keyed by everything that determines the stream:
//!
//! ```text
//! (dataset, scale, technique, app, hierarchy/app-config hash, codec)
//!   └──► <dataset>-<scale>-<technique>-<app>-<confighash>.v<version>.trace
//! ```
//!
//! The `<version>` suffix is the **codec's** format version
//! ([`Codec::format_version`]): raw entries are `.v1.trace` (byte-identical
//! to the pre-codec store, so old stores stay warm), delta+varint entries
//! are `.v2.trace`. The codec changes only the entry's *encoding*, never the
//! recorded stream, so lookups fall back across codecs: a campaign keyed for
//! `DeltaVarint` that finds only a `.v1.trace` raw entry still hits (and a
//! raw-keyed campaign reads `.v2.trace` entries just as happily) — the trace
//! header names its own codec and [`LlcTrace::read_from`] dispatches on it.
//! `cargo xtask trace recompress` migrates a store to one codec in place.
//!
//! Each entry carries the recording run's **metadata** (application output,
//! instruction estimate) followed by the trace itself in the versioned
//! binary format of [`grasp_cachesim::trace::persist`], so a store hit
//! reconstructs a complete [`RecordedRun`](crate::experiment::RecordedRun) —
//! the campaign skips the record phase entirely and fans the loaded stream
//! out across policies (buffered replay or
//! [`LlcTrace::stream_into`](grasp_cachesim::LlcTrace::stream_into)
//! re-broadcast), bit-identical to a fresh recording.
//!
//! Publication is **atomic**: entries are written to a temp file in the
//! store directory and `rename`d into place, so concurrent campaigns (or a
//! campaign racing `cargo xtask trace gc`) never observe half-written
//! entries. A human-readable `index.tsv` tracks per-entry sizes and
//! last-used timestamps (the LRU order `gc` evicts by); the index is
//! advisory — the `*.trace` files are the source of truth, and readers fall
//! back to filesystem metadata when the index is missing or stale.
//!
//! The store location comes from the builder
//! ([`Campaign::with_trace_store`](crate::campaign::Campaign::with_trace_store))
//! or the `GRASP_TRACE_STORE` environment variable ([`TraceStore::from_env`]).

use crate::datasets::{DatasetId, Scale};
use grasp_analytics::apps::{AppConfig, AppKind, AppResult};
use grasp_analytics::props::PropertyLayout;
use grasp_cachesim::config::HierarchyConfig;
pub use grasp_cachesim::trace::persist::Codec;

use grasp_cachesim::trace::persist::{Fnv64, PersistError};
use grasp_cachesim::LlcTrace;
use grasp_reorder::TechniqueKind;
use std::io::{Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Magic bytes opening every store entry (the metadata wrapper around the
/// trace block).
pub const STORE_MAGIC: [u8; 8] = *b"GRSPSTO\0";

/// Version of the store entry layout (metadata framing). Orthogonal to the
/// trace format version, which is part of the entry *file name* so that a
/// trace-format bump naturally cold-starts the store.
pub const STORE_ENTRY_VERSION: u32 = 1;

/// Upper bound on a metadata block; anything larger is corruption, not data.
const MAX_META_LEN: u32 = 1 << 28;

/// The environment variable naming the store directory campaigns and the
/// bench harness pick up by default.
pub const STORE_ENV_VAR: &str = "GRASP_TRACE_STORE";

/// The environment variable selecting the [`Codec`] campaigns persist new
/// recordings with (`raw` or `delta-varint`; default: `delta-varint`).
/// Only *publications* are affected — loads read whatever codec an entry
/// carries.
pub const CODEC_ENV_VAR: &str = "GRASP_TRACE_CODEC";

/// Resolves the publication codec from [`CODEC_ENV_VAR`]: unset or empty
/// means the default ([`Codec::DeltaVarint`]); an unparsable value is
/// reported and treated as unset (a typo must never break a campaign).
pub fn codec_from_env() -> Codec {
    match std::env::var(CODEC_ENV_VAR) {
        Ok(raw) if !raw.is_empty() => Codec::from_label(&raw).unwrap_or_else(|| {
            eprintln!(
                "{CODEC_ENV_VAR}={raw}: unknown codec (expected one of: raw, delta-varint); \
                 using {}",
                Codec::default()
            );
            Codec::default()
        }),
        _ => Codec::default(),
    }
}

/// Why a store entry could not be read or written.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// The embedded trace block failed to decode.
    Trace(PersistError),
    /// The metadata wrapper is structurally invalid.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::Trace(err) => write!(f, "store entry trace block: {err}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store entry: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Trace(err) => Some(err),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<PersistError> for StoreError {
    fn from(err: PersistError) -> Self {
        StoreError::Trace(err)
    }
}

/// Version of the *recording code*: everything between the application and
/// the post-L2 stream — app kernels, graph generation/reordering, L1/L2/
/// prefetcher simulation, the region classifier. Folded into every store
/// key, so bumping it invalidates all persisted recordings at once. **Bump
/// this whenever a change can alter a recorded stream's contents**; the
/// trace *format* version (file layout) is tracked separately by
/// [`TRACE_FORMAT_VERSION`](grasp_cachesim::trace::persist::TRACE_FORMAT_VERSION).
pub const RECORDING_CODE_VERSION: u32 = 1;

/// FNV-1a over the configuration words that determine a recorded stream —
/// stable across runs, platforms and (deliberately) pointer widths. Wraps
/// the persist format's [`Fnv64`] so the store and the format share one
/// hash primitive.
#[derive(Debug, Clone, Copy)]
struct ConfigHasher(Fnv64);

impl ConfigHasher {
    fn new() -> Self {
        let mut hasher = Self(Fnv64::new());
        hasher.word(u64::from(RECORDING_CODE_VERSION));
        hasher
    }

    fn word(&mut self, value: u64) {
        self.0.update(&value.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0.finish()
    }
}

fn hash_hierarchy(hasher: &mut ConfigHasher, hierarchy: &HierarchyConfig) {
    for cache in [&hierarchy.l1, &hierarchy.l2, &hierarchy.llc] {
        hasher.word(cache.size_bytes);
        hasher.word(cache.ways as u64);
        hasher.word(cache.block_bytes);
    }
    // Latencies only shape the timing model, not the recorded stream, but
    // folding them in keeps one key per *experiment configuration*, which is
    // the granularity campaigns reason about.
    hasher.word(hierarchy.latency.l1_cycles);
    hasher.word(hierarchy.latency.l2_cycles);
    hasher.word(hierarchy.latency.llc_cycles);
    hasher.word(hierarchy.latency.memory_cycles);
    hasher.word(u64::from(hierarchy.prefetch));
}

fn hash_app_config(hasher: &mut ConfigHasher, config: &AppConfig) {
    hasher.word(config.max_iterations as u64);
    hasher.word(u64::from(config.root));
    hasher.word(config.sample_roots as u64);
    hasher.word(config.damping.to_bits());
    hasher.word(config.epsilon.to_bits());
    hasher.word(match config.layout {
        PropertyLayout::Separate => 0,
        PropertyLayout::Merged => 1,
    });
}

/// Lowercases a display label and maps every non-alphanumeric run to a
/// single `_` (so "Gorder(+DBG)" becomes "gorder_dbg").
fn slugify(label: &str) -> String {
    let mut slug = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !slug.is_empty() {
                slug.push('_');
            }
            gap = false;
            slug.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    slug
}

/// The identity of one recorded stream: everything that determines its
/// contents, plus the [`Codec`] new publications are encoded with. The
/// codec's format version is folded into the file name, so a format bump
/// cold-starts the store instead of erroring on every entry — but because
/// the codec never changes the stream's *contents*, lookups fall back to the
/// other codecs' file names before declaring a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceStoreKey {
    /// Dataset the stream was recorded over.
    pub dataset: DatasetId,
    /// Scale the dataset was generated at.
    pub scale: Scale,
    /// Reordering technique applied before recording.
    pub technique: TechniqueKind,
    /// Application that produced the stream.
    pub app: AppKind,
    /// Fingerprint of the hierarchy + application configuration.
    pub config_hash: u64,
    /// Codec publications under this key are encoded with (default:
    /// [`Codec::DeltaVarint`]).
    pub codec: Codec,
}

impl TraceStoreKey {
    /// Builds the key for one campaign stream coordinate (with the default
    /// codec; see [`TraceStoreKey::with_codec`]).
    pub fn new(
        dataset: impl Into<DatasetId>,
        scale: Scale,
        technique: TechniqueKind,
        app: AppKind,
        hierarchy: &HierarchyConfig,
        app_config: &AppConfig,
    ) -> Self {
        let mut hasher = ConfigHasher::new();
        hash_hierarchy(&mut hasher, hierarchy);
        hash_app_config(&mut hasher, app_config);
        Self {
            dataset: dataset.into(),
            scale,
            technique,
            app,
            config_hash: hasher.finish(),
            codec: Codec::default(),
        }
    }

    /// Selects the codec publications under this key use.
    #[must_use]
    pub fn with_codec(mut self, codec: Codec) -> Self {
        self.codec = codec;
        self
    }

    /// The entry file name this key publishes to.
    pub fn file_name(&self) -> String {
        self.file_name_for(self.codec)
    }

    /// The entry file name this key would resolve to under `codec` (lookup
    /// fallbacks walk these).
    fn file_name_for(&self, codec: Codec) -> String {
        format!(
            "{}-{}-{}-{}-{:016x}.v{}.trace",
            self.dataset.slug(),
            self.scale.slug(),
            slugify(self.technique.label()),
            slugify(self.app.label()),
            self.config_hash,
            codec.format_version(),
        )
    }

    /// Every file name a lookup may be served from: the key's own codec
    /// first, then the remaining codecs in preference order.
    fn lookup_file_names(&self) -> impl Iterator<Item = String> + '_ {
        std::iter::once(self.codec)
            .chain(Codec::ALL.into_iter().filter(|&c| c != self.codec))
            .map(|codec| self.file_name_for(codec))
    }
}

impl std::fmt::Display for TraceStoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.file_name())
    }
}

/// One reconstructed store entry: the recording run's outputs, ready to be
/// turned back into a `RecordedRun` without touching the application.
#[derive(Debug, Clone)]
pub struct StoredRecording {
    /// The persisted post-L2 stream (context included).
    pub trace: LlcTrace,
    /// The recording run's application output.
    pub app: AppResult,
    /// The recording run's instruction estimate (timing-model input).
    pub instructions: u64,
    /// The codec the entry's trace block was encoded with (may differ from
    /// the key's codec on a cross-codec fallback hit).
    pub codec: Codec,
}

/// Microseconds since the Unix epoch, strictly monotonic within this process
/// so that publications landing in the same clock instant still have a
/// defined LRU order.
fn now_unix_micros() -> u64 {
    static LAST: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    LAST.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |last| {
        Some(now.max(last + 1))
    })
    .expect("fetch_update closure always returns Some")
}

/// Counters of one store handle's traffic (process-lifetime, shared across
/// campaign worker threads).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// A snapshot of a store's hit/miss/byte traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Lookups that reconstructed a recording from disk (record phase
    /// skipped).
    pub hits: u64,
    /// Lookups that found no entry (a fresh recording was required).
    pub misses: u64,
    /// Lookups that found an entry but could not decode it (counted in
    /// `misses` as well — the caller records freshly and overwrites).
    pub corrupt: u64,
    /// Entry bytes read on hits.
    pub bytes_read: u64,
    /// Entry bytes written on publications.
    pub bytes_written: u64,
}

impl std::fmt::Display for TraceStoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es) ({} corrupt), {} B read, {} B written",
            self.hits, self.misses, self.corrupt, self.bytes_read, self.bytes_written
        )
    }
}

/// One entry of the store directory, as reported by [`TraceStore::entries`].
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Entry file name (also the key's string form).
    pub file: String,
    /// Entry size in bytes.
    pub bytes: u64,
    /// Unix timestamp (microseconds) of the last recorded use (publication
    /// or hit); falls back to the file's modification time when the index
    /// has no record.
    pub last_used: u64,
}

/// One entry's self-description, read from its headers by
/// [`TraceStore::peek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryInfo {
    /// Trace format version of the embedded trace block.
    pub trace_version: u32,
    /// Codec the trace block is encoded with.
    pub codec: Codec,
    /// Recorded events in the trace block.
    pub records: u64,
    /// The bytes this entry would occupy under [`Codec::Raw`] (12 B/record
    /// plus headers) — the denominator of the store's compression ratio.
    pub raw_bytes: u64,
}

/// The result of a [`TraceStore::recompress`] migration.
#[derive(Debug, Clone, Default)]
pub struct RecompressReport {
    /// Entries examined.
    pub examined: usize,
    /// File names re-encoded (their pre-migration names).
    pub converted: Vec<String>,
    /// Entries already in the target codec, left untouched.
    pub skipped: usize,
    /// Entries that could not be migrated: `(file, error)`, left in place.
    pub failed: Vec<(String, String)>,
    /// Total entry bytes before the migration (excluding failures).
    pub bytes_before: u64,
    /// Total entry bytes after the migration (excluding failures).
    pub bytes_after: u64,
}

/// Swaps the `.v<N>.trace` suffix of an entry file name for `target`'s
/// format version (`None` when the name has no such suffix).
fn retarget_file_name(file: &str, target: Codec) -> Option<String> {
    let base = file.strip_suffix(".trace")?;
    let (base, version) = base.rsplit_once(".v")?;
    version.parse::<u32>().ok()?;
    Some(format!("{base}.v{}.trace", target.format_version()))
}

/// The result of a [`TraceStore::gc`] sweep.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Entries examined.
    pub examined: usize,
    /// File names evicted, least-recently-used first.
    pub evicted: Vec<String>,
    /// Bytes freed by the eviction.
    pub freed_bytes: u64,
    /// Bytes retained after the sweep.
    pub kept_bytes: u64,
}

/// A directory-backed store of persisted recordings. Cloning is not needed:
/// campaigns share one store behind an `Arc`.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    counters: Counters,
    /// Serializes index rewrites within this process. Cross-process index
    /// races are benign: the index is advisory and rebuilt from the entry
    /// files on read.
    index_lock: Mutex<()>,
}

const INDEX_FILE: &str = "index.tsv";

impl TraceStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            counters: Counters::default(),
            index_lock: Mutex::new(()),
        })
    }

    /// Opens the store named by the `GRASP_TRACE_STORE` environment variable,
    /// or `None` when the variable is unset/empty. Creation failures are
    /// reported and treated as unset (a missing store must never break a
    /// campaign).
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var(STORE_ENV_VAR)
            .ok()
            .filter(|s| !s.is_empty())?;
        match Self::open(&dir) {
            Ok(store) => Some(store),
            Err(err) => {
                eprintln!("{STORE_ENV_VAR}={dir}: cannot open trace store: {err}");
                None
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Snapshot of this handle's traffic counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            bytes_read: self.counters.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.counters.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Whether *some* entry file exists for `key` (any codec), without
    /// reading or validating it. This is how a scheduler classifies a
    /// stream's obtain task up front — a probe hit plans a cheap `Load`
    /// task, a probe miss plans a full `Record` task — so loads and records
    /// can be cost-ordered and overlapped. Probing never touches the
    /// traffic counters, and a probe hit is only a *plan*: the load itself
    /// still falls back to recording when the entry turns out corrupt.
    pub fn probe(&self, key: &TraceStoreKey) -> bool {
        key.lookup_file_names()
            .any(|file| self.dir.join(file).exists())
    }

    /// Looks `key` up, counting the outcome. A present, valid entry is a
    /// **hit** (the caller skips its record phase); a missing entry is a
    /// **miss**; an unreadable entry is a **corrupt miss** — the caller
    /// records freshly and the subsequent [`TraceStore::publish`] atomically
    /// replaces the bad file.
    ///
    /// This is a convenience wrapper over [`TraceStore::try_load`] that
    /// folds decode failures into `None` (after counting and logging them).
    /// Callers that must *distinguish* a corrupt entry from a missing one —
    /// the campaign service reports `store/corrupt` error frames rather
    /// than silently re-recording — should call [`TraceStore::try_load`]
    /// and inspect the [`StoreError`] themselves.
    pub fn load(&self, key: &TraceStoreKey) -> Option<StoredRecording> {
        match self.try_load(key) {
            Ok(Some(stored)) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                // Touch the file the lookup actually resolved (a cross-codec
                // fallback hit lives under the fallback codec's name).
                self.touch(&key.file_name_for(stored.codec));
                Some(stored)
            }
            Ok(None) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(err) => {
                eprintln!(
                    "trace store: {}: {err} (recording freshly)",
                    key.file_name()
                );
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks `key` up without touching the traffic counters. `Ok(None)`
    /// means no entry exists; decode failures are returned, never masked.
    /// [`TraceStore::load`] is the counting wrapper over this.
    pub fn try_load(&self, key: &TraceStoreKey) -> Result<Option<StoredRecording>, StoreError> {
        Ok(self.lookup(key)?.map(|(_, stored)| stored))
    }

    /// The lookup walk: the key's own codec file first, then the other
    /// codecs' names (cross-codec reuse — the stream is identical, only the
    /// encoding differs). The first file that *exists* decides the outcome;
    /// a corrupt primary is an error (the caller re-records and overwrites),
    /// never silently shadowed by a fallback.
    fn lookup(&self, key: &TraceStoreKey) -> Result<Option<(String, StoredRecording)>, StoreError> {
        for file in key.lookup_file_names() {
            let path = self.dir.join(&file);
            let handle = match std::fs::File::open(&path) {
                Ok(handle) => handle,
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => continue,
                Err(err) => return Err(err.into()),
            };
            let bytes = handle.metadata().map(|m| m.len()).unwrap_or(0);
            let mut reader = std::io::BufReader::new(handle);
            let stored = read_entry(&mut reader, Some(key.app))?;
            self.counters.bytes_read.fetch_add(bytes, Ordering::Relaxed);
            return Ok(Some((file, stored)));
        }
        Ok(None)
    }

    /// Atomically publishes a recording under `key`, encoded with the key's
    /// [`Codec`] (write to a temp file in the store directory, then rename).
    /// Returns the entry size in bytes.
    pub fn publish(
        &self,
        key: &TraceStoreKey,
        trace: &LlcTrace,
        app: &AppResult,
        instructions: u64,
    ) -> Result<u64, StoreError> {
        let written =
            self.write_entry_file(&key.file_name(), key.codec, trace, app, instructions)?;
        self.counters
            .bytes_written
            .fetch_add(written, Ordering::Relaxed);
        self.record_in_index(&key.file_name(), written);
        Ok(written)
    }

    /// Writes one entry file atomically (temp + rename) and returns its
    /// size. Shared by [`TraceStore::publish`] and
    /// [`TraceStore::recompress`]; counters and index are the callers'
    /// business.
    fn write_entry_file(
        &self,
        file: &str,
        codec: Codec,
        trace: &LlcTrace,
        app: &AppResult,
        instructions: u64,
    ) -> Result<u64, StoreError> {
        let final_path = self.dir.join(file);
        // Unique per process *and* per publication: two threads publishing
        // the same key concurrently (campaigns sharing one store) must never
        // interleave writes into one temp file.
        static PUBLICATION: AtomicU64 = AtomicU64::new(0);
        let tmp_path = self.dir.join(format!(
            ".{}.tmp.{}.{}",
            file,
            std::process::id(),
            PUBLICATION.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> Result<u64, StoreError> {
            let handle = std::fs::File::create(&tmp_path)?;
            let mut writer = std::io::BufWriter::new(handle);
            let written = write_entry(&mut writer, trace, app, instructions, codec)?;
            writer.flush()?;
            drop(writer);
            std::fs::rename(&tmp_path, &final_path)?;
            Ok(written)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp_path).ok();
        }
        result
    }

    /// Lists the store's entries (directory scan merged with the index's
    /// last-used timestamps), most recently used first.
    pub fn entries(&self) -> std::io::Result<Vec<StoreEntry>> {
        let index = self.read_index();
        let mut entries = Vec::new();
        for item in std::fs::read_dir(&self.dir)? {
            let item = item?;
            let Ok(file) = item.file_name().into_string() else {
                continue;
            };
            if !file.ends_with(".trace") || file.starts_with('.') {
                continue;
            }
            let metadata = item.metadata()?;
            let fs_mtime = metadata
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0);
            // Only the last-used stamp comes from the index; sizes are
            // always statted so entries rewritten in place (recompress)
            // are credited at their true size, never a stale byte stamp.
            let last_used = index
                .iter()
                .find(|(name, _, _)| *name == file)
                .map(|&(_, used, _)| used)
                .unwrap_or(fs_mtime);
            entries.push(StoreEntry {
                file,
                bytes: metadata.len(),
                last_used,
            });
        }
        entries.sort_by(|a, b| b.last_used.cmp(&a.last_used).then(a.file.cmp(&b.file)));
        Ok(entries)
    }

    /// Checksum-verifies every entry. Returns `(file, result)` pairs; an
    /// empty error set means the store is fully intact.
    pub fn verify(&self) -> std::io::Result<Vec<(String, Result<(), StoreError>)>> {
        let mut report = Vec::new();
        for entry in self.entries()? {
            let path = self.dir.join(&entry.file);
            let outcome = (|| -> Result<(), StoreError> {
                let file = std::fs::File::open(&path)?;
                let mut reader = std::io::BufReader::new(file);
                read_entry(&mut reader, None)?;
                Ok(())
            })();
            report.push((entry.file, outcome));
        }
        Ok(report)
    }

    /// Evicts least-recently-used entries until the store holds at most
    /// `max_bytes` of entries. Corrupt or orphaned temp files are always
    /// removed.
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcReport> {
        // Sweep stale temp files first (a crashed writer's leftovers).
        for item in std::fs::read_dir(&self.dir)? {
            let item = item?;
            if let Ok(name) = item.file_name().into_string() {
                if name.starts_with('.') && name.contains(".tmp.") {
                    std::fs::remove_file(item.path()).ok();
                }
            }
        }
        let mut entries = self.entries()?; // most recently used first
        let mut report = GcReport {
            examined: entries.len(),
            ..GcReport::default()
        };
        let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
        // Evict from the LRU end until under budget. A victim already gone
        // (a concurrent gc or a manual deletion won the race) still counts
        // as freed — cross-process races stay benign, as the module doc
        // promises.
        while total > max_bytes {
            let Some(victim) = entries.pop() else {
                break;
            };
            if let Err(err) = std::fs::remove_file(self.dir.join(&victim.file)) {
                if err.kind() != std::io::ErrorKind::NotFound {
                    return Err(err);
                }
            }
            total -= victim.bytes;
            report.freed_bytes += victim.bytes;
            report.evicted.push(victim.file);
        }
        report.kept_bytes = total;
        self.rewrite_index(&entries);
        Ok(report)
    }

    /// Reads one entry's self-description — codec, trace format version,
    /// record count and the raw-equivalent size — from its headers alone
    /// (~130 bytes of I/O, no checksum pass). Advisory: `verify` is the
    /// integrity check.
    pub fn peek(&self, file: &str) -> Result<EntryInfo, StoreError> {
        let mut handle = std::fs::File::open(self.dir.join(file))?;
        let mut entry_header = [0u8; 24];
        handle
            .read_exact(&mut entry_header)
            .map_err(|err| truncated(err, "entry header"))?;
        if entry_header[0..8] != STORE_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad entry magic {:02x?}",
                &entry_header[0..8]
            )));
        }
        let meta_len = u32::from_le_bytes(entry_header[12..16].try_into().expect("4 bytes"));
        if meta_len > MAX_META_LEN {
            return Err(StoreError::Corrupt(format!(
                "metadata block of {meta_len} bytes is implausibly large"
            )));
        }
        handle.seek(std::io::SeekFrom::Current(i64::from(meta_len)))?;
        let mut trace_header = [0u8; 48];
        handle
            .read_exact(&mut trace_header)
            .map_err(|err| truncated(err, "trace header"))?;
        if trace_header[0..8] != grasp_cachesim::TRACE_MAGIC {
            return Err(StoreError::Corrupt(
                "entry does not embed a trace block".to_owned(),
            ));
        }
        let trace_version = u32::from_le_bytes(trace_header[8..12].try_into().expect("4 bytes"));
        let records = u64::from_le_bytes(trace_header[16..24].try_into().expect("8 bytes"));
        let context_len = u32::from_le_bytes(trace_header[32..36].try_into().expect("4 bytes"));
        let codec_field = u32::from_le_bytes(trace_header[36..40].try_into().expect("4 bytes"));
        // Mirror the loader's dispatch: v1 predates the codec field (its
        // reserved word must be 0 = raw); later versions name their codec.
        if trace_version == 1 && codec_field != 0 {
            return Err(StoreError::Corrupt(format!(
                "reserved trace header field is {codec_field}, expected 0"
            )));
        }
        let codec = Codec::from_code(codec_field)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown codec {codec_field}")))?;
        // What the same entry would occupy under Codec::Raw (12 B/record) —
        // the denominator of the store's compression ratio.
        let raw_bytes =
            24 + u64::from(meta_len) + 48 + u64::from(context_len) + records.saturating_mul(12);
        Ok(EntryInfo {
            trace_version,
            codec,
            records,
            raw_bytes,
        })
    }

    /// Re-encodes every entry to `target` in place: each foreign-codec entry
    /// is fully decoded (checksums verified), re-written atomically
    /// (temp + rename) under the target codec's file name, and the old file
    /// removed once the new one is in place. Entries already in the target
    /// codec are left untouched; undecodable entries are reported and kept
    /// (gc or a fresh recording deals with them). The migration path for a
    /// codec rollout: `cargo xtask trace recompress`.
    pub fn recompress(&self, target: Codec) -> std::io::Result<RecompressReport> {
        let mut report = RecompressReport::default();
        for entry in self.entries()? {
            report.examined += 1;
            let outcome = (|| -> Result<Option<u64>, StoreError> {
                if self.peek(&entry.file)?.codec == target {
                    return Ok(None); // already in the target encoding
                }
                let handle = std::fs::File::open(self.dir.join(&entry.file))?;
                let mut reader = std::io::BufReader::new(handle);
                let stored = read_entry(&mut reader, None)?;
                let new_file = retarget_file_name(&entry.file, target).ok_or_else(|| {
                    StoreError::Corrupt(format!(
                        "entry name {:?} has no .v<N>.trace suffix",
                        entry.file
                    ))
                })?;
                if new_file != entry.file && self.dir.join(&new_file).exists() {
                    // Both codecs' files exist for this key (two campaigns
                    // published under different codecs). The key names one
                    // recorded stream, so the source file is redundant —
                    // deduplicate it instead of clobbering the existing
                    // target entry (which would also double its index row).
                    std::fs::remove_file(self.dir.join(&entry.file))?;
                    self.remove_from_index(&entry.file);
                    return Ok(Some(0));
                }
                let written = self.write_entry_file(
                    &new_file,
                    target,
                    &stored.trace,
                    &stored.app,
                    stored.instructions,
                )?;
                if new_file != entry.file {
                    std::fs::remove_file(self.dir.join(&entry.file))?;
                    self.rename_in_index(&entry.file, &new_file);
                }
                Ok(Some(written))
            })();
            match outcome {
                Ok(Some(written)) => {
                    report.converted.push(entry.file);
                    report.bytes_before += entry.bytes;
                    report.bytes_after += written;
                }
                Ok(None) => {
                    report.skipped += 1;
                    report.bytes_before += entry.bytes;
                    report.bytes_after += entry.bytes;
                }
                Err(err) => report.failed.push((entry.file, err.to_string())),
            }
        }
        Ok(report)
    }

    // ---- index maintenance (advisory; best-effort) ----

    fn index_path(&self) -> PathBuf {
        self.dir.join(INDEX_FILE)
    }

    /// Index rows are `file \t last_used \t bytes`. The byte stamp is purely
    /// advisory — a human-readable size at last publication. **All
    /// accounting (`entries`, `gc`, `ls`) stats the files instead**: an
    /// in-place `recompress` (or any out-of-band rewrite) changes sizes
    /// without rewriting the index, and crediting stale stamps would make gc
    /// evict against phantom bytes. Rows written by the two-column pre-codec
    /// format parse with an unknown (zero) byte stamp.
    fn read_index(&self) -> Vec<(String, u64, u64)> {
        let Ok(text) = std::fs::read_to_string(self.index_path()) else {
            return Vec::new();
        };
        text.lines()
            .filter_map(|line| {
                let mut fields = line.split('\t');
                let file = fields.next()?.to_owned();
                let last_used = fields.next()?.parse().ok()?;
                let bytes = fields.next().and_then(|f| f.parse().ok()).unwrap_or(0);
                Some((file, last_used, bytes))
            })
            .collect()
    }

    fn write_index(&self, entries: &[(String, u64, u64)]) {
        let mut text = String::new();
        for (file, last_used, bytes) in entries {
            text.push_str(file);
            text.push('\t');
            text.push_str(&last_used.to_string());
            text.push('\t');
            text.push_str(&bytes.to_string());
            text.push('\n');
        }
        let tmp = self
            .dir
            .join(format!(".{INDEX_FILE}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, self.index_path()).is_err() {
            std::fs::remove_file(&tmp).ok();
        }
    }

    fn update_index_entry(&self, file: &str, bytes: Option<u64>) {
        let _guard = self.index_lock.lock().expect("index lock");
        let mut index = self.read_index();
        let now = now_unix_micros();
        match index.iter_mut().find(|(name, _, _)| name == file) {
            Some(entry) => {
                entry.1 = now;
                if let Some(bytes) = bytes {
                    entry.2 = bytes;
                }
            }
            None => index.push((file.to_owned(), now, bytes.unwrap_or(0))),
        }
        self.write_index(&index);
    }

    fn touch(&self, file: &str) {
        self.update_index_entry(file, None);
    }

    fn record_in_index(&self, file: &str, bytes: u64) {
        self.update_index_entry(file, Some(bytes));
    }

    /// Replaces `old` with `new` (recompress migration) under the lock,
    /// carrying the last-used stamp over so the migration does not promote
    /// the entry in LRU order. A stale row already holding the new name is
    /// dropped first — one file, one row.
    fn rename_in_index(&self, old: &str, new: &str) {
        let _guard = self.index_lock.lock().expect("index lock");
        let mut index = self.read_index();
        index.retain(|(name, _, _)| name != new);
        if let Some(entry) = index.iter_mut().find(|(name, _, _)| name == old) {
            entry.0 = new.to_owned();
            entry.2 = 0; // restated on the next publication; stat is truth
        }
        self.write_index(&index);
    }

    /// Drops `file`'s row (recompress deduplication) under the lock.
    fn remove_from_index(&self, file: &str) {
        let _guard = self.index_lock.lock().expect("index lock");
        let mut index = self.read_index();
        index.retain(|(name, _, _)| name != file);
        self.write_index(&index);
    }

    fn rewrite_index(&self, entries: &[StoreEntry]) {
        let _guard = self.index_lock.lock().expect("index lock");
        let index: Vec<(String, u64, u64)> = entries
            .iter()
            .map(|e| (e.file.clone(), e.last_used, e.bytes))
            .collect();
        self.write_index(&index);
    }
}

// ---- entry encoding ----

fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn encode_meta(app: &AppResult, instructions: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(40 + app.app.len() + app.values.len() * 8);
    put_u32(&mut buf, app.app.len() as u32);
    buf.extend_from_slice(app.app.as_bytes());
    put_u64(&mut buf, app.iterations as u64);
    put_u64(&mut buf, app.edges_processed);
    put_u64(&mut buf, instructions);
    put_u64(&mut buf, app.values.len() as u64);
    for &value in &app.values {
        put_u64(&mut buf, value.to_bits());
    }
    buf
}

fn meta_checksum(bytes: &[u8]) -> u64 {
    Fnv64::digest(bytes)
}

fn write_entry(
    writer: &mut impl Write,
    trace: &LlcTrace,
    app: &AppResult,
    instructions: u64,
    codec: Codec,
) -> Result<u64, StoreError> {
    let meta = encode_meta(app, instructions);
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(&STORE_MAGIC);
    put_u32(&mut header, STORE_ENTRY_VERSION);
    put_u32(&mut header, meta.len() as u32);
    put_u64(&mut header, meta_checksum(&meta));
    writer.write_all(&header).map_err(StoreError::Io)?;
    writer.write_all(&meta).map_err(StoreError::Io)?;
    let trace_bytes = trace.write_to_with(writer, codec)?;
    Ok(header.len() as u64 + meta.len() as u64 + trace_bytes)
}

struct MetaCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> MetaCursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(StoreError::Corrupt(format!("metadata ends inside {what}"))),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Reads one entry. When `expected_app` is given, the stored application
/// label must match it (and the result reuses the canonical static label);
/// verification passes `None` and accepts any known application.
fn read_entry(
    reader: &mut impl Read,
    expected_app: Option<AppKind>,
) -> Result<StoredRecording, StoreError> {
    let mut header = [0u8; 24];
    reader
        .read_exact(&mut header)
        .map_err(|err| truncated(err, "entry header"))?;
    if header[0..8] != STORE_MAGIC {
        return Err(StoreError::Corrupt(format!(
            "bad entry magic {:02x?}",
            &header[0..8]
        )));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != STORE_ENTRY_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported entry version {version} (this build reads {STORE_ENTRY_VERSION})"
        )));
    }
    let meta_len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
    if meta_len > MAX_META_LEN {
        return Err(StoreError::Corrupt(format!(
            "metadata block of {meta_len} bytes is implausibly large"
        )));
    }
    let stored_checksum = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
    let mut meta = vec![0u8; meta_len as usize];
    reader
        .read_exact(&mut meta)
        .map_err(|err| truncated(err, "metadata block"))?;
    let computed = meta_checksum(&meta);
    if computed != stored_checksum {
        return Err(StoreError::Corrupt(format!(
            "metadata checksum mismatch: stored {stored_checksum:#018x}, computed {computed:#018x}"
        )));
    }

    let mut cursor = MetaCursor {
        bytes: &meta,
        pos: 0,
    };
    let app_len = cursor.u32("app label length")? as usize;
    let app_label = std::str::from_utf8(cursor.take(app_len, "app label")?)
        .map_err(|_| StoreError::Corrupt("app label is not UTF-8".to_owned()))?;
    let app_kind = AppKind::ALL
        .into_iter()
        .find(|kind| kind.label() == app_label)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown application {app_label:?}")))?;
    if let Some(expected) = expected_app {
        if app_kind != expected {
            return Err(StoreError::Corrupt(format!(
                "entry records {app_label:?} but the key names {:?}",
                expected.label()
            )));
        }
    }
    let iterations = cursor.u64("iterations")? as usize;
    let edges_processed = cursor.u64("edges processed")?;
    let instructions = cursor.u64("instruction estimate")?;
    let value_count = cursor.u64("value count")? as usize;
    if value_count > (meta.len() - cursor.pos) / 8 {
        return Err(StoreError::Corrupt(format!(
            "value count {value_count} exceeds the metadata block"
        )));
    }
    let mut values = Vec::with_capacity(value_count);
    for _ in 0..value_count {
        values.push(f64::from_bits(cursor.u64("value")?));
    }
    if cursor.pos != meta.len() {
        return Err(StoreError::Corrupt(
            "trailing bytes after the metadata block".to_owned(),
        ));
    }

    let (trace, codec) = LlcTrace::read_from_with_codec(reader)?;
    Ok(StoredRecording {
        trace,
        app: AppResult {
            app: app_kind.label(),
            values,
            iterations,
            edges_processed,
        },
        instructions,
        codec,
    })
}

fn truncated(err: std::io::Error, what: &str) -> StoreError {
    if err.kind() == std::io::ErrorKind::UnexpectedEof {
        StoreError::Corrupt(format!("entry truncated while reading {what}"))
    } else {
        StoreError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use grasp_cachesim::request::AccessInfo;

    fn temp_store(tag: &str) -> TraceStore {
        let dir = std::env::temp_dir().join(format!(
            "grasp-trace-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TraceStore::open(dir).expect("store opens")
    }

    fn sample_key(config_seed: u64) -> TraceStoreKey {
        let mut hierarchy = Scale::Tiny.hierarchy();
        hierarchy.latency.memory_cycles += config_seed; // vary the hash
        TraceStoreKey::new(
            DatasetKind::Twitter,
            Scale::Tiny,
            TechniqueKind::Dbg,
            AppKind::PageRank,
            &hierarchy,
            &AppConfig::default(),
        )
    }

    fn sample_recording(events: u64) -> (LlcTrace, AppResult) {
        let mut trace = LlcTrace::new();
        for i in 0..events {
            trace.push(&AccessInfo::read(i * 64).with_site((i % 5) as u16));
            if i % 11 == 0 {
                trace.push_writeback(i * 64);
            }
        }
        let app = AppResult {
            app: AppKind::PageRank.label(),
            values: (0..16).map(|i| i as f64 / 7.0).collect(),
            iterations: 3,
            edges_processed: events * 2,
        };
        (trace, app)
    }

    #[test]
    fn publish_then_load_roundtrips() {
        let store = temp_store("roundtrip");
        let key = sample_key(0);
        let (trace, app) = sample_recording(500);
        assert!(store.load(&key).is_none(), "empty store must miss");
        let written = store.publish(&key, &trace, &app, 12_345).expect("publish");
        assert!(written > 0);
        let stored = store.load(&key).expect("hit after publish");
        assert_eq!(stored.trace, trace);
        assert_eq!(stored.app, app);
        assert_eq!(stored.instructions, 12_345);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.corrupt, 0);
        assert_eq!(stats.bytes_written, written);
        assert!(stats.bytes_read >= written);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn distinct_configs_get_distinct_entries() {
        let a = sample_key(0);
        let b = sample_key(7);
        assert_ne!(a.config_hash, b.config_hash);
        assert_ne!(a.file_name(), b.file_name());
        // Every axis of the key lands in the file name, and the version
        // suffix tracks the key's codec.
        let name = a.file_name();
        assert!(name.contains("tw-"), "{name}");
        assert!(name.contains("-tiny-"), "{name}");
        assert!(name.contains("-dbg-"), "{name}");
        assert!(name.contains("-pr-"), "{name}");
        assert!(name.ends_with(".v2.trace"), "{name}");
        let raw = a.with_codec(Codec::Raw).file_name();
        assert!(raw.ends_with(".v1.trace"), "{raw}");
        assert_eq!(
            raw.strip_suffix(".v1.trace"),
            name.strip_suffix(".v2.trace")
        );
    }

    #[test]
    fn retargeting_file_names_swaps_only_the_version_suffix() {
        assert_eq!(
            retarget_file_name("tw-tiny-dbg-pr-00ff.v1.trace", Codec::DeltaVarint).as_deref(),
            Some("tw-tiny-dbg-pr-00ff.v2.trace")
        );
        assert_eq!(
            retarget_file_name("tw-tiny-dbg-pr-00ff.v2.trace", Codec::Raw).as_deref(),
            Some("tw-tiny-dbg-pr-00ff.v1.trace")
        );
        // Dots in the base never confuse the suffix parse.
        assert_eq!(
            retarget_file_name("a.b.v9.trace", Codec::DeltaVarint).as_deref(),
            Some("a.b.v2.trace")
        );
        assert_eq!(retarget_file_name("no-suffix.trace", Codec::Raw), None);
        assert_eq!(retarget_file_name("plain", Codec::Raw), None);
    }

    #[test]
    fn cross_codec_lookup_falls_back_to_the_other_codecs_entry() {
        // An entry published raw (a pre-rollout store) must serve a
        // delta-varint-keyed lookup, and vice versa: the codec changes the
        // encoding, never the stream.
        let store = temp_store("cross-codec");
        let (trace, app) = sample_recording(400);
        let raw_key = sample_key(0).with_codec(Codec::Raw);
        store.publish(&raw_key, &trace, &app, 7).expect("publish");

        let dv_key = sample_key(0).with_codec(Codec::DeltaVarint);
        let stored = store.load(&dv_key).expect("fallback hit");
        assert_eq!(stored.trace, trace);
        assert_eq!(stored.codec, Codec::Raw, "served from the raw entry");
        assert_eq!(store.stats().hits, 1);
        assert_eq!(store.stats().misses, 0);

        // And the reverse direction, from a fresh handle.
        let store2 = TraceStore::open(store.dir()).expect("reopen");
        let (trace2, app2) = sample_recording(300);
        let dv_key2 = sample_key(3).with_codec(Codec::DeltaVarint);
        store2
            .publish(&dv_key2, &trace2, &app2, 9)
            .expect("publish");
        let stored = store2
            .load(&sample_key(3).with_codec(Codec::Raw))
            .expect("raw lookup served from the dv entry");
        assert_eq!(stored.trace, trace2);
        assert_eq!(stored.codec, Codec::DeltaVarint);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn peek_reports_codec_records_and_raw_equivalent() {
        let store = temp_store("peek");
        let (trace, app) = sample_recording(500);
        let dv_key = sample_key(0); // default codec: delta-varint
        let dv_bytes = store.publish(&dv_key, &trace, &app, 1).expect("publish");
        let raw_key = sample_key(1).with_codec(Codec::Raw);
        let raw_bytes = store.publish(&raw_key, &trace, &app, 1).expect("publish");

        let dv_info = store.peek(&dv_key.file_name()).expect("peek dv");
        assert_eq!(dv_info.codec, Codec::DeltaVarint);
        assert_eq!(dv_info.trace_version, 2);
        assert_eq!(dv_info.records, trace.len() as u64);
        let raw_info = store.peek(&raw_key.file_name()).expect("peek raw");
        assert_eq!(raw_info.codec, Codec::Raw);
        assert_eq!(raw_info.trace_version, 1);
        // The raw-equivalent size is exact: it equals the raw entry's true
        // size (same trace, same metadata), for both codecs' entries.
        assert_eq!(raw_info.raw_bytes, raw_bytes);
        assert_eq!(dv_info.raw_bytes, raw_bytes);
        assert!(
            dv_bytes < raw_bytes,
            "delta-varint must beat raw on the sample stream"
        );
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn recompress_migrates_entries_in_place() {
        let store = temp_store("recompress");
        let (trace, app) = sample_recording(2000);
        let raw_key = sample_key(0).with_codec(Codec::Raw);
        let raw_size = store.publish(&raw_key, &trace, &app, 42).expect("publish");
        let dv_key = sample_key(1).with_codec(Codec::DeltaVarint);
        store.publish(&dv_key, &trace, &app, 43).expect("publish");

        let report = store.recompress(Codec::DeltaVarint).expect("recompress");
        assert_eq!(report.examined, 2);
        assert_eq!(report.converted, vec![raw_key.file_name()]);
        assert_eq!(report.skipped, 1, "the dv entry is already migrated");
        assert!(report.failed.is_empty());
        assert!(
            report.bytes_after < report.bytes_before,
            "migration must shrink the store ({} -> {})",
            report.bytes_before,
            report.bytes_after
        );

        // The raw file is gone, its v2 replacement loads bit-identically —
        // through the *raw*-codec key, via the cross-codec fallback.
        assert!(!store.dir().join(raw_key.file_name()).exists());
        let migrated = store.load(&raw_key).expect("migrated entry hits");
        assert_eq!(migrated.trace, trace);
        assert_eq!(migrated.instructions, 42);
        assert_eq!(migrated.codec, Codec::DeltaVarint);
        let new_size = store
            .entries()
            .expect("entries")
            .iter()
            .find(|e| e.file == raw_key.with_codec(Codec::DeltaVarint).file_name())
            .expect("migrated entry listed")
            .bytes;
        assert!(new_size < raw_size);
        // Everything still checksum-verifies.
        assert!(store
            .verify()
            .expect("verify")
            .iter()
            .all(|(_, outcome)| outcome.is_ok()));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn recompress_deduplicates_when_both_codec_files_exist() {
        // Two campaigns published the same key under different codecs: two
        // files, one recorded stream. Migration must keep the existing
        // target entry (never clobber it) and drop the redundant source,
        // leaving one file and one index row.
        let store = temp_store("dedup");
        let (trace, app) = sample_recording(800);
        let key = sample_key(0);
        store
            .publish(&key.with_codec(Codec::Raw), &trace, &app, 1)
            .expect("publish raw");
        let dv_size = store
            .publish(&key.with_codec(Codec::DeltaVarint), &trace, &app, 1)
            .expect("publish dv");
        assert_eq!(store.entries().expect("entries").len(), 2);

        let report = store.recompress(Codec::DeltaVarint).expect("recompress");
        assert_eq!(report.examined, 2);
        assert_eq!(report.converted.len(), 1, "the raw file is deduplicated");
        assert_eq!(report.skipped, 1);
        assert!(report.failed.is_empty());
        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].file,
            key.with_codec(Codec::DeltaVarint).file_name()
        );
        assert_eq!(entries[0].bytes, dv_size, "the survivor is untouched");
        let index = store.read_index();
        assert_eq!(
            index
                .iter()
                .filter(|(name, _, _)| *name == entries[0].file)
                .count(),
            1,
            "exactly one index row for the surviving entry"
        );
        assert!(store.load(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_and_entries_credit_statted_sizes_never_index_stamps() {
        // An in-place recompress (or any out-of-band rewrite) changes entry
        // sizes without republishing; a gc that believed the index's byte
        // stamps would evict against phantom bytes. The index byte column is
        // advisory only — sizes must always come from a stat.
        let store = temp_store("stat-sizes");
        let (trace, app) = sample_recording(1500);
        let key = sample_key(0);
        let published = store.publish(&key, &trace, &app, 1).expect("publish");

        // Forge an index claiming the entry is enormous *and* stale-size it
        // the other way round too.
        let bogus = format!("{}\t{}\t{}\n", key.file_name(), 12345, u64::MAX);
        std::fs::write(store.dir().join(INDEX_FILE), bogus).expect("forge index");

        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].bytes, published,
            "sizes must be statted, not read from the index"
        );
        // A budget the real size fits comfortably: nothing may be evicted,
        // even though the forged index claims u64::MAX bytes.
        let report = store.gc(published + 10).expect("gc");
        assert!(report.evicted.is_empty(), "{report:?}");
        assert_eq!(report.kept_bytes, published);
        assert!(store.dir().join(key.file_name()).exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slugify("Gorder(+DBG)"), "gorder_dbg");
        assert_eq!(slugify("PRD"), "prd");
        assert_eq!(slugify("GRASP (Insertion-Only)"), "grasp_insertion_only");
        for technique in TechniqueKind::ALL {
            let slug = slugify(technique.label());
            assert!(
                slug.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "{slug}"
            );
            assert!(!slug.is_empty());
        }
    }

    #[test]
    fn corrupt_entries_are_counted_and_overwritable() {
        let store = temp_store("corrupt");
        let key = sample_key(0);
        let (trace, app) = sample_recording(100);
        store.publish(&key, &trace, &app, 1).expect("publish");
        // Flip one byte near the end (inside the trace payload).
        let path = store.dir().join(key.file_name());
        let mut bytes = std::fs::read(&path).expect("read entry");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write corrupted entry");
        // try_load surfaces the typed error (a checksum mismatch or, for a
        // compressed entry, a structural decode failure — never a silent
        // wrong trace); load treats it as a corrupt miss.
        assert!(matches!(store.try_load(&key), Err(StoreError::Trace(_))));
        assert!(store.load(&key).is_none());
        assert_eq!(store.stats().corrupt, 1);
        // Re-publishing atomically replaces the bad entry.
        store.publish(&key, &trace, &app, 1).expect("re-publish");
        assert!(store.load(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn metadata_corruption_is_typed_not_silent() {
        let store = temp_store("meta-corrupt");
        let key = sample_key(0);
        let (trace, app) = sample_recording(50);
        store.publish(&key, &trace, &app, 1).expect("publish");
        let path = store.dir().join(key.file_name());
        let mut bytes = std::fs::read(&path).expect("read entry");
        bytes[30] ^= 0x10; // inside the metadata block
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(store.try_load(&key), Err(StoreError::Corrupt(_))));
        // Truncation inside the metadata block, and inside the trace block.
        for cut in [10, 40, bytes.len() - 3] {
            std::fs::write(&path, &bytes[..cut]).expect("write truncated");
            assert!(store.try_load(&key).is_err(), "cut at {cut}");
        }
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wrong_app_in_entry_is_rejected() {
        let store = temp_store("wrong-app");
        let key = sample_key(0);
        let (trace, mut app) = sample_recording(20);
        app.app = AppKind::Sssp.label();
        store.publish(&key, &trace, &app, 1).expect("publish");
        assert!(matches!(
            store.try_load(&key),
            Err(StoreError::Corrupt(msg)) if msg.contains("SSSP")
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn entries_verify_and_gc_evicts_lru() {
        let store = temp_store("gc");
        let (trace, app) = sample_recording(2000);
        let keys: Vec<TraceStoreKey> = (0..3).map(sample_key).collect();
        let mut sizes = Vec::new();
        for key in &keys {
            sizes.push(store.publish(key, &trace, &app, 1).expect("publish"));
        }
        // Touch entry 0 so it is the most recently used.
        assert!(store.load(&keys[0]).is_some());
        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].file, keys[0].file_name(), "MRU first");
        let verify = store.verify().expect("verify");
        assert!(verify.iter().all(|(_, outcome)| outcome.is_ok()));
        // Budget for one entry: the two least-recently-used are evicted.
        let report = store.gc(sizes[0] + 1).expect("gc");
        assert_eq!(report.examined, 3);
        assert_eq!(report.evicted.len(), 2);
        assert!(!report.evicted.contains(&keys[0].file_name()));
        assert_eq!(report.kept_bytes, sizes[0]);
        assert_eq!(store.entries().expect("entries").len(), 1);
        // gc(0) clears the store.
        let report = store.gc(0).expect("gc all");
        assert_eq!(report.evicted.len(), 1);
        assert_eq!(report.kept_bytes, 0);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_sweeps_stale_temp_files() {
        let store = temp_store("tmp-sweep");
        std::fs::write(store.dir().join(".orphan.trace.tmp.999"), b"junk").expect("write");
        let report = store.gc(u64::MAX).expect("gc");
        assert_eq!(report.examined, 0);
        assert!(!store.dir().join(".orphan.trace.tmp.999").exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn index_survives_deletion() {
        let store = temp_store("index");
        let key = sample_key(0);
        let (trace, app) = sample_recording(30);
        store.publish(&key, &trace, &app, 1).expect("publish");
        std::fs::remove_file(store.dir().join(INDEX_FILE)).expect("drop index");
        // entries() falls back to filesystem metadata.
        let entries = store.entries().expect("entries");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].last_used > 0, "falls back to fs mtime");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn stats_display_reads_well() {
        let stats = TraceStoreStats {
            hits: 2,
            misses: 1,
            corrupt: 0,
            bytes_read: 10,
            bytes_written: 20,
        };
        let text = stats.to_string();
        assert!(text.contains("2 hit(s)"));
        assert!(text.contains("20 B written"));
    }
}
