//! The serializable campaign request: one type shared by the library
//! builder and the service wire protocol.
//!
//! A [`CampaignSpec`] is the declarative content of a [`Campaign`] —
//! datasets, techniques, apps, policies, hierarchy, scale, mode, codec,
//! trace-store path, thread budget — with hand-rolled JSON encode/decode
//! (the vendored `serde` stub has no JSON backend). The contract:
//!
//! * [`Campaign::to_spec`] / [`Campaign::from_spec`] round-trip, so any
//!   campaign a client can build it can also serialize and submit to the
//!   service daemon (`grasp-serve`) — and the daemon reconstructs the same
//!   campaign.
//! * [`CampaignSpec::cells`] is the **single definition of the grid**:
//!   [`Campaign::cells`] delegates here, so a library run and a service run
//!   of the same spec provably walk identical cells in identical order.
//! * The spec's `store` / `codec` fields are the first-class way to
//!   configure trace persistence; the `GRASP_TRACE_STORE` /
//!   `GRASP_TRACE_CODEC` environment variables remain as documented
//!   fallbacks for specs that leave them unset (see
//!   `docs/configuration.md`).
//!
//! Wire vocabulary: datasets use their store slugs (`tw`, `g<hash:016x>`),
//! techniques/apps/policies their paper labels (`DBG`, `PR`, `RRIP`; any
//! pin fraction is spelled `PIN-<n>`), scale and mode lowercase slugs, the
//! codec its `GRASP_TRACE_CODEC` vocabulary.
//!
//! [`Campaign`]: crate::campaign::Campaign
//! [`Campaign::to_spec`]: crate::campaign::Campaign::to_spec
//! [`Campaign::from_spec`]: crate::campaign::Campaign::from_spec
//! [`Campaign::cells`]: crate::campaign::Campaign::cells

use crate::campaign::{CampaignCell, ExecutionMode};
use crate::datasets::{DatasetId, Scale};
use crate::error::Error;
use crate::json::{self, Json};
use crate::policy::PolicyKind;
use grasp_analytics::apps::AppKind;
use grasp_cachesim::config::{CacheConfig, HierarchyConfig, LatencyConfig};
use grasp_cachesim::Codec;
use grasp_reorder::TechniqueKind;
use std::collections::BTreeMap;

/// A serializable experiment-grid request. Field semantics and defaults
/// mirror the [`Campaign`](crate::campaign::Campaign) builder exactly; see
/// the module docs for the wire vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Scale synthetic datasets are generated at (and the default
    /// hierarchy's size class).
    pub scale: Scale,
    /// The dataset axis of the grid.
    pub datasets: Vec<DatasetId>,
    /// The reordering-technique axis (default: DBG only).
    pub techniques: Vec<TechniqueKind>,
    /// The application axis.
    pub apps: Vec<AppKind>,
    /// The LLC-policy axis.
    pub policies: Vec<PolicyKind>,
    /// Hierarchy override; `None` uses `scale.hierarchy()`.
    pub hierarchy: Option<HierarchyConfig>,
    /// Whether every cell's result carries an LLC trace (the OPT study).
    pub record_trace: bool,
    /// The execution plan.
    pub mode: ExecutionMode,
    /// Worker-thread budget; `0` means one worker per available CPU.
    pub threads: usize,
    /// Streaming gang-pipeline count; `0` resolves from the worker budget.
    pub pipelines: usize,
    /// Trace-store directory. `None` runs without persistence (unless the
    /// campaign is later pointed at a store explicitly; the
    /// `GRASP_TRACE_STORE` environment variable is the documented fallback
    /// via [`Campaign::trace_store_from_env`]).
    ///
    /// [`Campaign::trace_store_from_env`]: crate::campaign::Campaign::trace_store_from_env
    pub store: Option<String>,
    /// Publication codec for newly recorded streams; `None` falls back to
    /// the `GRASP_TRACE_CODEC` environment variable (default delta-varint).
    pub codec: Option<Codec>,
}

impl CampaignSpec {
    /// An empty spec at the given scale, with the same defaults as
    /// [`Campaign::new`](crate::campaign::Campaign::new).
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            datasets: Vec::new(),
            techniques: vec![TechniqueKind::Dbg],
            apps: Vec::new(),
            policies: Vec::new(),
            hierarchy: None,
            record_trace: false,
            mode: ExecutionMode::default(),
            threads: 0,
            pipelines: 0,
            store: None,
            codec: None,
        }
    }

    /// The grid coordinates in deterministic grid order: datasets
    /// outermost, then techniques, applications and policies. This is the
    /// one definition of the grid — [`Campaign::cells`] delegates here, so
    /// a service run of this spec provably walks the same cells as the
    /// library campaign it round-trips to.
    ///
    /// [`Campaign::cells`]: crate::campaign::Campaign::cells
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(
            self.datasets.len() * self.techniques.len() * self.apps.len() * self.policies.len(),
        );
        for &dataset in &self.datasets {
            for &technique in &self.techniques {
                for &app in &self.apps {
                    for &policy in &self.policies {
                        cells.push(CampaignCell {
                            dataset,
                            technique,
                            app,
                            policy,
                        });
                    }
                }
            }
        }
        cells
    }

    /// The unique (dataset, technique, app) stream coordinates of the grid
    /// in first-seen order — the units the record-once / replay-many plans
    /// (and the service's single-flight registry) deduplicate on.
    pub fn streams(&self) -> Vec<(DatasetId, TechniqueKind, AppKind)> {
        let mut seen = Vec::new();
        for cell in self.cells() {
            let key = (cell.dataset, cell.technique, cell.app);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen
    }

    /// Encodes the spec as a JSON document (object key order is stable, so
    /// equal specs serialize to equal bytes).
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }

    /// The spec as a [`Json`] value (for embedding in larger documents —
    /// the service's request frames carry the spec under a `"spec"` key).
    pub fn to_value(&self) -> Json {
        let mut map = BTreeMap::new();
        map.insert("scale".to_owned(), Json::string(self.scale.slug()));
        map.insert(
            "datasets".to_owned(),
            Json::Array(
                self.datasets
                    .iter()
                    .map(|d| Json::string(d.slug()))
                    .collect(),
            ),
        );
        map.insert(
            "techniques".to_owned(),
            Json::Array(
                self.techniques
                    .iter()
                    .map(|t| Json::string(t.label()))
                    .collect(),
            ),
        );
        map.insert(
            "apps".to_owned(),
            Json::Array(self.apps.iter().map(|a| Json::string(a.label())).collect()),
        );
        map.insert(
            "policies".to_owned(),
            Json::Array(
                self.policies
                    .iter()
                    .map(|p| Json::string(policy_wire(*p)))
                    .collect(),
            ),
        );
        if let Some(hierarchy) = &self.hierarchy {
            map.insert("hierarchy".to_owned(), hierarchy_to_value(hierarchy));
        }
        map.insert("record_trace".to_owned(), Json::Bool(self.record_trace));
        map.insert("mode".to_owned(), Json::string(self.mode.label()));
        map.insert("threads".to_owned(), Json::integer(self.threads as u64));
        map.insert("pipelines".to_owned(), Json::integer(self.pipelines as u64));
        if let Some(store) = &self.store {
            map.insert("store".to_owned(), Json::string(store.clone()));
        }
        if let Some(codec) = self.codec {
            map.insert("codec".to_owned(), Json::string(codec.label()));
        }
        Json::Object(map)
    }

    /// Decodes a spec from a JSON document.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let value = json::parse(text).map_err(Error::Spec)?;
        Self::from_value(&value)
    }

    /// Decodes a spec from a parsed [`Json`] value. Every field is
    /// validated — unknown labels, malformed geometry and wrong types all
    /// surface as [`Error::Spec`] (kind `spec/invalid`), never a panic.
    pub fn from_value(value: &Json) -> Result<Self, Error> {
        let object = value
            .as_object()
            .ok_or_else(|| spec_err("spec must be a JSON object"))?;
        for key in object.keys() {
            const KNOWN: [&str; 12] = [
                "scale",
                "datasets",
                "techniques",
                "apps",
                "policies",
                "hierarchy",
                "record_trace",
                "mode",
                "threads",
                "pipelines",
                "store",
                "codec",
            ];
            if !KNOWN.contains(&key.as_str()) {
                return Err(spec_err(format!("unknown field {key:?}")));
            }
        }

        let scale_slug = require_str(value, "scale")?;
        let scale = Scale::from_slug(scale_slug)
            .ok_or_else(|| spec_err(format!("unknown scale {scale_slug:?}")))?;
        let mut spec = CampaignSpec::new(scale);

        spec.datasets = parse_labels(value, "datasets", |slug| {
            DatasetId::from_slug(slug).ok_or_else(|| spec_err(format!("unknown dataset {slug:?}")))
        })?
        .unwrap_or_default();
        if let Some(techniques) = parse_labels(value, "techniques", |label| {
            TechniqueKind::from_label(label)
                .ok_or_else(|| spec_err(format!("unknown technique {label:?}")))
        })? {
            spec.techniques = techniques;
        }
        spec.apps = parse_labels(value, "apps", |label| {
            AppKind::from_label(label).ok_or_else(|| spec_err(format!("unknown app {label:?}")))
        })?
        .unwrap_or_default();
        spec.policies = parse_labels(value, "policies", |label| {
            PolicyKind::from_label(label)
                .ok_or_else(|| spec_err(format!("unknown policy {label:?}")))
        })?
        .unwrap_or_default();

        if let Some(hierarchy) = value.get("hierarchy") {
            spec.hierarchy = Some(hierarchy_from_value(hierarchy)?);
        }
        if let Some(record_trace) = value.get("record_trace") {
            spec.record_trace = record_trace
                .as_bool()
                .ok_or_else(|| spec_err("record_trace must be a boolean"))?;
        }
        if let Some(mode) = value.get("mode") {
            let label = mode
                .as_str()
                .ok_or_else(|| spec_err("mode must be a string"))?;
            spec.mode = ExecutionMode::from_label(label)
                .ok_or_else(|| spec_err(format!("unknown mode {label:?}")))?;
        }
        spec.threads = parse_count(value, "threads")?.unwrap_or(0);
        spec.pipelines = parse_count(value, "pipelines")?.unwrap_or(0);
        if let Some(store) = value.get("store") {
            spec.store = Some(
                store
                    .as_str()
                    .ok_or_else(|| spec_err("store must be a string path"))?
                    .to_owned(),
            );
        }
        if let Some(codec) = value.get("codec") {
            let label = codec
                .as_str()
                .ok_or_else(|| spec_err("codec must be a string"))?;
            spec.codec = Some(
                Codec::from_label(label)
                    .ok_or_else(|| spec_err(format!("unknown codec {label:?}")))?,
            );
        }
        Ok(spec)
    }
}

/// The wire spelling of a policy: the paper label, except pin fractions are
/// always spelled out (`PIN-30`, not the display label's `PIN-X`) so every
/// policy round-trips.
pub fn policy_wire(policy: PolicyKind) -> String {
    match policy {
        PolicyKind::Pin(percent) => format!("PIN-{percent}"),
        other => other.label().to_owned(),
    }
}

fn spec_err(message: impl Into<String>) -> Error {
    Error::Spec(message.into())
}

fn require_str<'a>(value: &'a Json, field: &str) -> Result<&'a str, Error> {
    value
        .get(field)
        .ok_or_else(|| spec_err(format!("missing field {field:?}")))?
        .as_str()
        .ok_or_else(|| spec_err(format!("{field} must be a string")))
}

/// Parses an optional array-of-strings field through `parse_one`.
fn parse_labels<T>(
    value: &Json,
    field: &str,
    parse_one: impl Fn(&str) -> Result<T, Error>,
) -> Result<Option<Vec<T>>, Error> {
    let Some(items) = value.get(field) else {
        return Ok(None);
    };
    let items = items
        .as_array()
        .ok_or_else(|| spec_err(format!("{field} must be an array of strings")))?;
    items
        .iter()
        .map(|item| {
            let label = item
                .as_str()
                .ok_or_else(|| spec_err(format!("{field} entries must be strings")))?;
            parse_one(label)
        })
        .collect::<Result<Vec<T>, Error>>()
        .map(Some)
}

fn parse_count(value: &Json, field: &str) -> Result<Option<usize>, Error> {
    let Some(number) = value.get(field) else {
        return Ok(None);
    };
    number
        .as_u64()
        .map(|n| Some(n as usize))
        .ok_or_else(|| spec_err(format!("{field} must be a non-negative integer")))
}

fn cache_to_value(config: &CacheConfig) -> Json {
    Json::object([
        ("size_bytes", Json::integer(config.size_bytes)),
        ("ways", Json::integer(config.ways as u64)),
        ("block_bytes", Json::integer(config.block_bytes)),
    ])
}

/// Decodes one cache level, validating the geometry [`CacheConfig::new`]
/// would otherwise panic on: non-zero parameters, power-of-two block size,
/// and a positive power-of-two set count.
fn cache_from_value(value: &Json, level: &str) -> Result<CacheConfig, Error> {
    let field = |name: &str| -> Result<u64, Error> {
        value
            .get(name)
            .ok_or_else(|| spec_err(format!("hierarchy.{level}: missing {name:?}")))?
            .as_u64()
            .ok_or_else(|| {
                spec_err(format!(
                    "hierarchy.{level}.{name} must be a non-negative integer"
                ))
            })
    };
    let size_bytes = field("size_bytes")?;
    let ways = field("ways")?;
    let block_bytes = field("block_bytes")?;
    if size_bytes == 0 || ways == 0 || block_bytes == 0 {
        return Err(spec_err(format!(
            "hierarchy.{level}: parameters must be non-zero"
        )));
    }
    if !block_bytes.is_power_of_two() {
        return Err(spec_err(format!(
            "hierarchy.{level}: block_bytes ({block_bytes}) must be a power of two"
        )));
    }
    let blocks = size_bytes / block_bytes;
    let sets = blocks / ways;
    if sets == 0 || !sets.is_power_of_two() {
        return Err(spec_err(format!(
            "hierarchy.{level}: set count ({sets}) must be a positive power of two"
        )));
    }
    Ok(CacheConfig::new(size_bytes, ways as usize, block_bytes))
}

fn hierarchy_to_value(hierarchy: &HierarchyConfig) -> Json {
    Json::object([
        ("l1", cache_to_value(&hierarchy.l1)),
        ("l2", cache_to_value(&hierarchy.l2)),
        ("llc", cache_to_value(&hierarchy.llc)),
        (
            "latency",
            Json::object([
                ("l1_cycles", Json::integer(hierarchy.latency.l1_cycles)),
                ("l2_cycles", Json::integer(hierarchy.latency.l2_cycles)),
                ("llc_cycles", Json::integer(hierarchy.latency.llc_cycles)),
                (
                    "memory_cycles",
                    Json::integer(hierarchy.latency.memory_cycles),
                ),
            ]),
        ),
        ("prefetch", Json::Bool(hierarchy.prefetch)),
        ("record_llc_trace", Json::Bool(hierarchy.record_llc_trace)),
    ])
}

fn hierarchy_from_value(value: &Json) -> Result<HierarchyConfig, Error> {
    if value.as_object().is_none() {
        return Err(spec_err("hierarchy must be a JSON object"));
    }
    let level = |name: &'static str| -> Result<CacheConfig, Error> {
        cache_from_value(
            value
                .get(name)
                .ok_or_else(|| spec_err(format!("hierarchy: missing level {name:?}")))?,
            name,
        )
    };
    let latency_value = value
        .get("latency")
        .ok_or_else(|| spec_err("hierarchy: missing \"latency\""))?;
    let cycles = |name: &str| -> Result<u64, Error> {
        latency_value
            .get(name)
            .ok_or_else(|| spec_err(format!("hierarchy.latency: missing {name:?}")))?
            .as_u64()
            .ok_or_else(|| {
                spec_err(format!(
                    "hierarchy.latency.{name} must be a non-negative integer"
                ))
            })
    };
    let flag = |name: &str| -> Result<bool, Error> {
        value
            .get(name)
            .ok_or_else(|| spec_err(format!("hierarchy: missing {name:?}")))?
            .as_bool()
            .ok_or_else(|| spec_err(format!("hierarchy.{name} must be a boolean")))
    };
    Ok(HierarchyConfig {
        l1: level("l1")?,
        l2: level("l2")?,
        llc: level("llc")?,
        latency: LatencyConfig {
            l1_cycles: cycles("l1_cycles")?,
            l2_cycles: cycles("l2_cycles")?,
            llc_cycles: cycles("llc_cycles")?,
            memory_cycles: cycles("memory_cycles")?,
        },
        prefetch: flag("prefetch")?,
        record_llc_trace: flag("record_llc_trace")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetKind, GraphHash};
    use proptest::prelude::*;

    fn full_spec() -> CampaignSpec {
        let mut spec = CampaignSpec::new(Scale::Small);
        spec.datasets = vec![
            DatasetKind::Twitter.into(),
            DatasetKind::LiveJournal.into(),
            DatasetId::Ingested(GraphHash(0xdead_beef_0123_4567)),
        ];
        spec.techniques = vec![TechniqueKind::Identity, TechniqueKind::GorderDbg];
        spec.apps = vec![AppKind::PageRank, AppKind::Sssp];
        spec.policies = vec![
            PolicyKind::Rrip,
            PolicyKind::Pin(30),
            PolicyKind::GraspInsertionOnly,
            PolicyKind::Grasp,
        ];
        spec.hierarchy = Some(Scale::Small.hierarchy().without_prefetch());
        spec.record_trace = true;
        spec.mode = ExecutionMode::Streaming;
        spec.threads = 6;
        spec.pipelines = 2;
        spec.store = Some("/tmp/grasp store \"quoted\"".to_owned());
        spec.codec = Some(Codec::Raw);
        spec
    }

    #[test]
    fn json_round_trips_every_field() {
        let spec = full_spec();
        let text = spec.to_json();
        let decoded = CampaignSpec::from_json(&text).expect("own output decodes");
        assert_eq!(decoded, spec);
        // Stable bytes: equal specs serialize identically.
        assert_eq!(decoded.to_json(), text);
    }

    #[test]
    fn defaults_round_trip_and_omit_optionals() {
        let spec = CampaignSpec::new(Scale::Tiny);
        let text = spec.to_json();
        assert!(!text.contains("hierarchy"));
        assert!(!text.contains("store"));
        assert!(!text.contains("codec"));
        assert_eq!(CampaignSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn cells_walk_the_grid_in_order() {
        let mut spec = CampaignSpec::new(Scale::Tiny);
        spec.datasets = vec![DatasetKind::Twitter.into(), DatasetKind::Kron.into()];
        spec.apps = vec![AppKind::PageRank];
        spec.policies = vec![PolicyKind::Rrip, PolicyKind::Grasp];
        let cells = spec.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].dataset, DatasetKind::Twitter);
        assert_eq!(cells[0].policy, PolicyKind::Rrip);
        assert_eq!(cells[1].policy, PolicyKind::Grasp);
        assert_eq!(cells[2].dataset, DatasetKind::Kron);
        assert_eq!(spec.streams().len(), 2);
    }

    #[test]
    fn decode_rejects_bad_documents() {
        let cases: &[(&str, &str)] = &[
            ("[1,2]", "spec must be a JSON object"),
            (r#"{"datasets":["tw"]}"#, "missing field \"scale\""),
            (r#"{"scale":"huge"}"#, "unknown scale"),
            (r#"{"scale":"tiny","datasets":["??"]}"#, "unknown dataset"),
            (r#"{"scale":"tiny","policies":["PIN-0"]}"#, "unknown policy"),
            (
                r#"{"scale":"tiny","policies":["PIN-101"]}"#,
                "unknown policy",
            ),
            (r#"{"scale":"tiny","mode":"warp"}"#, "unknown mode"),
            (r#"{"scale":"tiny","threads":-1}"#, "threads must be"),
            (r#"{"scale":"tiny","threads":1.5}"#, "threads must be"),
            (r#"{"scale":"tiny","codec":"zstd"}"#, "unknown codec"),
            (r#"{"scale":"tiny","frobnicate":1}"#, "unknown field"),
        ];
        for (doc, needle) in cases {
            let err = CampaignSpec::from_json(doc).expect_err(doc);
            assert_eq!(err.kind(), "spec/invalid", "{doc}");
            assert!(err.to_string().contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    fn decode_validates_hierarchy_geometry_instead_of_panicking() {
        // CacheConfig::new panics on this geometry; the decoder must error.
        let doc = r#"{"scale":"tiny","hierarchy":{
            "l1":{"size_bytes":1000,"ways":3,"block_bytes":48},
            "l2":{"size_bytes":262144,"ways":8,"block_bytes":64},
            "llc":{"size_bytes":32768,"ways":16,"block_bytes":64},
            "latency":{"l1_cycles":4,"l2_cycles":10,"llc_cycles":30,"memory_cycles":200},
            "prefetch":true,"record_llc_trace":false}}"#;
        let err = CampaignSpec::from_json(doc).expect_err("invalid geometry");
        assert_eq!(err.kind(), "spec/invalid");
        assert!(err.to_string().contains("power of two"), "{err}");
    }

    #[test]
    fn pin_policies_round_trip_through_the_wire_spelling() {
        for percent in [1u8, 25, 30, 99, 100] {
            let wire = policy_wire(PolicyKind::Pin(percent));
            assert_eq!(
                PolicyKind::from_label(&wire),
                Some(PolicyKind::Pin(percent))
            );
        }
        assert_eq!(PolicyKind::from_label("PIN-X"), None);
    }

    /// Deterministic spec generator for the property test: every field is
    /// drawn from the seed, covering all scales/modes/techniques/apps,
    /// ingested datasets, arbitrary pin fractions and optional fields.
    fn arbitrary_spec(seed: u64) -> CampaignSpec {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let scales = [Scale::Tiny, Scale::Small, Scale::Medium, Scale::Large];
        let modes = [
            ExecutionMode::Pipelined,
            ExecutionMode::Replay,
            ExecutionMode::Direct,
            ExecutionMode::Streaming,
        ];
        let mut spec = CampaignSpec::new(scales[next(4) as usize]);
        spec.datasets = (0..next(4))
            .map(|_| match next(8) {
                7 => DatasetId::Ingested(GraphHash(next(u64::MAX))),
                k => DatasetKind::ALL[k as usize].into(),
            })
            .collect();
        spec.techniques = (0..1 + next(3))
            .map(|_| TechniqueKind::ALL[next(5) as usize])
            .collect();
        spec.apps = (0..next(4))
            .map(|_| AppKind::ALL[next(5) as usize])
            .collect();
        spec.policies = (0..next(5))
            .map(|_| match next(4) {
                0 => PolicyKind::Pin(1 + next(100) as u8),
                1 => PolicyKind::Grasp,
                2 => PolicyKind::Rrip,
                _ => PolicyKind::Hawkeye,
            })
            .collect();
        if next(2) == 0 {
            let mut hierarchy = scales[next(4) as usize].hierarchy();
            if next(2) == 0 {
                hierarchy = hierarchy.without_prefetch();
            }
            if next(2) == 0 {
                hierarchy = hierarchy.with_llc_trace();
            }
            hierarchy.latency.memory_cycles = 100 + next(400);
            spec.hierarchy = Some(hierarchy);
        }
        spec.record_trace = next(2) == 0;
        spec.mode = modes[next(4) as usize];
        spec.threads = next(9) as usize;
        spec.pipelines = next(5) as usize;
        if next(2) == 0 {
            spec.store = Some(format!("/tmp/store-{}", next(1000)));
        }
        if next(2) == 0 {
            spec.codec = Some(Codec::ALL[next(2) as usize]);
        }
        spec
    }

    proptest! {
        #[test]
        fn random_specs_round_trip_through_json(seed in 0u64..u64::MAX) {
            let spec = arbitrary_spec(seed);
            let text = spec.to_json();
            let decoded = CampaignSpec::from_json(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(&decoded, &spec);
            prop_assert_eq!(decoded.to_json(), text);
        }
    }
}
