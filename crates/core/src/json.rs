//! A minimal JSON value type shared by the report writer, the serializable
//! [`CampaignSpec`](crate::spec::CampaignSpec) and the campaign service's
//! wire protocol.
//!
//! The workspace's vendored `serde` is an offline stub without a JSON
//! backend, and every document crossing this codebase is produced by our own
//! writers, so a small strict parser covering objects, arrays, strings,
//! numbers, booleans and null — with escapes handled exactly as the writer
//! emits them — is all that is needed. Serialization is the [`Json`] value's
//! `Display` impl: object keys emit in sorted (BTreeMap) order, so a given
//! value always serializes to the same bytes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64` (exact for integers up to 2^53).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order not preserved; serialization is by sorted key).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one
    /// (integral, in range, no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Convenience constructor for an integer number value.
    pub fn integer(n: u64) -> Json {
        Json::Number(n as f64)
    }
}

/// Appends `text` to `out` with JSON string escaping (the exact escape set
/// [`parse`] resolves: quotes, backslashes, the common control escapes, and
/// `\u00XX` for the remaining control characters).
pub fn escape_into(out: &mut String, text: &str) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                // Integers (the overwhelming majority of what this codebase
                // emits) print without a decimal point; everything else uses
                // Rust's shortest-round-trip float formatting.
                if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => {
                let mut escaped = String::with_capacity(s.len() + 2);
                escape_into(&mut escaped, s);
                write!(f, "\"{escaped}\"")
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(map) => {
                f.write_str("{")?;
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut escaped = String::with_capacity(key.len());
                    escape_into(&mut escaped, key);
                    write!(f, "\"{escaped}\":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the writer only emits valid
                    // UTF-8; recover the char boundary from the remainder).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_bench_dump_shape() {
        let doc = parse(
            r#"{"figure":"fig5","wall_ms":27582,"tables":[{"title":"Fig. \"5\"","headers":["app","GRASP"],"rows":[["BC","+5.2"],["PR\n","-1.0"]]}]}"#,
        )
        .expect("parses");
        assert_eq!(doc.get("wall_ms").and_then(Json::as_f64), Some(27582.0));
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("title").and_then(Json::as_str),
            Some("Fig. \"5\"")
        );
        let rows = tables[0]
            .get("rows")
            .and_then(Json::as_array)
            .expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].as_array().expect("row")[0].as_str(),
            Some("PR\n"),
            "escapes resolve"
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn numbers_bools_and_null_round_trip() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("[]").unwrap(), Json::Array(Vec::new()));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let doc = Json::object([
            ("name", Json::string("tw\n\"quoted\"")),
            ("count", Json::integer(42)),
            ("ratio", Json::Number(2.5)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Array(vec![Json::integer(1), Json::string("x")]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).expect("own output parses"), doc);
        // Stable: the same value always serializes to the same bytes.
        assert_eq!(text, doc.to_string());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::integer(27582).to_string(), "27582");
        assert_eq!(Json::Number(-3.0).to_string(), "-3");
        assert_eq!(Json::Number(0.5).to_string(), "0.5");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Number(4.0).as_u64(), Some(4));
        assert_eq!(Json::Number(4.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(Json::string("4").as_u64(), None);
    }
}
