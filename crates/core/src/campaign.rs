//! Parallel experiment campaigns: a figure's full grid in one call.
//!
//! Every figure of the evaluation is a grid of dataset × reordering ×
//! application × LLC-policy simulations. The bench harness used to walk that
//! grid serially, rebuilding and re-reordering the dataset for every cell. A
//! [`Campaign`] expresses the whole grid declaratively and runs it on a
//! thread pool according to an execution plan:
//!
//! * each dataset is **generated once**,
//! * each (dataset, technique, traversal-direction) graph is **reordered
//!   once** and shared across cells via `Arc<Csr>`,
//! * each (dataset, technique, application) cell is **executed once** — the
//!   application runs through the policy-independent upper levels and the
//!   post-L2 stream is recorded ([`Experiment::record`]) — and the policy
//!   axis is served by **replaying** the recorded stream, so an N-policy
//!   sweep pays the application and L1/L2 cost once instead of N times,
//! * in the default [`ExecutionMode::Pipelined`] plan there is **no barrier
//!   between phases**: a dependency-driven scheduler keeps one shared ready
//!   queue of typed tasks (`Record(stream)` / `Load(stream)` /
//!   `Replay(cell)`) where each replay cell becomes runnable the moment its
//!   stream's recording — or trace-store load — completes, so workers drain
//!   the replays of stream *N* while stream *N + 1* is still recording,
//! * placement is **cost-aware**: task costs are seeded from
//!   instruction/record counts and refined online from measured wall times
//!   within the run ([`SchedulerEvent`] logs the resulting interleaving),
//!   and the ready queues are drained longest-processing-time-first, and
//! * results are collected **deterministically in grid order** regardless of
//!   mode, thread count or scheduling.
//!
//! Per-cell statistics are bit-identical to running [`Experiment::run`]
//! serially — in pipelined/replay mode because the recorded stream is
//! replayed through the same LLC-stage code the direct path simulates
//! (pinned by `tests/replay_parity.rs` and `tests/scheduler_parity.rs`).
//! [`ExecutionMode::Replay`] keeps the two-phase barrier plan as a
//! reference, and [`ExecutionMode::Direct`] the original run-every-cell
//! plan, for workloads where recording is undesirable (e.g. single-policy
//! grids dominated by trace volume).
//!
//! ```no_run
//! use grasp_core::campaign::Campaign;
//! use grasp_core::datasets::{DatasetKind, Scale};
//! use grasp_core::policy::PolicyKind;
//! use grasp_analytics::apps::AppKind;
//!
//! let results = Campaign::new(Scale::Small)
//!     .datasets(&DatasetKind::HIGH_SKEW)
//!     .apps(&AppKind::ALL)
//!     .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
//!     .run();
//! for run in results.iter() {
//!     println!("{} {} {}: {} LLC misses",
//!         run.cell.dataset, run.cell.app, run.cell.policy, run.result.llc_misses());
//! }
//! ```

use crate::datasets::{DatasetCatalog, DatasetId, DatasetKind, GraphHash, Scale};
use crate::error::Error;
use crate::experiment::{Experiment, RecordedRun, RunResult};
use crate::flight::{FlightRegistry, FlightServed};
use crate::policy::PolicyKind;
use crate::spec::CampaignSpec;
use crate::trace_store::{codec_from_env, TraceStore, TraceStoreKey};
use grasp_analytics::apps::AppKind;
use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::Codec;
use grasp_graph::types::Direction;
use grasp_graph::{Csr, GraphView};
use grasp_reorder::TechniqueKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// How a campaign turns its grid into simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// The dependency-driven scheduler (the default): records, trace-store
    /// loads and policy replays share one ready queue, each replay cell
    /// becoming runnable the moment its stream's recording (or load)
    /// completes. There is no record→replay barrier and no sequential
    /// stream loop — workers drain replays of one stream while later
    /// streams are still recording — and placement is cost-aware
    /// (longest-processing-time-first over online-refined per-(app, policy)
    /// cost estimates). Results are bit-identical to every other plan and
    /// arrive in deterministic grid order.
    #[default]
    Pipelined,
    /// Record each (dataset, technique, application) stream once, replay it
    /// under every policy of the grid, with a hard barrier between the two
    /// phases. Kept as the reference two-phase plan the pipelined scheduler
    /// is pinned against.
    Replay,
    /// Run every cell through the full hierarchy independently (the original
    /// plan; no traces are kept alive beyond a cell).
    Direct,
    /// Stream each (dataset, technique, application) cell: the recording run
    /// and the policy replays execute **concurrently**, sharing frozen trace
    /// chunks through a bounded channel
    /// ([`Experiment::sweep_streaming`]). The record phase's wall-clock is
    /// overlapped instead of serialized against the fan-out, and the peak
    /// trace footprint per cell is channel-depth × chunk-size instead of the
    /// whole stream. On a budget of ≥ 4 workers, streams are claimed by
    /// several concurrent **gang pipelines** (each a dedicated recorder
    /// thread plus its replay consumers; tune with
    /// [`Campaign::streaming_pipelines`]), so stream *N + 1* records while
    /// stream *N*'s fan-out tail drains; below that, streams run one at a
    /// time with the full worker budget. Results stay bit-identical to the
    /// other plans in every configuration.
    ///
    /// Campaigns that request per-cell traces
    /// ([`Campaign::recording_llc_trace`]) **fall back to [`ExecutionMode::Pipelined`]**,
    /// since streaming never materializes a trace to hand back. The
    /// fallback is observable: [`CampaignResult::executed_mode`] reports
    /// the plan that actually ran, not the one requested.
    Streaming,
}

impl ExecutionMode {
    /// The wire slug used by [`CampaignSpec`] documents (`pipelined`,
    /// `replay`, `direct`, `streaming`).
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Pipelined => "pipelined",
            ExecutionMode::Replay => "replay",
            ExecutionMode::Direct => "direct",
            ExecutionMode::Streaming => "streaming",
        }
    }

    /// Parses an [`ExecutionMode::label`] back to the mode (case-sensitive,
    /// exact).
    pub fn from_label(label: &str) -> Option<Self> {
        [
            ExecutionMode::Pipelined,
            ExecutionMode::Replay,
            ExecutionMode::Direct,
            ExecutionMode::Streaming,
        ]
        .into_iter()
        .find(|mode| mode.label() == label)
    }
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One entry of the scheduler's event log: what happened, in the order it
/// happened (entries are appended under the scheduler lock, so the log is a
/// true interleaving order, not a per-worker approximation).
///
/// `stream` indexes the campaign's unique (dataset, technique, app) streams
/// in first-seen grid order; `cell` indexes [`Campaign::cells`]. The log is
/// what makes pipelining *testable*: a barrier-free schedule shows
/// `ReplayFinished` entries before the last `RecordStarted`, which
/// `tests/scheduler_parity.rs` asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerEvent {
    /// A worker began recording a stream (application + upper levels).
    RecordStarted {
        /// Stream index in first-seen grid order.
        stream: usize,
    },
    /// A stream's recording completed; its replay cells are now runnable.
    ///
    /// When campaigns coordinate through a shared [`FlightRegistry`]
    /// ([`Campaign::with_single_flight`]), only the flight's leader —
    /// the one campaign that actually executed the recording — logs this;
    /// every deduplicated sibling logs [`SchedulerEvent::RecordDeduped`]
    /// instead, so counting `RecordFinished` entries across campaigns
    /// counts real recordings.
    RecordFinished {
        /// Stream index in first-seen grid order.
        stream: usize,
    },
    /// A planned recording completed **without recording anything**: the
    /// stream was served by another campaign's in-flight recording (or by a
    /// store entry published between the plan-time probe and the task
    /// running). The stream's replay cells are runnable, exactly as after
    /// [`SchedulerEvent::RecordFinished`].
    RecordDeduped {
        /// Stream index in first-seen grid order.
        stream: usize,
    },
    /// A worker began loading a stream from the trace store (the store
    /// probe saw an entry for its key).
    LoadStarted {
        /// Stream index in first-seen grid order.
        stream: usize,
    },
    /// A trace-store load completed. `hit` is `false` when the probed entry
    /// turned out corrupt and the worker fell back to recording (the
    /// fallback is part of the same task — its replays are runnable either
    /// way).
    LoadFinished {
        /// Stream index in first-seen grid order.
        stream: usize,
        /// Whether the store served the stream (vs. a corrupt-entry
        /// fallback recording).
        hit: bool,
    },
    /// A worker began replaying one cell's policy over its stream.
    ReplayStarted {
        /// Cell index in grid order.
        cell: usize,
    },
    /// One cell's replay completed (its result slot is filled).
    ReplayFinished {
        /// Cell index in grid order.
        cell: usize,
    },
    /// Every cell of a stream has completed, so the scheduler dropped its
    /// recorded stream (peak trace memory is bounded by the streams whose
    /// cells are still in flight, not the whole grid).
    StreamRetired {
        /// Stream index in first-seen grid order.
        stream: usize,
    },
}

/// Exponential-moving-average weight for online cost refinement: a fresh
/// measurement moves the estimate halfway — quick to adapt within a run,
/// yet one outlier (a descheduled worker) can't wreck the ordering.
const COST_EWMA_ALPHA: f64 = 0.5;

/// Seed rate for a trace-store load, relative to recording the same stream:
/// loads are ordered among the obtain tasks as cheap records (they unlock
/// the same replays at a fraction of the cost) until a measured load
/// refines the estimate.
const LOAD_SEED_DISCOUNT: f64 = 1.0 / 16.0;

/// The scheduler's cost model: per-task-kind unit rates, seeded at 1.0 (so
/// initial ordering is purely by work size — instruction-proportional
/// `(V + E) × iterations` for records, trace record count for replays) and
/// refined online from measured wall times via an EWMA. Records/loads and
/// replays queue separately, so their rates never need a common unit; the
/// units only rank tasks *within* a queue.
#[derive(Debug, Default)]
struct CostModel {
    /// Seconds per record work unit, per application.
    record_rate: HashMap<AppKind, f64>,
    /// Seconds per store-load work unit, per application.
    load_rate: HashMap<AppKind, f64>,
    /// Seconds per replayed trace record, per (application, policy).
    replay_rate: HashMap<(AppKind, PolicyKind), f64>,
}

impl CostModel {
    fn record_cost(&self, app: AppKind, work: f64) -> f64 {
        work * self.record_rate.get(&app).copied().unwrap_or(1.0)
    }

    fn load_cost(&self, app: AppKind, work: f64) -> f64 {
        work * self
            .load_rate
            .get(&app)
            .copied()
            .unwrap_or(LOAD_SEED_DISCOUNT)
    }

    fn replay_cost(&self, app: AppKind, policy: PolicyKind, records: f64) -> f64 {
        records * self.replay_rate.get(&(app, policy)).copied().unwrap_or(1.0)
    }

    fn observe(entry: &mut f64, measured_rate: f64) {
        *entry += COST_EWMA_ALPHA * (measured_rate - *entry);
    }

    fn observe_record(&mut self, app: AppKind, work: f64, elapsed: f64) {
        Self::observe(
            self.record_rate.entry(app).or_insert(1.0),
            elapsed / work.max(1.0),
        );
    }

    fn observe_load(&mut self, app: AppKind, work: f64, elapsed: f64) {
        Self::observe(
            self.load_rate.entry(app).or_insert(LOAD_SEED_DISCOUNT),
            elapsed / work.max(1.0),
        );
    }

    fn observe_replay(&mut self, app: AppKind, policy: PolicyKind, records: f64, elapsed: f64) {
        Self::observe(
            self.replay_rate.entry((app, policy)).or_insert(1.0),
            elapsed / records.max(1.0),
        );
    }
}

/// One coordinate of a campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignCell {
    /// Dataset the cell simulates.
    pub dataset: DatasetId,
    /// Reordering technique applied to the dataset.
    pub technique: TechniqueKind,
    /// Application driving the access stream.
    pub app: AppKind,
    /// LLC replacement policy under evaluation.
    pub policy: PolicyKind,
}

/// The completed simulation of one [`CampaignCell`].
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The grid coordinate.
    pub cell: CampaignCell,
    /// The simulation outcome (identical to a serial [`Experiment::run`]).
    pub result: RunResult,
}

/// One unique (dataset, technique, app) stream of a campaign grid: the
/// prepared experiment plus the grid identity the trace store keys it by.
#[derive(Debug, Clone)]
struct StreamJob {
    dataset: DatasetId,
    technique: TechniqueKind,
    app: AppKind,
    experiment: Experiment,
}

impl StreamJob {
    /// Instruction-proportional work estimate for recording this stream:
    /// each iteration walks the vertex and edge arrays, so
    /// `(V + E) × max_iterations` tracks the recorded instruction count
    /// without executing anything. Only the *relative* size matters — it
    /// seeds the scheduler's longest-processing-time-first ordering until
    /// measured wall times refine the rates.
    fn record_work(&self) -> f64 {
        let graph = self.experiment.graph();
        let size = graph.vertex_count() as f64 + graph.edge_count() as f64;
        size * self.experiment.app_config().max_iterations.max(1) as f64
    }
}

/// A declarative dataset × technique × app × policy grid.
#[derive(Debug, Clone)]
pub struct Campaign {
    scale: Scale,
    datasets: Vec<DatasetId>,
    catalog: DatasetCatalog,
    techniques: Vec<TechniqueKind>,
    apps: Vec<AppKind>,
    policies: Vec<PolicyKind>,
    hierarchy: Option<HierarchyConfig>,
    record_trace: bool,
    mode: ExecutionMode,
    threads: usize,
    pipelines: usize,
    store: Option<Arc<TraceStore>>,
    codec: Option<Codec>,
    flights: Option<Arc<FlightRegistry>>,
}

impl Campaign {
    /// Creates an empty campaign at the given scale.
    ///
    /// Defaults: the DBG reordering of the headline figures, the
    /// scale-appropriate hierarchy, no trace recording, the record/replay
    /// execution plan, and one worker per available CPU.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            datasets: Vec::new(),
            catalog: DatasetCatalog::new(),
            techniques: vec![TechniqueKind::Dbg],
            apps: Vec::new(),
            policies: Vec::new(),
            hierarchy: None,
            record_trace: false,
            mode: ExecutionMode::default(),
            threads: 0,   // auto: resolved to available_parallelism at run time
            pipelines: 0, // auto: resolved from the worker budget at run time
            store: None,
            codec: None, // resolved from GRASP_TRACE_CODEC (default delta-varint)
            flights: None,
        }
    }

    /// Reconstructs a campaign from its serializable [`CampaignSpec`].
    ///
    /// The inverse of [`Campaign::to_spec`]: every spec field lands on the
    /// matching builder, and `Campaign::from_spec(&c.to_spec())` builds a
    /// campaign that runs the same grid the same way. A spec naming a trace
    /// store directory opens (creating if needed) that store; an unopenable
    /// path surfaces as [`Error::Store`].
    ///
    /// Specs carry no [`DatasetCatalog`], so a spec listing
    /// [`DatasetId::Ingested`] coordinates needs [`Campaign::catalog`]
    /// called on the result before the campaign can run.
    pub fn from_spec(spec: &CampaignSpec) -> Result<Self, Error> {
        let mut campaign = Campaign::new(spec.scale)
            .dataset_ids(&spec.datasets)
            .techniques(&spec.techniques)
            .apps(&spec.apps)
            .policies(&spec.policies)
            .execution(spec.mode)
            .threads(spec.threads)
            .streaming_pipelines(spec.pipelines);
        if let Some(hierarchy) = spec.hierarchy {
            campaign = campaign.hierarchy(hierarchy);
        }
        if spec.record_trace {
            campaign = campaign.recording_llc_trace();
        }
        if let Some(path) = &spec.store {
            let store = TraceStore::open(path.as_str()).map_err(Error::from)?;
            campaign = campaign.with_trace_store(Arc::new(store));
        }
        if let Some(codec) = spec.codec {
            campaign = campaign.trace_codec(codec);
        }
        Ok(campaign)
    }

    /// The campaign's serializable content: everything [`Campaign::from_spec`]
    /// needs to rebuild an equivalent campaign (an attached store serializes
    /// as its directory path). The catalog and an attached
    /// [`FlightRegistry`] are runtime wiring and are not part of the spec.
    pub fn to_spec(&self) -> CampaignSpec {
        CampaignSpec {
            scale: self.scale,
            datasets: self.datasets.clone(),
            techniques: self.techniques.clone(),
            apps: self.apps.clone(),
            policies: self.policies.clone(),
            hierarchy: self.hierarchy,
            record_trace: self.record_trace,
            mode: self.mode,
            threads: self.threads,
            pipelines: self.pipelines,
            store: self
                .store
                .as_ref()
                .map(|store| store.dir().display().to_string()),
            codec: self.codec,
        }
    }

    /// Sets the (synthetic) datasets of the grid.
    #[must_use]
    pub fn datasets(mut self, datasets: &[DatasetKind]) -> Self {
        self.datasets = datasets.iter().map(|&kind| kind.into()).collect();
        self
    }

    /// Sets the datasets of the grid by identity, mixing synthetic
    /// stand-ins and ingested on-disk graphs freely.
    #[must_use]
    pub fn dataset_ids(mut self, datasets: &[DatasetId]) -> Self {
        self.datasets = datasets.to_vec();
        self
    }

    /// Appends an ingested on-disk graph (by content hash) to the dataset
    /// axis. The hash must be registered in the campaign's
    /// [`DatasetCatalog`] (see [`Campaign::catalog`]) before the campaign
    /// runs.
    #[must_use]
    pub fn ingested_dataset(mut self, hash: GraphHash) -> Self {
        self.datasets.push(DatasetId::Ingested(hash));
        self
    }

    /// Provides the catalog that resolves [`DatasetId::Ingested`]
    /// coordinates to on-disk graphs.
    #[must_use]
    pub fn catalog(mut self, catalog: DatasetCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Sets the reordering techniques of the grid (default: DBG only).
    #[must_use]
    pub fn techniques(mut self, techniques: &[TechniqueKind]) -> Self {
        self.techniques = techniques.to_vec();
        self
    }

    /// Sets the applications of the grid.
    #[must_use]
    pub fn apps(mut self, apps: &[AppKind]) -> Self {
        self.apps = apps.to_vec();
        self
    }

    /// Sets the LLC policies of the grid.
    #[must_use]
    pub fn policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        self
    }

    /// Overrides the hierarchy configuration (default: `scale.hierarchy()`).
    #[must_use]
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Requests an LLC trace in every cell's [`RunResult`] (the OPT study).
    #[must_use]
    pub fn recording_llc_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches a persistent trace store. Streams whose recording is already
    /// in the store **skip the record phase entirely** — the persisted
    /// stream, application output and instruction estimate are loaded and
    /// fanned out across the policy grid exactly like a fresh recording
    /// (bit-identical results; pinned by `tests/trace_store.rs`). Streams
    /// the store misses are recorded as usual and atomically published for
    /// the next run. Corrupt entries count as misses and are overwritten.
    #[must_use]
    pub fn with_trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches the store named by the `GRASP_TRACE_STORE` environment
    /// variable, when set.
    ///
    /// This is the documented **fallback** for campaigns whose
    /// [`CampaignSpec`] leaves the `store` field unset — prefer the spec
    /// field (or [`Campaign::with_trace_store`]), which makes the store an
    /// explicit, serializable part of the campaign. When the variable is
    /// unset the call is a no-op, and says so once per process on stderr
    /// (the silent no-op used to make "why is every run re-recording?"
    /// needlessly hard to diagnose).
    #[must_use]
    pub fn trace_store_from_env(mut self) -> Self {
        if let Some(store) = TraceStore::from_env() {
            self.store = Some(Arc::new(store));
        } else {
            static UNSET: std::sync::Once = std::sync::Once::new();
            UNSET.call_once(|| {
                eprintln!(
                    "trace store: GRASP_TRACE_STORE is not set; campaign runs without \
                     a persistent trace store (every stream records fresh)"
                );
            });
        }
        self
    }

    /// Shares an in-flight recording registry with this campaign, so
    /// concurrent campaigns holding the same registry never record the same
    /// (dataset, technique, app, config) stream twice — the first campaign
    /// to reach a stream records it (or loads it from the store) and every
    /// concurrent sibling attaches to that recording in memory. The
    /// campaign service wires one registry across all client campaigns;
    /// library users can do the same across threads.
    ///
    /// Deduplicated streams log [`SchedulerEvent::RecordDeduped`] instead
    /// of [`SchedulerEvent::RecordFinished`], and the registry's
    /// [`FlightRegistry::stats`] count how each flight was served.
    #[must_use]
    pub fn with_single_flight(mut self, registry: Arc<FlightRegistry>) -> Self {
        self.flights = Some(registry);
        self
    }

    /// The shared in-flight registry, if any (see
    /// [`Campaign::with_single_flight`]).
    pub fn single_flight(&self) -> Option<&Arc<FlightRegistry>> {
        self.flights.as_ref()
    }

    /// The attached trace store, if any (its [`TraceStore::stats`] report
    /// tells how many record phases the run skipped).
    pub fn trace_store(&self) -> Option<&Arc<TraceStore>> {
        self.store.as_ref()
    }

    /// Selects the [`Codec`] newly recorded streams are **published** with
    /// (default: the `GRASP_TRACE_CODEC` environment variable, falling back
    /// to [`Codec::DeltaVarint`]). Loads are codec-agnostic — an entry in
    /// any codec serves a hit — so changing this never invalidates a store.
    #[must_use]
    pub fn trace_codec(mut self, codec: Codec) -> Self {
        self.codec = Some(codec);
        self
    }

    /// The publication codec a run actually uses (see
    /// [`Campaign::trace_codec`]).
    fn resolved_codec(&self) -> Codec {
        self.codec.unwrap_or_else(codec_from_env)
    }

    /// Selects the execution plan (default: [`ExecutionMode::Replay`]).
    #[must_use]
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for selecting the direct (run-every-cell) plan.
    #[must_use]
    pub fn direct(self) -> Self {
        self.execution(ExecutionMode::Direct)
    }

    /// Shorthand for selecting the streaming (overlapped record/replay)
    /// plan.
    #[must_use]
    pub fn streaming(self) -> Self {
        self.execution(ExecutionMode::Streaming)
    }

    /// Forces the number of concurrent gang pipelines the
    /// [`ExecutionMode::Streaming`] plan runs (each pipeline is one
    /// dedicated recorder thread plus its share of replay consumers). `0`
    /// (the default) resolves from the worker budget — one pipeline below 4
    /// workers, `max(2, workers / 4)` at or above — and any request is
    /// clamped to the stream count. `streaming_pipelines(1)` reproduces the
    /// historical sequential-stream plan exactly (full worker budget, one
    /// stream at a time), which is what the bench harness uses as its
    /// sequential-streaming baseline. Ignored by the other plans.
    #[must_use]
    pub fn streaming_pipelines(mut self, pipelines: usize) -> Self {
        self.pipelines = pipelines;
        self
    }

    /// Sets the worker-thread count. `0` (the default) means one worker per
    /// available CPU; degenerate requests (zero, or absurdly many workers)
    /// are clamped at run time to `available_parallelism`, and every budget
    /// is capped at the campaign's cell count — a degenerate size never
    /// reaches the pool. Modest oversubscription (up to 8× the CPU count)
    /// is honoured as requested, so multi-worker scheduling stays
    /// exercisable on small machines.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker budget a run actually uses (see [`Campaign::threads`]).
    fn worker_budget(&self, jobs: usize) -> usize {
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        let sane_limit = available.saturating_mul(8);
        let requested = match self.threads {
            0 => available,
            oversized if oversized > sane_limit => available,
            explicit => explicit,
        };
        requested.min(jobs.max(1)).max(1)
    }

    /// The grid coordinates in deterministic grid order: datasets outermost,
    /// then techniques, applications and policies. Delegates to
    /// [`CampaignSpec::cells`] — the grid has exactly one definition, shared
    /// by the library and the service wire format.
    pub fn cells(&self) -> Vec<CampaignCell> {
        self.to_spec().cells()
    }

    /// Runs the campaign under its execution plan and returns the results in
    /// grid order.
    pub fn run(&self) -> CampaignResult {
        self.run_observed(None)
    }

    /// Runs the campaign, invoking `observer` once per completed cell with
    /// the cell's grid index and its finished run. Results still come back
    /// in grid order; the *observer* sees cells in **completion order** —
    /// under the pipelined plan that means incrementally, from the worker
    /// that finished the cell, while the rest of the grid is still running
    /// (the campaign service streams its per-cell result frames from here).
    /// The barrier and streaming plans notify in grid order once the plan
    /// completes.
    pub fn run_with_observer(
        &self,
        observer: &(dyn Fn(usize, &CampaignRun) + Sync),
    ) -> CampaignResult {
        self.run_observed(Some(observer))
    }

    /// [`Campaign::run`] with an optional per-cell completion observer.
    fn run_observed(&self, observer: Option<CellObserver<'_>>) -> CampaignResult {
        // Pin the publication codec up front when a store or a shared
        // flight registry is attached: store keys are built per stream job
        // (possibly on worker threads), and the environment should be
        // consulted — and a bad value warned about — exactly once per run,
        // not once per stream.
        let pinned;
        let this = if self.codec.is_none() && (self.store.is_some() || self.flights.is_some()) {
            pinned = self.clone().trace_codec(codec_from_env());
            &pinned
        } else {
            self
        };
        let budget = this.worker_budget(this.cells().len());
        let result = match this.mode {
            ExecutionMode::Pipelined => return this.run_pipelined(budget, observer),
            ExecutionMode::Replay => this.run_replay(budget),
            ExecutionMode::Direct => this.run_direct(budget),
            // Streaming never materializes a trace, so trace-requesting
            // campaigns (the OPT study) fall back to the pipelined plan,
            // which hands traces back natively. The detour is surfaced via
            // `CampaignResult::executed_mode`.
            ExecutionMode::Streaming if this.record_trace => {
                return this.run_pipelined(budget, observer)
            }
            ExecutionMode::Streaming => this.run_streaming(budget),
        };
        // The barrier plans have no per-cell completion points to hook, so
        // the observer sees the finished grid in grid order.
        if let Some(observer) = observer {
            for (index, run) in result.iter().enumerate() {
                observer(index, run);
            }
        }
        result
    }

    /// Builds the experiment of one (dataset, technique, app) coordinate,
    /// sharing generated datasets and reordered graphs through the caches.
    fn experiment_for(
        &self,
        base: &mut HashMap<DatasetId, Arc<dyn GraphView>>,
        reordered: &mut HashMap<(DatasetId, TechniqueKind, Direction), Arc<Csr>>,
        dataset: DatasetId,
        technique: TechniqueKind,
        app: AppKind,
    ) -> Experiment {
        let hierarchy = self.hierarchy.unwrap_or_else(|| self.scale.hierarchy());
        let source = base.entry(dataset).or_insert_with(|| match dataset {
            DatasetId::Synthetic(kind) => Arc::new(kind.build(self.scale).graph),
            DatasetId::Ingested(hash) => self
                .catalog
                .load(hash)
                .unwrap_or_else(|e| panic!("cannot open ingested dataset {dataset}: {e}")),
        });
        let source = Arc::clone(source);
        // Reorder once per (dataset, technique, hotness direction) — the
        // direction is a property of the application, but most applications
        // share one, so the permutation work collapses across the app axis.
        let direction = app.hotness_direction();
        let graph = reordered
            .entry((dataset, technique, direction))
            .or_insert_with(|| {
                let boxed = technique.instantiate();
                let perm = boxed.compute(&*source, direction);
                Arc::new(grasp_reorder::relabel(&*source, &perm))
            });
        Experiment::shared(Arc::<Csr>::clone(graph), app).with_hierarchy(hierarchy)
    }

    /// The direct plan: every cell simulates the full hierarchy.
    fn run_direct(&self, threads: usize) -> CampaignResult {
        let mut base = HashMap::new();
        let mut reordered = HashMap::new();
        let work: Vec<(CampaignCell, Experiment)> = self
            .cells()
            .into_iter()
            .map(|cell| {
                let mut experiment = self.experiment_for(
                    &mut base,
                    &mut reordered,
                    cell.dataset,
                    cell.technique,
                    cell.app,
                );
                if self.record_trace {
                    experiment = experiment.recording_llc_trace();
                }
                (cell, experiment)
            })
            .collect();
        let runs = parallel_map(&work, threads, |(cell, experiment)| CampaignRun {
            cell: *cell,
            result: experiment.run(cell.policy),
        });
        CampaignResult::new(runs, ExecutionMode::Direct)
    }

    /// Collects the unique (dataset, technique, app) streams of the grid in
    /// first-seen grid order, plus each cell's index into the stream list
    /// (shared by the replay and streaming plans). Each stream carries its
    /// grid identity so the trace store can key it.
    fn stream_plan(&self) -> (Vec<(CampaignCell, usize)>, Vec<StreamJob>) {
        let mut base = HashMap::new();
        let mut reordered = HashMap::new();
        let mut stream_index: HashMap<(DatasetId, TechniqueKind, AppKind), usize> = HashMap::new();
        let mut streams: Vec<StreamJob> = Vec::new();
        let cells: Vec<(CampaignCell, usize)> = self
            .cells()
            .into_iter()
            .map(|cell| {
                let key = (cell.dataset, cell.technique, cell.app);
                let index = *stream_index.entry(key).or_insert_with(|| {
                    streams.push(StreamJob {
                        dataset: cell.dataset,
                        technique: cell.technique,
                        app: cell.app,
                        experiment: self.experiment_for(
                            &mut base,
                            &mut reordered,
                            cell.dataset,
                            cell.technique,
                            cell.app,
                        ),
                    });
                    streams.len() - 1
                });
                (cell, index)
            })
            .collect();
        (cells, streams)
    }

    /// The trace-store key of one stream: its grid coordinate plus the
    /// experiment's hierarchy/app-config fingerprint and the campaign's
    /// publication codec (which also picks the entry file name's format
    /// version).
    fn store_key(&self, job: &StreamJob) -> TraceStoreKey {
        TraceStoreKey::new(
            job.dataset,
            self.scale,
            job.technique,
            job.app,
            job.experiment.hierarchy(),
            job.experiment.app_config(),
        )
        .with_codec(self.resolved_codec())
    }

    /// Produces one stream's [`RecordedRun`]: loaded from the trace store
    /// when an entry exists (the record phase is skipped entirely), recorded
    /// freshly — and published back to the store — otherwise. The flag
    /// reports whether the store served the stream (a corrupt entry counts
    /// as a miss and is overwritten).
    ///
    /// This is the *uncoordinated* path; [`Campaign::obtain`] wraps it in
    /// the shared [`FlightRegistry`] when one is attached.
    fn obtain_local(&self, job: &StreamJob) -> (RecordedRun, bool) {
        let Some(store) = &self.store else {
            return (job.experiment.record(), false);
        };
        let key = self.store_key(job);
        if let Some(stored) = store.load(&key) {
            let recorded =
                job.experiment
                    .recorded_from_parts(stored.trace, stored.app, stored.instructions);
            return (recorded, true);
        }
        let recorded = job.experiment.record();
        if let Err(err) = store.publish(
            &key,
            recorded.trace(),
            recorded.app(),
            recorded.instructions(),
        ) {
            // Publication failures cost future runs the reuse, never this
            // run its results.
            eprintln!("trace store: could not publish {key}: {err}");
        }
        (recorded, false)
    }

    /// Obtains one stream's recording, coordinated. Without a shared
    /// [`FlightRegistry`] this is [`Campaign::obtain_local`] behind an
    /// `Arc`; with one, concurrent obtains of the same store key — from
    /// this campaign or any sibling sharing the registry — collapse to a
    /// single recording that every caller attaches to
    /// ([`FlightServed::Attached`]).
    fn obtain(&self, job: &StreamJob) -> (Arc<RecordedRun>, FlightServed) {
        match &self.flights {
            Some(registry) => registry.obtain(self.store_key(job), || self.obtain_local(job)),
            None => {
                let (recorded, hit) = self.obtain_local(job);
                let served = if hit {
                    FlightServed::StoreHit
                } else {
                    FlightServed::Recorded
                };
                (Arc::new(recorded), served)
            }
        }
    }

    /// Whether the trace store would serve this stream without recording —
    /// a plan-time probe (see [`TraceStore::probe`]) the scheduler uses to
    /// classify the stream's obtain task as a cheap `Load` instead of a
    /// full `Record` for cost ordering and event logging. The actual task
    /// still falls back to recording when the probed entry is corrupt.
    fn probes_as_load(&self, job: &StreamJob) -> bool {
        self.store
            .as_ref()
            .is_some_and(|store| store.probe(&self.store_key(job)))
    }

    /// The record-once / replay-many plan: one recording per unique
    /// (dataset, technique, app) stream — loaded from the trace store when
    /// possible — then one cheap replay per cell.
    fn run_replay(&self, threads: usize) -> CampaignResult {
        let (cells, streams) = self.stream_plan();

        // Phase 1: obtain each stream once (application + upper levels, or a
        // store hit / shared flight that skips both).
        let records: Vec<Arc<RecordedRun>> =
            parallel_map(&streams, threads, |job| self.obtain(job).0);

        // Phase 2: fan each recorded stream out across its policies.
        let runs = parallel_map(&cells, threads, |&(cell, index)| {
            let recorded = &records[index];
            let result = if self.record_trace {
                recorded.replay_with_trace(cell.policy)
            } else {
                recorded.replay(cell.policy)
            };
            CampaignRun { cell, result }
        });
        CampaignResult::new(runs, ExecutionMode::Replay)
    }

    /// The dependency-driven plan: one shared ready queue of typed tasks —
    /// `Record(stream)` / `Load(stream)` / `Replay(cell)` — drained by
    /// `workers` threads with no phase barrier and no sequential stream
    /// loop. Each stream's replay cells become runnable the moment its
    /// obtain task completes, so workers drain replays of stream *N* while
    /// stream *N + 1* is still recording.
    ///
    /// Scheduling policy:
    ///
    /// * **Admission cap.** At most `⌈workers / 2⌉` obtain tasks run
    ///   concurrently once replays are available, so recorders can never
    ///   starve the replay tail (which is what re-creates the barrier).
    ///   The cap is work-conserving: a worker takes an obtain task beyond
    ///   the cap rather than idling when no replay is ready.
    /// * **LPT ordering.** Both queues pop
    ///   longest-processing-time-first, with costs from the [`CostModel`]:
    ///   expensive streams record early and expensive replays don't
    ///   straggle at the end of the run. Costs are evaluated at pop time,
    ///   so online rate refinements reorder the queues immediately.
    /// * **Retirement.** A stream's recording is dropped as soon as its
    ///   last cell completes, so peak trace memory is bounded by the
    ///   streams with in-flight cells, not the whole grid.
    ///
    /// Each cell's replay is the same [`RecordedRun::replay`] (or
    /// [`RecordedRun::replay_with_trace`]) call the barrier plan makes, so
    /// results are bit-identical; result slots are indexed by cell, so grid
    /// order never depends on scheduling.
    fn run_pipelined(&self, workers: usize, observer: Option<CellObserver<'_>>) -> CampaignResult {
        let (cells, streams) = self.stream_plan();
        if cells.is_empty() {
            return CampaignResult::new(Vec::new(), ExecutionMode::Pipelined);
        }
        let record_work: Vec<f64> = streams.iter().map(StreamJob::record_work).collect();
        let probed_load: Vec<bool> = streams.iter().map(|job| self.probes_as_load(job)).collect();
        let mut stream_cells: Vec<Vec<usize>> = vec![Vec::new(); streams.len()];
        for (index, &(_, stream)) in cells.iter().enumerate() {
            stream_cells[stream].push(index);
        }
        let total = cells.len();
        // Half the pool (rounded up) may record while replays are pending;
        // the rest keeps the replay tail draining. See the policy note
        // above.
        let obtain_cap = workers.div_ceil(2).max(1);
        let state = Mutex::new(SchedState {
            obtain_queue: (0..streams.len()).collect(),
            replay_queue: Vec::new(),
            obtains_inflight: 0,
            recorded: streams.iter().map(|_| None).collect(),
            trace_records: vec![0.0; streams.len()],
            remaining_cells: stream_cells.iter().map(Vec::len).collect(),
            results: (0..total).map(|_| None).collect(),
            done_cells: 0,
            events: Vec::new(),
            model: CostModel::default(),
            aborted: false,
        });
        let ready = Condvar::new();
        let plan = SchedPlan {
            cells: &cells,
            streams: &streams,
            record_work: &record_work,
            probed_load: &probed_load,
            stream_cells: &stream_cells,
            obtain_cap,
            total,
            observer,
        };
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.scheduler_worker(&state, &ready, &plan));
            }
        });
        let state = state
            .into_inner()
            .expect("no worker panicked past the scope");
        let runs = state
            .results
            .into_iter()
            .map(|slot| slot.expect("the scheduler fills every cell slot exactly once"))
            .collect();
        CampaignResult {
            runs,
            executed: ExecutionMode::Pipelined,
            events: state.events,
        }
    }

    /// One worker of the pipelined scheduler: loop picking tasks under the
    /// lock, executing them unlocked, and folding results + measured rates
    /// back in. Exits when every cell is done (or a sibling aborted).
    fn scheduler_worker(&self, state: &Mutex<SchedState>, ready: &Condvar, plan: &SchedPlan<'_>) {
        // On panic (unlocked task execution), wake and release the siblings
        // so the scope join can propagate instead of deadlocking on the
        // condvar.
        let _abort = AbortGuard { state, ready };
        let mut guard = state.lock().expect("scheduler state never poisoned");
        loop {
            if guard.aborted || guard.done_cells == plan.total {
                break;
            }
            let take_obtain = !guard.obtain_queue.is_empty()
                && (guard.obtains_inflight < plan.obtain_cap || guard.replay_queue.is_empty());
            if take_obtain {
                let stream = {
                    let SchedState {
                        obtain_queue,
                        model,
                        ..
                    } = &mut *guard;
                    lpt_pop(obtain_queue, |stream| {
                        let app = plan.streams[stream].app;
                        let work = plan.record_work[stream];
                        if plan.probed_load[stream] {
                            model.load_cost(app, work)
                        } else {
                            model.record_cost(app, work)
                        }
                    })
                };
                guard.obtains_inflight += 1;
                let as_load = plan.probed_load[stream];
                guard.events.push(if as_load {
                    SchedulerEvent::LoadStarted { stream }
                } else {
                    SchedulerEvent::RecordStarted { stream }
                });
                drop(guard);

                let started = Instant::now();
                let (recorded, served) = self.obtain(&plan.streams[stream]);
                let elapsed = started.elapsed().as_secs_f64();

                guard = state.lock().expect("scheduler state never poisoned");
                let app = plan.streams[stream].app;
                if as_load {
                    guard
                        .model
                        .observe_load(app, plan.record_work[stream], elapsed);
                    guard.events.push(SchedulerEvent::LoadFinished {
                        stream,
                        hit: served != FlightServed::Recorded,
                    });
                } else {
                    guard
                        .model
                        .observe_record(app, plan.record_work[stream], elapsed);
                    // A planned Record that was served without recording —
                    // another campaign's in-flight recording, or a store
                    // entry published since the plan-time probe — logs as
                    // deduplicated, so RecordFinished counts stay an exact
                    // census of recordings actually executed.
                    guard.events.push(if served == FlightServed::Recorded {
                        SchedulerEvent::RecordFinished { stream }
                    } else {
                        SchedulerEvent::RecordDeduped { stream }
                    });
                }
                guard.trace_records[stream] = recorded.trace().len() as f64;
                guard.recorded[stream] = Some(recorded);
                guard.obtains_inflight -= 1;
                guard
                    .replay_queue
                    .extend_from_slice(&plan.stream_cells[stream]);
                ready.notify_all();
                continue;
            }
            if !guard.replay_queue.is_empty() {
                let cell_index = {
                    let SchedState {
                        replay_queue,
                        model,
                        trace_records,
                        ..
                    } = &mut *guard;
                    lpt_pop(replay_queue, |index| {
                        let (cell, stream) = plan.cells[index];
                        model.replay_cost(cell.app, cell.policy, trace_records[stream])
                    })
                };
                let (cell, stream) = plan.cells[cell_index];
                let recorded = Arc::clone(
                    guard.recorded[stream]
                        .as_ref()
                        .expect("replay tasks only queue after their stream is obtained"),
                );
                guard
                    .events
                    .push(SchedulerEvent::ReplayStarted { cell: cell_index });
                drop(guard);

                let started = Instant::now();
                let result = if self.record_trace {
                    recorded.replay_with_trace(cell.policy)
                } else {
                    recorded.replay(cell.policy)
                };
                let elapsed = started.elapsed().as_secs_f64();
                drop(recorded);
                let run = CampaignRun { cell, result };
                // Completion callbacks run unlocked, from the worker that
                // finished the cell — a slow observer (the service writing a
                // frame to a slow client) never stalls the scheduler.
                if let Some(observer) = plan.observer {
                    observer(cell_index, &run);
                }

                guard = state.lock().expect("scheduler state never poisoned");
                let records = guard.trace_records[stream];
                guard
                    .model
                    .observe_replay(cell.app, cell.policy, records, elapsed);
                guard
                    .events
                    .push(SchedulerEvent::ReplayFinished { cell: cell_index });
                guard.results[cell_index] = Some(run);
                guard.done_cells += 1;
                guard.remaining_cells[stream] -= 1;
                if guard.remaining_cells[stream] == 0 {
                    guard.recorded[stream] = None;
                    guard.events.push(SchedulerEvent::StreamRetired { stream });
                }
                ready.notify_all();
                continue;
            }
            // Both queues empty but obtains are in flight: their completion
            // will refill the replay queue. Sleep until state changes.
            guard = ready.wait(guard).expect("scheduler state never poisoned");
        }
        drop(guard);
        ready.notify_all();
    }

    /// The gang pipeline count the streaming plan actually runs (see
    /// [`Campaign::streaming_pipelines`]): the explicit request, or — when
    /// auto — one pipeline below 4 workers and `max(2, workers / 4)` at or
    /// above, always clamped to the stream count.
    fn resolved_pipelines(&self, workers: usize, streams: usize) -> usize {
        let auto = if workers >= 4 {
            (workers / 4).max(2)
        } else {
            1
        };
        let requested = if self.pipelines == 0 {
            auto
        } else {
            self.pipelines
        };
        requested.clamp(1, streams.max(1))
    }

    /// The streaming plan: each stream's recorder and policy replayers run
    /// concurrently, sharing frozen trace chunks through a bounded channel.
    /// Streams are claimed longest-record-first by `G` **gang pipelines**
    /// ([`Campaign::resolved_pipelines`]) — each gang is one recorder
    /// thread (the gang leader) driving `max(1, workers / G − 1)` replay
    /// consumers ([`Experiment::sweep_streaming`]) — so with `G > 1` the
    /// fan-out tail of one stream overlaps the next stream's recorder
    /// across gangs, while within a gang the recorder and consumers
    /// already overlap through the channel. `G = 1` reproduces the
    /// historical sequential plan: one stream at a time, full worker
    /// budget. Per-stream statistics never depend on the consumer count or
    /// the gang count, so results stay bit-identical in every
    /// configuration.
    ///
    /// With a trace store attached, a stream whose recording is stored skips
    /// its record phase: the loaded trace is **re-broadcast** through the
    /// same bounded chunk channel via [`grasp_cachesim::LlcTrace::stream_into`]
    /// ([`RecordedRun::sweep_streaming`]), so the consumer pipeline is
    /// identical and so are the statistics. A store miss records buffered
    /// (so the stream can be published) and then re-broadcasts it the same
    /// way — the cold run trades record/replay overlap for warm runs that
    /// skip recording altogether.
    fn run_streaming(&self, threads: usize) -> CampaignResult {
        let (cells, streams) = self.stream_plan();
        if cells.is_empty() {
            return CampaignResult::new(Vec::new(), ExecutionMode::Streaming);
        }
        let gangs = self.resolved_pipelines(threads, streams.len());
        let consumers = (threads / gangs).saturating_sub(1).max(1);
        let record_work: Vec<f64> = streams.iter().map(StreamJob::record_work).collect();
        let probed_load: Vec<bool> = streams.iter().map(|job| self.probes_as_load(job)).collect();

        struct StreamingState {
            /// Stream indices not yet claimed by a gang.
            queue: Vec<usize>,
            /// Per-stream policy sweeps, filled as gangs finish.
            swept: Vec<Option<Vec<RunResult>>>,
            /// The interleaving log (coarse: streaming fuses each stream's
            /// record and replays into one task).
            events: Vec<SchedulerEvent>,
            /// Online-refined obtain rates for LPT stream claiming.
            model: CostModel,
        }
        let state = Mutex::new(StreamingState {
            queue: (0..streams.len()).collect(),
            swept: streams.iter().map(|_| None).collect(),
            events: Vec::new(),
            model: CostModel::default(),
        });

        std::thread::scope(|scope| {
            for _ in 0..gangs {
                scope.spawn(|| loop {
                    let mut guard = state.lock().expect("streaming state never poisoned");
                    if guard.queue.is_empty() {
                        return;
                    }
                    let StreamingState { queue, model, .. } = &mut *guard;
                    let stream = lpt_pop(queue, |stream| {
                        let app = streams[stream].app;
                        let work = record_work[stream];
                        if probed_load[stream] {
                            model.load_cost(app, work)
                        } else {
                            model.record_cost(app, work)
                        }
                    });
                    let as_load = probed_load[stream];
                    guard.events.push(if as_load {
                        SchedulerEvent::LoadStarted { stream }
                    } else {
                        SchedulerEvent::RecordStarted { stream }
                    });
                    drop(guard);

                    let job = &streams[stream];
                    let started = Instant::now();
                    let (results, served) = if self.store.is_some() || self.flights.is_some() {
                        let (recorded, served) = self.obtain(job);
                        (recorded.sweep_streaming(&self.policies, consumers), served)
                    } else {
                        (
                            job.experiment.sweep_streaming(&self.policies, consumers),
                            FlightServed::Recorded,
                        )
                    };
                    let elapsed = started.elapsed().as_secs_f64();

                    let mut guard = state.lock().expect("streaming state never poisoned");
                    if as_load {
                        guard
                            .model
                            .observe_load(job.app, record_work[stream], elapsed);
                        guard.events.push(SchedulerEvent::LoadFinished {
                            stream,
                            hit: served != FlightServed::Recorded,
                        });
                    } else {
                        guard
                            .model
                            .observe_record(job.app, record_work[stream], elapsed);
                        guard.events.push(if served == FlightServed::Recorded {
                            SchedulerEvent::RecordFinished { stream }
                        } else {
                            SchedulerEvent::RecordDeduped { stream }
                        });
                    }
                    guard.events.push(SchedulerEvent::StreamRetired { stream });
                    guard.swept[stream] = Some(results);
                });
            }
        });

        let state = state.into_inner().expect("no gang panicked past the scope");
        let swept = state
            .swept
            .into_iter()
            .map(|sweep| sweep.expect("every stream is swept exactly once"))
            .collect();
        let runs = self.assemble_grid_order(cells, swept);
        CampaignResult {
            runs,
            executed: ExecutionMode::Streaming,
            events: state.events,
        }
    }

    /// Reassembles per-stream policy sweeps into grid-ordered runs,
    /// **moving** each `RunResult` into its cell instead of cloning (they
    /// carry per-run statistics tables). Duplicate policies in the grid
    /// resolve to the same sweep slot — a pre-pass counts slot uses so
    /// every cell before the last borrows a clone and the last takes the
    /// value.
    fn assemble_grid_order(
        &self,
        cells: Vec<(CampaignCell, usize)>,
        swept: Vec<Vec<RunResult>>,
    ) -> Vec<CampaignRun> {
        let slot_of = |cell: &CampaignCell| {
            self.policies
                .iter()
                .position(|&policy| policy == cell.policy)
                .expect("cell policies come from the campaign's policy list")
        };
        let mut uses: HashMap<(usize, usize), usize> = HashMap::new();
        for (cell, stream) in &cells {
            *uses.entry((*stream, slot_of(cell))).or_insert(0) += 1;
        }
        let mut swept: Vec<Vec<Option<RunResult>>> = swept
            .into_iter()
            .map(|sweep| sweep.into_iter().map(Some).collect())
            .collect();
        cells
            .into_iter()
            .map(|(cell, stream)| {
                let slot = slot_of(&cell);
                let remaining = uses
                    .get_mut(&(stream, slot))
                    .expect("every cell was counted");
                *remaining -= 1;
                let result = if *remaining == 0 {
                    swept[stream][slot]
                        .take()
                        .expect("each slot's last user takes the value")
                } else {
                    swept[stream][slot]
                        .as_ref()
                        .expect("earlier users only borrow the value")
                        .clone()
                };
                CampaignRun { cell, result }
            })
            .collect()
    }
}

/// A per-cell completion callback (see [`Campaign::run_with_observer`]):
/// called with the cell's grid index and its finished run, from whichever
/// worker finished it.
type CellObserver<'a> = &'a (dyn Fn(usize, &CampaignRun) + Sync);

/// The immutable plan the pipelined scheduler's workers share: the grid,
/// the task classification and the admission parameters. Splitting this
/// from [`SchedState`] keeps the mutable state (and the lock) minimal.
struct SchedPlan<'a> {
    /// Every cell with its stream index, in grid order.
    cells: &'a [(CampaignCell, usize)],
    /// The unique streams in first-seen grid order.
    streams: &'a [StreamJob],
    /// Per-stream record work estimate (see [`StreamJob::record_work`]).
    record_work: &'a [f64],
    /// Per-stream plan-time classification: `true` when the trace store
    /// probe saw an entry, making the obtain task a `Load`.
    probed_load: &'a [bool],
    /// Per-stream list of cell indices (the tasks an obtain unlocks).
    stream_cells: &'a [Vec<usize>],
    /// Maximum concurrent obtain tasks while replays are pending.
    obtain_cap: usize,
    /// Total cell count (the run is done when this many results landed).
    total: usize,
    /// Per-cell completion callback, invoked unlocked as each cell lands.
    observer: Option<CellObserver<'a>>,
}

/// The mutable state of the pipelined scheduler, shared under one mutex.
struct SchedState {
    /// Stream indices whose obtain task has not been claimed yet.
    obtain_queue: Vec<usize>,
    /// Cell indices whose stream is obtained and whose replay has not been
    /// claimed yet.
    replay_queue: Vec<usize>,
    /// Obtain tasks currently executing (admission-cap accounting).
    obtains_inflight: usize,
    /// Per-stream recording, present from obtain completion to retirement.
    recorded: Vec<Option<Arc<RecordedRun>>>,
    /// Per-stream trace record count (the replay cost driver), filled when
    /// the stream is obtained.
    trace_records: Vec<f64>,
    /// Per-stream count of cells still to finish; 0 retires the stream.
    remaining_cells: Vec<usize>,
    /// Per-cell result slots, indexed in grid order.
    results: Vec<Option<CampaignRun>>,
    /// Cells completed so far.
    done_cells: usize,
    /// The interleaving log (appended under the lock).
    events: Vec<SchedulerEvent>,
    /// Online-refined task cost rates.
    model: CostModel,
    /// Set when a worker panicked, so sleeping siblings exit instead of
    /// waiting for a notification that will never come.
    aborted: bool,
}

/// Pops the highest-cost entry of `queue` (longest-processing-time-first).
/// Costs are evaluated at pop time so rate refinements take effect on
/// already-queued tasks.
fn lpt_pop(queue: &mut Vec<usize>, cost: impl Fn(usize) -> f64) -> usize {
    let mut best = 0;
    let mut best_cost = f64::NEG_INFINITY;
    for (position, &item) in queue.iter().enumerate() {
        let item_cost = cost(item);
        if item_cost > best_cost {
            best = position;
            best_cost = item_cost;
        }
    }
    queue.swap_remove(best)
}

/// Wakes and releases the scheduler's sibling workers when the owning
/// worker unwinds, so the thread-scope join propagates the panic instead of
/// deadlocking on workers parked in [`Condvar::wait`].
struct AbortGuard<'a> {
    state: &'a Mutex<SchedState>,
    ready: &'a Condvar,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(mut guard) = self.state.lock() {
                guard.aborted = true;
            }
            self.ready.notify_all();
        }
    }
}

/// Maps `work` through `f` on up to `threads` workers, returning results in
/// input order. With one worker (or one item) the map runs inline on the
/// caller; otherwise items are pulled off a shared cursor and re-assembled by
/// index, so the output order never depends on scheduling.
fn parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    work: &[T],
    threads: usize,
    f: F,
) -> Vec<R> {
    let workers = threads.min(work.len()).max(1);
    if workers == 1 {
        return work.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let cursor = &cursor;
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work.get(index) else {
                    break;
                };
                if sender.send((index, f(item))).is_err() {
                    break;
                }
            });
        }
    });
    drop(sender);

    // Re-assemble in input order: completion order is scheduling-dependent
    // but every slot is filled exactly once.
    let mut slots: Vec<Option<R>> = (0..work.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every item completes exactly once"))
        .collect()
}

/// The results of a campaign, in deterministic grid order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    runs: Vec<CampaignRun>,
    executed: ExecutionMode,
    events: Vec<SchedulerEvent>,
}

impl CampaignResult {
    /// A result set with no scheduler log (the barrier plans).
    fn new(runs: Vec<CampaignRun>, executed: ExecutionMode) -> Self {
        Self {
            runs,
            executed,
            events: Vec::new(),
        }
    }

    /// The execution plan that actually ran — not necessarily the one
    /// requested: [`ExecutionMode::Streaming`] campaigns that also request
    /// per-cell traces ([`Campaign::recording_llc_trace`]) execute as
    /// [`ExecutionMode::Pipelined`], since streaming never materializes a
    /// trace to hand back.
    pub fn executed_mode(&self) -> ExecutionMode {
        self.executed
    }

    /// The scheduler's event log, in true interleaving order (empty for
    /// the barrier plans, which have no scheduler). The pipelined plan
    /// logs per-task events; the streaming plan logs per-stream events
    /// (record and replays are fused into one gang task there).
    pub fn scheduler_events(&self) -> &[SchedulerEvent] {
        &self.events
    }

    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` when the campaign had no cells.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates the results in grid order.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignRun> {
        self.runs.iter()
    }

    /// Looks up one cell's result.
    pub fn get(
        &self,
        dataset: impl Into<DatasetId>,
        technique: TechniqueKind,
        app: AppKind,
        policy: PolicyKind,
    ) -> Option<&RunResult> {
        let cell = CampaignCell {
            dataset: dataset.into(),
            technique,
            app,
            policy,
        };
        self.runs
            .iter()
            .find(|run| run.cell == cell)
            .map(|run| &run.result)
    }

    /// Consumes the result set into its grid-ordered runs.
    pub fn into_runs(self) -> Vec<CampaignRun> {
        self.runs
    }
}

impl IntoIterator for CampaignResult {
    type Item = CampaignRun;
    type IntoIter = std::vec::IntoIter<CampaignRun>;

    fn into_iter(self) -> Self::IntoIter {
        self.runs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
    }

    #[test]
    fn results_arrive_in_grid_order() {
        let campaign = tiny_campaign().threads(4);
        let cells = campaign.cells();
        let results = campaign.run();
        assert_eq!(results.len(), cells.len());
        for (expected, run) in cells.iter().zip(results.iter()) {
            assert_eq!(expected, &run.cell);
        }
    }

    #[test]
    fn lookup_finds_cells() {
        let results = tiny_campaign().threads(2).run();
        let rrip = results
            .get(
                DatasetKind::Twitter,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .expect("cell exists");
        assert!(rrip.llc_accesses() > 0);
        assert!(results
            .get(
                DatasetKind::Kron,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .is_none());
    }

    #[test]
    fn empty_campaign_is_empty() {
        let results = Campaign::new(Scale::Tiny).run();
        assert!(results.is_empty());
        assert_eq!(results.len(), 0);
    }

    #[test]
    fn replay_and_direct_plans_agree_bit_for_bit() {
        let replayed = tiny_campaign().threads(4).run();
        let direct = tiny_campaign().direct().threads(4).run();
        assert_eq!(replayed.len(), direct.len());
        for (a, b) in replayed.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
            assert_eq!(a.result.app.values, b.result.app.values, "{:?}", a.cell);
            assert!((a.result.cycles - b.result.cycles).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_plan_agrees_with_direct_bit_for_bit() {
        let streamed = tiny_campaign().streaming().threads(4).run();
        let direct = tiny_campaign().direct().threads(4).run();
        assert_eq!(streamed.len(), direct.len());
        for (a, b) in streamed.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
            assert_eq!(a.result.app.values, b.result.app.values, "{:?}", a.cell);
            assert!((a.result.cycles - b.result.cycles).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_with_trace_request_falls_back_to_pipelined() {
        let streamed = tiny_campaign().streaming().recording_llc_trace().run();
        assert_eq!(
            streamed.executed_mode(),
            ExecutionMode::Pipelined,
            "streaming cannot hand back traces, so the run must detour"
        );
        for run in streamed.iter() {
            assert!(
                run.result.llc_trace.is_some(),
                "requested traces must still be delivered: {:?}",
                run.cell
            );
        }
        // Without the trace request, streaming runs as requested.
        let streamed = tiny_campaign().streaming().run();
        assert_eq!(streamed.executed_mode(), ExecutionMode::Streaming);
    }

    #[test]
    fn pipelined_plan_agrees_with_direct_bit_for_bit() {
        let pipelined = tiny_campaign().threads(4).run();
        assert_eq!(pipelined.executed_mode(), ExecutionMode::Pipelined);
        let direct = tiny_campaign().direct().threads(4).run();
        assert_eq!(direct.executed_mode(), ExecutionMode::Direct);
        assert_eq!(pipelined.len(), direct.len());
        for (a, b) in pipelined.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
            assert_eq!(a.result.app.values, b.result.app.values, "{:?}", a.cell);
            assert!((a.result.cycles - b.result.cycles).abs() < 1e-12);
        }
    }

    #[test]
    fn pipelined_event_log_covers_every_task() {
        let campaign = tiny_campaign().threads(3);
        let streams = campaign.stream_plan().1.len();
        let cells = campaign.cells().len();
        let results = campaign.run();
        let events = results.scheduler_events();
        let count =
            |matcher: fn(&SchedulerEvent) -> bool| events.iter().filter(|e| matcher(e)).count();
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::RecordStarted { .. })),
            streams
        );
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::RecordFinished { .. })),
            streams
        );
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::StreamRetired { .. })),
            streams
        );
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::ReplayStarted { .. })),
            cells
        );
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::ReplayFinished { .. })),
            cells
        );
        // No store attached: nothing may classify as a load.
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::LoadStarted { .. })),
            0
        );
        // Barrier plans have no scheduler, hence no log.
        assert!(tiny_campaign().direct().run().scheduler_events().is_empty());
        assert!(tiny_campaign()
            .execution(ExecutionMode::Replay)
            .run()
            .scheduler_events()
            .is_empty());
    }

    #[test]
    fn duplicate_policies_assemble_correctly() {
        // Duplicate grid policies resolve to the same sweep slot; the
        // move-based assembly must serve every duplicate cell (clones for
        // all but the last user).
        let campaign = Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Rrip, PolicyKind::Rrip, PolicyKind::Grasp]);
        for mode in [ExecutionMode::Pipelined, ExecutionMode::Streaming] {
            let results = campaign.clone().execution(mode).threads(2).run();
            assert_eq!(results.len(), 3, "{mode:?}");
            let runs: Vec<_> = results.iter().collect();
            assert_eq!(runs[0].result.stats, runs[1].result.stats, "{mode:?}");
        }
    }

    #[test]
    fn explicit_trace_codec_overrides_the_environment_default() {
        // The builder wins over GRASP_TRACE_CODEC; the resolved codec lands
        // in every stream's store key (and thereby the entry file name).
        let campaign = tiny_campaign().trace_codec(Codec::Raw);
        assert_eq!(campaign.resolved_codec(), Codec::Raw);
        let (_, streams) = campaign.stream_plan();
        assert!(streams
            .iter()
            .all(|job| campaign.store_key(job).codec == Codec::Raw));
        let dv = tiny_campaign().trace_codec(Codec::DeltaVarint);
        let (_, streams) = dv.stream_plan();
        assert!(streams
            .iter()
            .all(|job| dv.store_key(job).file_name().ends_with(".v2.trace")));
    }

    #[test]
    fn degenerate_thread_counts_are_clamped() {
        // Zero resolves to available parallelism and absurd requests fall
        // back to it; every budget is capped at the cell count. Moderate
        // oversubscription is honoured (so multi-worker scheduling is
        // exercised even on single-CPU machines).
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        let zero = tiny_campaign().threads(0);
        assert_eq!(zero.worker_budget(8), available.min(8));
        let oversized = tiny_campaign().threads(1_000_000);
        assert_eq!(oversized.worker_budget(2), available.min(2));
        assert_eq!(oversized.worker_budget(0), 1);
        assert_eq!(
            tiny_campaign().threads(4).worker_budget(8),
            4,
            "an explicit modest request must reach the pool as-is"
        );
        let runs = oversized.run();
        assert_eq!(runs.len(), 2);
        let zero_runs = tiny_campaign().threads(0).run();
        assert_eq!(zero_runs.len(), 2);
        for (a, b) in runs.iter().zip(zero_runs.iter()) {
            assert_eq!(a.result.stats, b.result.stats);
        }
    }

    #[test]
    fn execution_mode_labels_round_trip() {
        for mode in [
            ExecutionMode::Pipelined,
            ExecutionMode::Replay,
            ExecutionMode::Direct,
            ExecutionMode::Streaming,
        ] {
            assert_eq!(ExecutionMode::from_label(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(ExecutionMode::from_label("warp"), None);
        assert_eq!(ExecutionMode::from_label("Pipelined"), None);
    }

    #[test]
    fn spec_round_trips_through_campaign_and_json() {
        let campaign = tiny_campaign()
            .streaming()
            .streaming_pipelines(2)
            .threads(3)
            .trace_codec(Codec::Raw);
        let spec = campaign.to_spec();
        let rebuilt = Campaign::from_spec(&spec).expect("spec rebuilds");
        assert_eq!(rebuilt.to_spec(), spec, "from_spec/to_spec round-trip");
        assert_eq!(rebuilt.cells(), campaign.cells());
        let decoded = CampaignSpec::from_json(&spec.to_json()).expect("wire round-trip");
        assert_eq!(decoded, spec);
    }

    #[test]
    fn cells_delegate_to_the_spec_grid() {
        let campaign = tiny_campaign();
        assert_eq!(campaign.cells(), campaign.to_spec().cells());
    }

    #[test]
    fn observer_sees_every_cell_exactly_once_in_every_plan() {
        for mode in [
            ExecutionMode::Pipelined,
            ExecutionMode::Replay,
            ExecutionMode::Direct,
            ExecutionMode::Streaming,
        ] {
            let campaign = tiny_campaign().execution(mode).threads(3);
            let cells = campaign.cells();
            let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            let results = campaign.run_with_observer(&|index, run| {
                assert_eq!(cells[index], run.cell, "{mode:?}");
                seen.lock().unwrap().push(index);
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..results.len()).collect();
            assert_eq!(seen, expected, "{mode:?}");
        }
    }

    #[test]
    fn shared_registry_collapses_concurrent_recordings() {
        let dir =
            std::env::temp_dir().join(format!("grasp-campaign-flight-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(TraceStore::open(&dir).expect("store opens"));
        let registry = Arc::new(FlightRegistry::new());
        let campaign = Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank, AppKind::Sssp])
            .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
            .threads(2)
            .trace_codec(Codec::DeltaVarint)
            .with_trace_store(Arc::clone(&store))
            .with_single_flight(Arc::clone(&registry));
        let streams = campaign.stream_plan().1.len();
        assert_eq!(streams, 2);

        let (a, b) = std::thread::scope(|scope| {
            let ca = campaign.clone();
            let cb = campaign.clone();
            let ha = scope.spawn(move || ca.run());
            let hb = scope.spawn(move || cb.run());
            (ha.join().unwrap(), hb.join().unwrap())
        });

        // The single-flight guarantee: each unique stream was recorded by
        // exactly one of the two campaigns, whichever interleaving occurred.
        assert_eq!(registry.stats().recorded as usize, streams);
        let events: Vec<&SchedulerEvent> = a
            .scheduler_events()
            .iter()
            .chain(b.scheduler_events())
            .collect();
        let count =
            |matcher: fn(&SchedulerEvent) -> bool| events.iter().filter(|e| matcher(e)).count();
        assert_eq!(
            count(|e| matches!(e, SchedulerEvent::RecordFinished { .. })),
            streams,
            "RecordFinished is an exact census of executed recordings"
        );
        // Every other obtain was deduplicated (in-flight attach or a store
        // entry published after the plan-time probe) or served as a load.
        assert_eq!(
            count(|e| matches!(
                e,
                SchedulerEvent::RecordFinished { .. }
                    | SchedulerEvent::RecordDeduped { .. }
                    | SchedulerEvent::LoadFinished { .. }
            )),
            2 * streams
        );
        // Shared recordings replay bit-identically to fresh ones.
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.cell, rb.cell);
            assert_eq!(ra.result.stats, rb.result.stats, "{:?}", ra.cell);
        }
        assert_eq!(store.stats().corrupt, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
