//! Parallel experiment campaigns: a figure's full grid in one call.
//!
//! Every figure of the evaluation is a grid of dataset × reordering ×
//! application × LLC-policy simulations. The bench harness used to walk that
//! grid serially, rebuilding and re-reordering the dataset for every cell. A
//! [`Campaign`] expresses the whole grid declaratively and runs it on a
//! thread pool:
//!
//! * each dataset is **generated once**,
//! * each (dataset, technique, traversal-direction) graph is **reordered
//!   once** and shared across cells via `Arc<Csr>`,
//! * the remaining (app, policy) fan-out runs on worker threads, and
//! * results are collected **deterministically in grid order** regardless of
//!   thread count or scheduling.
//!
//! Per-cell statistics are bit-identical to running
//! [`Experiment::run`] serially: every cell simulates an independent
//! hierarchy, so parallelism only changes wall-clock time.
//!
//! ```no_run
//! use grasp_core::campaign::Campaign;
//! use grasp_core::datasets::{DatasetKind, Scale};
//! use grasp_core::policy::PolicyKind;
//! use grasp_analytics::apps::AppKind;
//!
//! let results = Campaign::new(Scale::Small)
//!     .datasets(&DatasetKind::HIGH_SKEW)
//!     .apps(&AppKind::ALL)
//!     .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
//!     .run();
//! for run in results.iter() {
//!     println!("{} {} {}: {} LLC misses",
//!         run.cell.dataset, run.cell.app, run.cell.policy, run.result.llc_misses());
//! }
//! ```

use crate::datasets::{DatasetKind, Scale};
use crate::experiment::{Experiment, RunResult};
use crate::policy::PolicyKind;
use grasp_analytics::apps::AppKind;
use grasp_cachesim::config::HierarchyConfig;
use grasp_graph::types::Direction;
use grasp_graph::Csr;
use grasp_reorder::TechniqueKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// One coordinate of a campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignCell {
    /// Dataset the cell simulates.
    pub dataset: DatasetKind,
    /// Reordering technique applied to the dataset.
    pub technique: TechniqueKind,
    /// Application driving the access stream.
    pub app: AppKind,
    /// LLC replacement policy under evaluation.
    pub policy: PolicyKind,
}

/// The completed simulation of one [`CampaignCell`].
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The grid coordinate.
    pub cell: CampaignCell,
    /// The simulation outcome (identical to a serial [`Experiment::run`]).
    pub result: RunResult,
}

/// A declarative dataset × technique × app × policy grid.
#[derive(Debug, Clone)]
pub struct Campaign {
    scale: Scale,
    datasets: Vec<DatasetKind>,
    techniques: Vec<TechniqueKind>,
    apps: Vec<AppKind>,
    policies: Vec<PolicyKind>,
    hierarchy: Option<HierarchyConfig>,
    record_trace: bool,
    threads: usize,
}

impl Campaign {
    /// Creates an empty campaign at the given scale.
    ///
    /// Defaults: the DBG reordering of the headline figures, the
    /// scale-appropriate hierarchy, no trace recording, and one worker per
    /// available CPU.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            datasets: Vec::new(),
            techniques: vec![TechniqueKind::Dbg],
            apps: Vec::new(),
            policies: Vec::new(),
            hierarchy: None,
            record_trace: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// Sets the datasets of the grid.
    #[must_use]
    pub fn datasets(mut self, datasets: &[DatasetKind]) -> Self {
        self.datasets = datasets.to_vec();
        self
    }

    /// Sets the reordering techniques of the grid (default: DBG only).
    #[must_use]
    pub fn techniques(mut self, techniques: &[TechniqueKind]) -> Self {
        self.techniques = techniques.to_vec();
        self
    }

    /// Sets the applications of the grid.
    #[must_use]
    pub fn apps(mut self, apps: &[AppKind]) -> Self {
        self.apps = apps.to_vec();
        self
    }

    /// Sets the LLC policies of the grid.
    #[must_use]
    pub fn policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        self
    }

    /// Overrides the hierarchy configuration (default: `scale.hierarchy()`).
    #[must_use]
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Requests LLC demand-trace recording for every cell (the OPT study).
    #[must_use]
    pub fn recording_llc_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the worker-thread count (`1` runs inline on the caller).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The grid coordinates in deterministic grid order: datasets outermost,
    /// then techniques, applications and policies.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(
            self.datasets.len() * self.techniques.len() * self.apps.len() * self.policies.len(),
        );
        for &dataset in &self.datasets {
            for &technique in &self.techniques {
                for &app in &self.apps {
                    for &policy in &self.policies {
                        cells.push(CampaignCell {
                            dataset,
                            technique,
                            app,
                            policy,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Builds every cell's experiment, sharing each reordered graph.
    fn prepare(&self) -> Vec<(CampaignCell, Experiment)> {
        let hierarchy = self.hierarchy.unwrap_or_else(|| self.scale.hierarchy());
        // Generate each dataset once.
        let mut base: HashMap<DatasetKind, Arc<Csr>> = HashMap::new();
        for &dataset in &self.datasets {
            base.entry(dataset)
                .or_insert_with(|| Arc::new(dataset.build(self.scale).graph));
        }
        // Reorder once per (dataset, technique, hotness direction) — the
        // direction is a property of the application, but most applications
        // share one, so the permutation work collapses across the app axis.
        let mut reordered: HashMap<(DatasetKind, TechniqueKind, Direction), Arc<Csr>> =
            HashMap::new();
        let mut prepared = Vec::new();
        for cell in self.cells() {
            let direction = cell.app.hotness_direction();
            let graph = reordered
                .entry((cell.dataset, cell.technique, direction))
                .or_insert_with(|| {
                    let source = Arc::clone(&base[&cell.dataset]);
                    let technique = cell.technique.instantiate();
                    let perm = technique.compute(&source, direction);
                    Arc::new(grasp_reorder::relabel(&source, &perm))
                });
            let mut experiment =
                Experiment::shared(Arc::clone(graph), cell.app).with_hierarchy(hierarchy);
            if self.record_trace {
                experiment = experiment.recording_llc_trace();
            }
            prepared.push((cell, experiment));
        }
        prepared
    }

    /// Runs the campaign and returns the results in grid order.
    pub fn run(&self) -> CampaignResult {
        let work = self.prepare();
        let cell_count = work.len();
        let workers = self.threads.min(cell_count).max(1);

        if workers == 1 {
            let runs = work
                .into_iter()
                .map(|(cell, experiment)| CampaignRun {
                    cell,
                    result: experiment.run(cell.policy),
                })
                .collect();
            return CampaignResult { runs };
        }

        let cursor = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, CampaignRun)>();
        let work = &work;
        let cursor = &cursor;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let sender = sender.clone();
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((cell, experiment)) = work.get(index) else {
                        break;
                    };
                    let run = CampaignRun {
                        cell: *cell,
                        result: experiment.run(cell.policy),
                    };
                    if sender.send((index, run)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(sender);

        // Re-assemble in grid order: completion order is scheduling-dependent
        // but every slot is filled exactly once.
        let mut slots: Vec<Option<CampaignRun>> = (0..cell_count).map(|_| None).collect();
        for (index, run) in receiver {
            slots[index] = Some(run);
        }
        let runs = slots
            .into_iter()
            .map(|slot| slot.expect("every cell completes exactly once"))
            .collect();
        CampaignResult { runs }
    }
}

/// The results of a campaign, in deterministic grid order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    runs: Vec<CampaignRun>,
}

impl CampaignResult {
    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` when the campaign had no cells.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates the results in grid order.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignRun> {
        self.runs.iter()
    }

    /// Looks up one cell's result.
    pub fn get(
        &self,
        dataset: DatasetKind,
        technique: TechniqueKind,
        app: AppKind,
        policy: PolicyKind,
    ) -> Option<&RunResult> {
        let cell = CampaignCell {
            dataset,
            technique,
            app,
            policy,
        };
        self.runs
            .iter()
            .find(|run| run.cell == cell)
            .map(|run| &run.result)
    }

    /// Consumes the result set into its grid-ordered runs.
    pub fn into_runs(self) -> Vec<CampaignRun> {
        self.runs
    }
}

impl IntoIterator for CampaignResult {
    type Item = CampaignRun;
    type IntoIter = std::vec::IntoIter<CampaignRun>;

    fn into_iter(self) -> Self::IntoIter {
        self.runs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
    }

    #[test]
    fn results_arrive_in_grid_order() {
        let campaign = tiny_campaign().threads(4);
        let cells = campaign.cells();
        let results = campaign.run();
        assert_eq!(results.len(), cells.len());
        for (expected, run) in cells.iter().zip(results.iter()) {
            assert_eq!(expected, &run.cell);
        }
    }

    #[test]
    fn lookup_finds_cells() {
        let results = tiny_campaign().threads(2).run();
        let rrip = results
            .get(
                DatasetKind::Twitter,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .expect("cell exists");
        assert!(rrip.llc_accesses() > 0);
        assert!(results
            .get(
                DatasetKind::Kron,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .is_none());
    }

    #[test]
    fn empty_campaign_is_empty() {
        let results = Campaign::new(Scale::Tiny).run();
        assert!(results.is_empty());
        assert_eq!(results.len(), 0);
    }
}
