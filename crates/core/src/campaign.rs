//! Parallel experiment campaigns: a figure's full grid in one call.
//!
//! Every figure of the evaluation is a grid of dataset × reordering ×
//! application × LLC-policy simulations. The bench harness used to walk that
//! grid serially, rebuilding and re-reordering the dataset for every cell. A
//! [`Campaign`] expresses the whole grid declaratively and runs it on a
//! thread pool according to an execution plan:
//!
//! * each dataset is **generated once**,
//! * each (dataset, technique, traversal-direction) graph is **reordered
//!   once** and shared across cells via `Arc<Csr>`,
//! * in the default [`ExecutionMode::Replay`] plan, each
//!   (dataset, technique, application) cell is **executed once** — the
//!   application runs through the policy-independent upper levels and the
//!   post-L2 stream is recorded ([`Experiment::record`]) — and the policy
//!   axis is served by **replaying** the recorded stream, so an N-policy
//!   sweep pays the application and L1/L2 cost once instead of N times,
//! * both the record jobs and the replay jobs fan out on worker threads, and
//! * results are collected **deterministically in grid order** regardless of
//!   mode, thread count or scheduling.
//!
//! Per-cell statistics are bit-identical to running [`Experiment::run`]
//! serially — in replay mode because the recorded stream is replayed through
//! the same LLC-stage code the direct path simulates (pinned by
//! `tests/replay_parity.rs`). [`ExecutionMode::Direct`] keeps the original
//! run-every-cell plan as a fallback for workloads where recording is
//! undesirable (e.g. single-policy grids dominated by trace volume).
//!
//! ```no_run
//! use grasp_core::campaign::Campaign;
//! use grasp_core::datasets::{DatasetKind, Scale};
//! use grasp_core::policy::PolicyKind;
//! use grasp_analytics::apps::AppKind;
//!
//! let results = Campaign::new(Scale::Small)
//!     .datasets(&DatasetKind::HIGH_SKEW)
//!     .apps(&AppKind::ALL)
//!     .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
//!     .run();
//! for run in results.iter() {
//!     println!("{} {} {}: {} LLC misses",
//!         run.cell.dataset, run.cell.app, run.cell.policy, run.result.llc_misses());
//! }
//! ```

use crate::datasets::{DatasetKind, Scale};
use crate::experiment::{Experiment, RecordedRun, RunResult};
use crate::policy::PolicyKind;
use crate::trace_store::{codec_from_env, TraceStore, TraceStoreKey};
use grasp_analytics::apps::AppKind;
use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::Codec;
use grasp_graph::types::Direction;
use grasp_graph::Csr;
use grasp_reorder::TechniqueKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// How a campaign turns its grid into simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Record each (dataset, technique, application) stream once, replay it
    /// under every policy of the grid (the default: several times faster for
    /// multi-policy sweeps, bit-identical results).
    #[default]
    Replay,
    /// Run every cell through the full hierarchy independently (the original
    /// plan; no traces are kept alive beyond a cell).
    Direct,
    /// Stream each (dataset, technique, application) cell: the recording run
    /// and the policy replays execute **concurrently**, sharing frozen trace
    /// chunks through a bounded channel
    /// ([`Experiment::sweep_streaming`]). The record phase's wall-clock is
    /// overlapped instead of serialized against the fan-out, and the peak
    /// trace footprint per cell is channel-depth × chunk-size instead of the
    /// whole stream. Streams are processed one at a time with the full
    /// worker budget; results stay bit-identical to the other plans.
    /// Campaigns that request per-cell traces
    /// ([`Campaign::recording_llc_trace`]) fall back to [`Replay`], since
    /// streaming never materializes a trace to hand back.
    Streaming,
}

/// One coordinate of a campaign grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CampaignCell {
    /// Dataset the cell simulates.
    pub dataset: DatasetKind,
    /// Reordering technique applied to the dataset.
    pub technique: TechniqueKind,
    /// Application driving the access stream.
    pub app: AppKind,
    /// LLC replacement policy under evaluation.
    pub policy: PolicyKind,
}

/// The completed simulation of one [`CampaignCell`].
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The grid coordinate.
    pub cell: CampaignCell,
    /// The simulation outcome (identical to a serial [`Experiment::run`]).
    pub result: RunResult,
}

/// One unique (dataset, technique, app) stream of a campaign grid: the
/// prepared experiment plus the grid identity the trace store keys it by.
#[derive(Debug, Clone)]
struct StreamJob {
    dataset: DatasetKind,
    technique: TechniqueKind,
    app: AppKind,
    experiment: Experiment,
}

/// A declarative dataset × technique × app × policy grid.
#[derive(Debug, Clone)]
pub struct Campaign {
    scale: Scale,
    datasets: Vec<DatasetKind>,
    techniques: Vec<TechniqueKind>,
    apps: Vec<AppKind>,
    policies: Vec<PolicyKind>,
    hierarchy: Option<HierarchyConfig>,
    record_trace: bool,
    mode: ExecutionMode,
    threads: usize,
    store: Option<Arc<TraceStore>>,
    codec: Option<Codec>,
}

impl Campaign {
    /// Creates an empty campaign at the given scale.
    ///
    /// Defaults: the DBG reordering of the headline figures, the
    /// scale-appropriate hierarchy, no trace recording, the record/replay
    /// execution plan, and one worker per available CPU.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            datasets: Vec::new(),
            techniques: vec![TechniqueKind::Dbg],
            apps: Vec::new(),
            policies: Vec::new(),
            hierarchy: None,
            record_trace: false,
            mode: ExecutionMode::default(),
            threads: 0, // auto: resolved to available_parallelism at run time
            store: None,
            codec: None, // resolved from GRASP_TRACE_CODEC (default delta-varint)
        }
    }

    /// Sets the datasets of the grid.
    #[must_use]
    pub fn datasets(mut self, datasets: &[DatasetKind]) -> Self {
        self.datasets = datasets.to_vec();
        self
    }

    /// Sets the reordering techniques of the grid (default: DBG only).
    #[must_use]
    pub fn techniques(mut self, techniques: &[TechniqueKind]) -> Self {
        self.techniques = techniques.to_vec();
        self
    }

    /// Sets the applications of the grid.
    #[must_use]
    pub fn apps(mut self, apps: &[AppKind]) -> Self {
        self.apps = apps.to_vec();
        self
    }

    /// Sets the LLC policies of the grid.
    #[must_use]
    pub fn policies(mut self, policies: &[PolicyKind]) -> Self {
        self.policies = policies.to_vec();
        self
    }

    /// Overrides the hierarchy configuration (default: `scale.hierarchy()`).
    #[must_use]
    pub fn hierarchy(mut self, hierarchy: HierarchyConfig) -> Self {
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Requests an LLC trace in every cell's [`RunResult`] (the OPT study).
    #[must_use]
    pub fn recording_llc_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Attaches a persistent trace store. Streams whose recording is already
    /// in the store **skip the record phase entirely** — the persisted
    /// stream, application output and instruction estimate are loaded and
    /// fanned out across the policy grid exactly like a fresh recording
    /// (bit-identical results; pinned by `tests/trace_store.rs`). Streams
    /// the store misses are recorded as usual and atomically published for
    /// the next run. Corrupt entries count as misses and are overwritten.
    #[must_use]
    pub fn with_trace_store(mut self, store: Arc<TraceStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches the store named by the `GRASP_TRACE_STORE` environment
    /// variable, when set (no-op otherwise).
    #[must_use]
    pub fn trace_store_from_env(mut self) -> Self {
        if let Some(store) = TraceStore::from_env() {
            self.store = Some(Arc::new(store));
        }
        self
    }

    /// The attached trace store, if any (its [`TraceStore::stats`] report
    /// tells how many record phases the run skipped).
    pub fn trace_store(&self) -> Option<&Arc<TraceStore>> {
        self.store.as_ref()
    }

    /// Selects the [`Codec`] newly recorded streams are **published** with
    /// (default: the `GRASP_TRACE_CODEC` environment variable, falling back
    /// to [`Codec::DeltaVarint`]). Loads are codec-agnostic — an entry in
    /// any codec serves a hit — so changing this never invalidates a store.
    #[must_use]
    pub fn trace_codec(mut self, codec: Codec) -> Self {
        self.codec = Some(codec);
        self
    }

    /// The publication codec a run actually uses (see
    /// [`Campaign::trace_codec`]).
    fn resolved_codec(&self) -> Codec {
        self.codec.unwrap_or_else(codec_from_env)
    }

    /// Selects the execution plan (default: [`ExecutionMode::Replay`]).
    #[must_use]
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Shorthand for selecting the direct (run-every-cell) plan.
    #[must_use]
    pub fn direct(self) -> Self {
        self.execution(ExecutionMode::Direct)
    }

    /// Shorthand for selecting the streaming (overlapped record/replay)
    /// plan.
    #[must_use]
    pub fn streaming(self) -> Self {
        self.execution(ExecutionMode::Streaming)
    }

    /// Sets the worker-thread count. `0` (the default) means one worker per
    /// available CPU; degenerate requests (zero, or absurdly many workers)
    /// are clamped at run time to `available_parallelism`, and every budget
    /// is capped at the campaign's cell count — a degenerate size never
    /// reaches the pool. Modest oversubscription (up to 8× the CPU count)
    /// is honoured as requested, so multi-worker scheduling stays
    /// exercisable on small machines.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The worker budget a run actually uses (see [`Campaign::threads`]).
    fn worker_budget(&self, jobs: usize) -> usize {
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        let sane_limit = available.saturating_mul(8);
        let requested = match self.threads {
            0 => available,
            oversized if oversized > sane_limit => available,
            explicit => explicit,
        };
        requested.min(jobs.max(1)).max(1)
    }

    /// The grid coordinates in deterministic grid order: datasets outermost,
    /// then techniques, applications and policies.
    pub fn cells(&self) -> Vec<CampaignCell> {
        let mut cells = Vec::with_capacity(
            self.datasets.len() * self.techniques.len() * self.apps.len() * self.policies.len(),
        );
        for &dataset in &self.datasets {
            for &technique in &self.techniques {
                for &app in &self.apps {
                    for &policy in &self.policies {
                        cells.push(CampaignCell {
                            dataset,
                            technique,
                            app,
                            policy,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Runs the campaign under its execution plan and returns the results in
    /// grid order.
    pub fn run(&self) -> CampaignResult {
        // Pin the publication codec up front when a store is attached:
        // store keys are built per stream job (possibly on worker threads),
        // and the environment should be consulted — and a bad value warned
        // about — exactly once per run, not once per stream.
        let pinned;
        let this = if self.codec.is_none() && self.store.is_some() {
            pinned = self.clone().trace_codec(codec_from_env());
            &pinned
        } else {
            self
        };
        let budget = this.worker_budget(this.cells().len());
        match this.mode {
            ExecutionMode::Replay => this.run_replay(budget),
            ExecutionMode::Direct => this.run_direct(budget),
            // Streaming never materializes a trace, so trace-requesting
            // campaigns (the OPT study) buffer instead.
            ExecutionMode::Streaming if this.record_trace => this.run_replay(budget),
            ExecutionMode::Streaming => this.run_streaming(budget),
        }
    }

    /// Builds the experiment of one (dataset, technique, app) coordinate,
    /// sharing generated datasets and reordered graphs through the caches.
    fn experiment_for(
        &self,
        base: &mut HashMap<DatasetKind, Arc<Csr>>,
        reordered: &mut HashMap<(DatasetKind, TechniqueKind, Direction), Arc<Csr>>,
        dataset: DatasetKind,
        technique: TechniqueKind,
        app: AppKind,
    ) -> Experiment {
        let hierarchy = self.hierarchy.unwrap_or_else(|| self.scale.hierarchy());
        let source = base
            .entry(dataset)
            .or_insert_with(|| Arc::new(dataset.build(self.scale).graph));
        let source = Arc::clone(source);
        // Reorder once per (dataset, technique, hotness direction) — the
        // direction is a property of the application, but most applications
        // share one, so the permutation work collapses across the app axis.
        let direction = app.hotness_direction();
        let graph = reordered
            .entry((dataset, technique, direction))
            .or_insert_with(|| {
                let boxed = technique.instantiate();
                let perm = boxed.compute(&source, direction);
                Arc::new(grasp_reorder::relabel(&source, &perm))
            });
        Experiment::shared(Arc::clone(graph), app).with_hierarchy(hierarchy)
    }

    /// The direct plan: every cell simulates the full hierarchy.
    fn run_direct(&self, threads: usize) -> CampaignResult {
        let mut base = HashMap::new();
        let mut reordered = HashMap::new();
        let work: Vec<(CampaignCell, Experiment)> = self
            .cells()
            .into_iter()
            .map(|cell| {
                let mut experiment = self.experiment_for(
                    &mut base,
                    &mut reordered,
                    cell.dataset,
                    cell.technique,
                    cell.app,
                );
                if self.record_trace {
                    experiment = experiment.recording_llc_trace();
                }
                (cell, experiment)
            })
            .collect();
        let runs = parallel_map(&work, threads, |(cell, experiment)| CampaignRun {
            cell: *cell,
            result: experiment.run(cell.policy),
        });
        CampaignResult { runs }
    }

    /// Collects the unique (dataset, technique, app) streams of the grid in
    /// first-seen grid order, plus each cell's index into the stream list
    /// (shared by the replay and streaming plans). Each stream carries its
    /// grid identity so the trace store can key it.
    fn stream_plan(&self) -> (Vec<(CampaignCell, usize)>, Vec<StreamJob>) {
        let mut base = HashMap::new();
        let mut reordered = HashMap::new();
        let mut stream_index: HashMap<(DatasetKind, TechniqueKind, AppKind), usize> =
            HashMap::new();
        let mut streams: Vec<StreamJob> = Vec::new();
        let cells: Vec<(CampaignCell, usize)> = self
            .cells()
            .into_iter()
            .map(|cell| {
                let key = (cell.dataset, cell.technique, cell.app);
                let index = *stream_index.entry(key).or_insert_with(|| {
                    streams.push(StreamJob {
                        dataset: cell.dataset,
                        technique: cell.technique,
                        app: cell.app,
                        experiment: self.experiment_for(
                            &mut base,
                            &mut reordered,
                            cell.dataset,
                            cell.technique,
                            cell.app,
                        ),
                    });
                    streams.len() - 1
                });
                (cell, index)
            })
            .collect();
        (cells, streams)
    }

    /// The trace-store key of one stream: its grid coordinate plus the
    /// experiment's hierarchy/app-config fingerprint and the campaign's
    /// publication codec (which also picks the entry file name's format
    /// version).
    fn store_key(&self, job: &StreamJob) -> TraceStoreKey {
        TraceStoreKey::new(
            job.dataset,
            self.scale,
            job.technique,
            job.app,
            job.experiment.hierarchy(),
            job.experiment.app_config(),
        )
        .with_codec(self.resolved_codec())
    }

    /// Produces one stream's [`RecordedRun`]: loaded from the trace store
    /// when an entry exists (the record phase is skipped entirely), recorded
    /// freshly — and published back to the store — otherwise.
    fn record_or_load(&self, job: &StreamJob) -> RecordedRun {
        let Some(store) = &self.store else {
            return job.experiment.record();
        };
        let key = self.store_key(job);
        if let Some(stored) = store.load(&key) {
            return job.experiment.recorded_from_parts(
                stored.trace,
                stored.app,
                stored.instructions,
            );
        }
        let recorded = job.experiment.record();
        if let Err(err) = store.publish(
            &key,
            recorded.trace(),
            recorded.app(),
            recorded.instructions(),
        ) {
            // Publication failures cost future runs the reuse, never this
            // run its results.
            eprintln!("trace store: could not publish {key}: {err}");
        }
        recorded
    }

    /// The record-once / replay-many plan: one recording per unique
    /// (dataset, technique, app) stream — loaded from the trace store when
    /// possible — then one cheap replay per cell.
    fn run_replay(&self, threads: usize) -> CampaignResult {
        let (cells, streams) = self.stream_plan();

        // Phase 1: obtain each stream once (application + upper levels, or a
        // store hit that skips both).
        let records = parallel_map(&streams, threads, |job| self.record_or_load(job));

        // Phase 2: fan each recorded stream out across its policies.
        let runs = parallel_map(&cells, threads, |&(cell, index)| {
            let recorded = &records[index];
            let result = if self.record_trace {
                recorded.replay_with_trace(cell.policy)
            } else {
                recorded.replay(cell.policy)
            };
            CampaignRun { cell, result }
        });
        CampaignResult { runs }
    }

    /// The streaming plan: each stream's recorder and policy replayers run
    /// concurrently, one stream at a time with the full worker budget. The
    /// recorder occupies the scheduling thread, so the replay consumers get
    /// the remaining budget (at least one — on a single worker the OS
    /// interleaves recorder and consumer through the bounded channel, which
    /// stays correct, just unoverlapped).
    ///
    /// With a trace store attached, a stream whose recording is stored skips
    /// its record phase: the loaded trace is **re-broadcast** through the
    /// same bounded chunk channel via [`grasp_cachesim::LlcTrace::stream_into`]
    /// ([`RecordedRun::sweep_streaming`]), so the consumer pipeline is
    /// identical and so are the statistics. A store miss records buffered
    /// (so the stream can be published) and then re-broadcasts it the same
    /// way — the cold run trades record/replay overlap for warm runs that
    /// skip recording altogether.
    fn run_streaming(&self, threads: usize) -> CampaignResult {
        let (cells, streams) = self.stream_plan();
        let consumers = threads.saturating_sub(1).max(1);
        let swept: Vec<Vec<crate::experiment::RunResult>> = streams
            .iter()
            .map(|job| {
                if self.store.is_some() {
                    self.record_or_load(job)
                        .sweep_streaming(&self.policies, consumers)
                } else {
                    job.experiment.sweep_streaming(&self.policies, consumers)
                }
            })
            .collect();
        let runs = cells
            .into_iter()
            .map(|(cell, stream)| {
                let policy_slot = self
                    .policies
                    .iter()
                    .position(|&policy| policy == cell.policy)
                    .expect("cell policies come from the campaign's policy list");
                CampaignRun {
                    cell,
                    result: swept[stream][policy_slot].clone(),
                }
            })
            .collect();
        CampaignResult { runs }
    }
}

/// Maps `work` through `f` on up to `threads` workers, returning results in
/// input order. With one worker (or one item) the map runs inline on the
/// caller; otherwise items are pulled off a shared cursor and re-assembled by
/// index, so the output order never depends on scheduling.
fn parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(
    work: &[T],
    threads: usize,
    f: F,
) -> Vec<R> {
    let workers = threads.min(work.len()).max(1);
    if workers == 1 {
        return work.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let (sender, receiver) = mpsc::channel::<(usize, R)>();
    let cursor = &cursor;
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let sender = sender.clone();
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = work.get(index) else {
                    break;
                };
                if sender.send((index, f(item))).is_err() {
                    break;
                }
            });
        }
    });
    drop(sender);

    // Re-assemble in input order: completion order is scheduling-dependent
    // but every slot is filled exactly once.
    let mut slots: Vec<Option<R>> = (0..work.len()).map(|_| None).collect();
    for (index, result) in receiver {
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every item completes exactly once"))
        .collect()
}

/// The results of a campaign, in deterministic grid order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    runs: Vec<CampaignRun>,
}

impl CampaignResult {
    /// Number of completed cells.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` when the campaign had no cells.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates the results in grid order.
    pub fn iter(&self) -> impl Iterator<Item = &CampaignRun> {
        self.runs.iter()
    }

    /// Looks up one cell's result.
    pub fn get(
        &self,
        dataset: DatasetKind,
        technique: TechniqueKind,
        app: AppKind,
        policy: PolicyKind,
    ) -> Option<&RunResult> {
        let cell = CampaignCell {
            dataset,
            technique,
            app,
            policy,
        };
        self.runs
            .iter()
            .find(|run| run.cell == cell)
            .map(|run| &run.result)
    }

    /// Consumes the result set into its grid-ordered runs.
    pub fn into_runs(self) -> Vec<CampaignRun> {
        self.runs
    }
}

impl IntoIterator for CampaignResult {
    type Item = CampaignRun;
    type IntoIter = std::vec::IntoIter<CampaignRun>;

    fn into_iter(self) -> Self::IntoIter {
        self.runs.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
    }

    #[test]
    fn results_arrive_in_grid_order() {
        let campaign = tiny_campaign().threads(4);
        let cells = campaign.cells();
        let results = campaign.run();
        assert_eq!(results.len(), cells.len());
        for (expected, run) in cells.iter().zip(results.iter()) {
            assert_eq!(expected, &run.cell);
        }
    }

    #[test]
    fn lookup_finds_cells() {
        let results = tiny_campaign().threads(2).run();
        let rrip = results
            .get(
                DatasetKind::Twitter,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .expect("cell exists");
        assert!(rrip.llc_accesses() > 0);
        assert!(results
            .get(
                DatasetKind::Kron,
                TechniqueKind::Dbg,
                AppKind::PageRank,
                PolicyKind::Rrip,
            )
            .is_none());
    }

    #[test]
    fn empty_campaign_is_empty() {
        let results = Campaign::new(Scale::Tiny).run();
        assert!(results.is_empty());
        assert_eq!(results.len(), 0);
    }

    #[test]
    fn replay_and_direct_plans_agree_bit_for_bit() {
        let replayed = tiny_campaign().threads(4).run();
        let direct = tiny_campaign().direct().threads(4).run();
        assert_eq!(replayed.len(), direct.len());
        for (a, b) in replayed.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
            assert_eq!(a.result.app.values, b.result.app.values, "{:?}", a.cell);
            assert!((a.result.cycles - b.result.cycles).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_plan_agrees_with_direct_bit_for_bit() {
        let streamed = tiny_campaign().streaming().threads(4).run();
        let direct = tiny_campaign().direct().threads(4).run();
        assert_eq!(streamed.len(), direct.len());
        for (a, b) in streamed.iter().zip(direct.iter()) {
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.result.stats, b.result.stats, "{:?}", a.cell);
            assert_eq!(a.result.app.values, b.result.app.values, "{:?}", a.cell);
            assert!((a.result.cycles - b.result.cycles).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_with_trace_request_falls_back_to_buffered_replay() {
        let streamed = tiny_campaign().streaming().recording_llc_trace().run();
        for run in streamed.iter() {
            assert!(
                run.result.llc_trace.is_some(),
                "requested traces must still be delivered: {:?}",
                run.cell
            );
        }
    }

    #[test]
    fn explicit_trace_codec_overrides_the_environment_default() {
        // The builder wins over GRASP_TRACE_CODEC; the resolved codec lands
        // in every stream's store key (and thereby the entry file name).
        let campaign = tiny_campaign().trace_codec(Codec::Raw);
        assert_eq!(campaign.resolved_codec(), Codec::Raw);
        let (_, streams) = campaign.stream_plan();
        assert!(streams
            .iter()
            .all(|job| campaign.store_key(job).codec == Codec::Raw));
        let dv = tiny_campaign().trace_codec(Codec::DeltaVarint);
        let (_, streams) = dv.stream_plan();
        assert!(streams
            .iter()
            .all(|job| dv.store_key(job).file_name().ends_with(".v2.trace")));
    }

    #[test]
    fn degenerate_thread_counts_are_clamped() {
        // Zero resolves to available parallelism and absurd requests fall
        // back to it; every budget is capped at the cell count. Moderate
        // oversubscription is honoured (so multi-worker scheduling is
        // exercised even on single-CPU machines).
        let available = std::thread::available_parallelism().map_or(1, |n| n.get());
        let zero = tiny_campaign().threads(0);
        assert_eq!(zero.worker_budget(8), available.min(8));
        let oversized = tiny_campaign().threads(1_000_000);
        assert_eq!(oversized.worker_budget(2), available.min(2));
        assert_eq!(oversized.worker_budget(0), 1);
        assert_eq!(
            tiny_campaign().threads(4).worker_budget(8),
            4,
            "an explicit modest request must reach the pool as-is"
        );
        let runs = oversized.run();
        assert_eq!(runs.len(), 2);
        let zero_runs = tiny_campaign().threads(0).run();
        assert_eq!(zero_runs.len(), 2);
        for (a, b) in runs.iter().zip(zero_runs.iter()) {
            assert_eq!(a.result.stats, b.result.stats);
        }
    }
}
