//! Shared helpers for the benchmark harness.
//!
//! Every bench target (`cargo bench -p grasp-bench --bench <name>`) regenerates
//! one table or figure of the GRASP (HPCA'20) evaluation and prints it as a
//! plain-text table. The harness respects the `GRASP_SCALE` environment
//! variable (`tiny` / `small` / `medium` / `large`, default `small`) so the
//! same code can be run quickly for smoke tests or at larger scales for
//! higher-fidelity shapes.

pub mod baseline;
pub mod seed_policies;

use grasp_analytics::apps::AppKind;
use grasp_core::datasets::{Dataset, DatasetKind, Scale};
use grasp_core::experiment::Experiment;
use grasp_core::policy::PolicyKind;
use grasp_reorder::TechniqueKind;

/// The scale the harness runs at (from `GRASP_SCALE`).
pub fn harness_scale() -> Scale {
    Scale::from_env()
}

/// Builds a dataset at the harness scale.
pub fn dataset(kind: DatasetKind, scale: Scale) -> Dataset {
    kind.build(scale)
}

/// Builds the standard experiment used throughout the evaluation: the dataset
/// reordered with the given technique, the application's traced iteration
/// budget, and the hierarchy paired with the scale.
pub fn experiment(
    dataset: &Dataset,
    app: AppKind,
    scale: Scale,
    reorder: TechniqueKind,
) -> Experiment {
    Experiment::new(dataset.graph.clone(), app)
        .with_hierarchy(scale.hierarchy())
        .with_reordering(reorder)
}

/// Builds the standard figure campaign: the given datasets × applications
/// grid, DBG-reordered, with the RRIP baseline prepended to `schemes` so
/// every figure can normalize against it. Runs on all available cores;
/// results come back in deterministic grid order.
pub fn figure_campaign(
    scale: Scale,
    datasets: &[DatasetKind],
    apps: &[AppKind],
    schemes: &[PolicyKind],
) -> grasp_core::campaign::Campaign {
    let mut policies = vec![PolicyKind::Rrip];
    policies.extend(schemes.iter().copied().filter(|&p| p != PolicyKind::Rrip));
    grasp_core::campaign::Campaign::new(scale)
        .datasets(datasets)
        .apps(apps)
        .techniques(&[TechniqueKind::Dbg])
        .policies(&policies)
}

/// Runs `policy` and the RRIP baseline for one dataset/app pair and returns
/// `(baseline, candidate)`.
pub fn run_against_rrip(
    dataset: &Dataset,
    app: AppKind,
    scale: Scale,
    policy: PolicyKind,
) -> (
    grasp_core::experiment::RunResult,
    grasp_core::experiment::RunResult,
) {
    let exp = experiment(dataset, app, scale, TechniqueKind::Dbg);
    (exp.run(PolicyKind::Rrip), exp.run(policy))
}

/// A synthetic LLC trace mixing a hot working set (hinted High-Reuse, every
/// third access) with a cold miss stream (hinted Low-Reuse), the way the
/// analytics layer would hint them. Shared by the simulator micro-benchmark
/// and the seed-parity test so both always measure/pin the same distribution.
pub fn synthetic_mixed_trace(len: usize) -> Vec<grasp_cachesim::AccessInfo> {
    use grasp_cachesim::hint::ReuseHint;
    use grasp_cachesim::request::RegionLabel;
    use grasp_cachesim::AccessInfo;
    let mut trace = Vec::with_capacity(len);
    let mut x = 0x12345678u64;
    for i in 0..len {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let (addr, hint) = if i % 3 == 0 {
            ((x >> 33) % 512 * 64, ReuseHint::High)
        } else {
            (((x >> 20) % 65_536 + 1024) * 64, ReuseHint::Low)
        };
        trace.push(
            AccessInfo::read(addr)
                .with_hint(hint)
                .with_site(1)
                .with_region(RegionLabel::Property),
        );
    }
    trace
}

/// Whether this process enforces the benches' speedup bars: they are gated
/// on ≥ 4 hardware threads (overlap can't win on a saturated small box) and
/// demotable outright via `GRASP_BENCH_NO_SPEEDUP_BARS=1`. Exposed so every
/// bench gates the same way and `dump_json` records the same answer.
pub fn speedup_bars_enforced() -> bool {
    std::env::var("GRASP_BENCH_NO_SPEEDUP_BARS").is_err() && hardware_threads() >= 4
}

/// Hardware threads available to this process.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Writes a figure's tables as machine-readable JSON to
/// `BENCH_<figure>.json` (in `GRASP_BENCH_JSON_DIR`, default the current
/// directory), so per-figure results and campaign wall-clock times can be
/// tracked across PRs. Each dump embeds the measurement environment —
/// hardware thread count and speedup-bar state — so bar-demoted CI runs
/// are distinguishable in the trajectory. Failures are reported but never
/// abort a bench run.
pub fn dump_json(figure: &str, wall_ms: u128, tables: &[&grasp_core::report::Table]) {
    let dir = std::env::var("GRASP_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{figure}.json"));
    let meta = grasp_core::report::BenchMeta {
        hardware_threads: hardware_threads(),
        speedup_bars_enforced: speedup_bars_enforced(),
    };
    let json = grasp_core::report::to_json_with_meta(figure, wall_ms, Some(meta), tables);
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "results written to {} ({wall_ms} ms campaign)",
            path.display()
        ),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}

/// Prints the standard harness banner (scale, datasets, applications).
pub fn banner(what: &str) {
    let scale = harness_scale();
    println!();
    println!("GRASP reproduction harness — {what}");
    println!(
        "scale: {:?} ({} vertices per dataset, {} KiB LLC); set GRASP_SCALE=medium|large for more fidelity",
        scale,
        scale.vertices(),
        scale.llc_bytes() / 1024
    );
    println!();
}

/// Formats a signed percentage with one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:+.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_helper_builds_and_runs() {
        let scale = Scale::Tiny;
        let ds = dataset(DatasetKind::LiveJournal, scale);
        let (rrip, grasp) = run_against_rrip(&ds, AppKind::PageRank, scale, PolicyKind::Grasp);
        assert!(rrip.llc_accesses() > 0);
        assert!(grasp.llc_accesses() > 0);
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(4.25), "+4.2");
        assert_eq!(pct(-3.0), "-3.0");
    }
}
