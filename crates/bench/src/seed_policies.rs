//! Frozen copies of the seed's replacement-policy implementations.
//!
//! These are the policy hot loops exactly as the seed shipped them (multi-
//! pass RRPV victim search, per-access `Vec` allocation in Hawkeye's OPTgen,
//! SipHash predictor tables). Together with [`crate::baseline::BaselineCache`] they
//! form the dyn-dispatch baseline that `micro_cachesim` measures the fast
//! path against, and that the parity test pins the optimized simulator to,
//! bit for bit. Do not "optimize" this module.
#![allow(missing_docs)]
#![allow(clippy::all)]

use grasp_cachesim::addr::BlockAddr;
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::policy::ReplacementPolicy;
use grasp_cachesim::request::{AccessInfo, AccessSite};
use grasp_core::policy::PolicyKind;
use std::collections::{HashMap, VecDeque};

/// Seed used for the probabilistic policy components (matches the registry).
const POLICY_SEED: u64 = 0xC0FFEE;

/// Instantiates the frozen seed version of `kind` for the given geometry.
pub fn build_seed_policy(kind: PolicyKind, config: &CacheConfig) -> Box<dyn ReplacementPolicy> {
    let sets = config.sets();
    let ways = config.ways;
    match kind {
        PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
        PolicyKind::Random => Box::new(RandomReplacement::new(sets, ways, POLICY_SEED)),
        PolicyKind::Srrip => Box::new(Srrip::new(sets, ways)),
        PolicyKind::Brrip => Box::new(Brrip::new(sets, ways, POLICY_SEED)),
        PolicyKind::Rrip => Box::new(Drrip::new(sets, ways, POLICY_SEED)),
        PolicyKind::ShipMem => Box::new(ShipMem::new(sets, ways, config.block_bytes)),
        PolicyKind::Hawkeye => Box::new(Hawkeye::new(sets, ways)),
        PolicyKind::Leeway => Box::new(Leeway::new(sets, ways)),
        PolicyKind::Pin(percent) => Box::new(PinX::new(sets, ways, percent)),
        PolicyKind::GraspHintsOnly => Box::new(Grasp::with_mode(
            sets,
            ways,
            POLICY_SEED,
            GraspMode::HintsOnly,
        )),
        PolicyKind::GraspInsertionOnly => Box::new(Grasp::with_mode(
            sets,
            ways,
            POLICY_SEED,
            GraspMode::InsertionOnly,
        )),
        PolicyKind::Grasp => Box::new(Grasp::new(sets, ways, POLICY_SEED)),
    }
}

/// A tiny deterministic pseudo-random generator used by probabilistic
/// policies (BRRIP's infrequent near-insertion, random replacement). Kept
/// local to the crate so the simulator has no dependency on the graph
/// substrate and produces bit-identical results across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRng {
    state: u64,
}

impl PolicyRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// xorshift64* step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Returns `true` once every `denominator` calls on average.
    #[inline]
    pub fn one_in(&mut self, denominator: u64) -> bool {
        self.next_below(denominator) == 0
    }
}

// ---- seed lru.rs ----

/// True LRU: every hit or fill stamps the block with a monotonically
/// increasing counter; the victim is the block with the oldest stamp.
///
/// LRU is the reference point of the OPT study (Fig. 11 / Table VII reports
/// "% misses eliminated over LRU") and is also used for the L1 and L2 levels
/// of the hierarchy, as in commodity cores.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates an LRU policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        let idx = self.idx(set, way);
        self.stamps[idx] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        (0..self.ways)
            .min_by_key(|&w| self.stamps[self.idx(set, w)])
            .expect("ways is non-zero")
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.touch(set, way);
    }
}

// ---- seed random.rs ----

/// Evicts a uniformly random way. Useful as a sanity baseline in tests and
/// micro-benchmarks: any scheme that claims thrash resistance should beat it
/// on reuse-heavy traces.
#[derive(Debug, Clone)]
pub struct RandomReplacement {
    ways: usize,
    rng: PolicyRng,
}

impl RandomReplacement {
    /// Creates a random-replacement policy.
    pub fn new(_sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            ways,
            rng: PolicyRng::new(seed),
        }
    }
}

impl ReplacementPolicy for RandomReplacement {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn choose_victim(&mut self, _set: usize, _info: &AccessInfo) -> usize {
        self.rng.next_below(self.ways as u64) as usize
    }

    fn on_fill(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}

    fn on_hit(&mut self, _set: usize, _way: usize, _info: &AccessInfo) {}
}

// ---- seed rrip.rs ----

/// Number of RRPV bits used throughout the reproduction (3, as in the paper).
pub const RRPV_BITS: u32 = 3;

/// Maximum (distant) RRPV value: `2^RRPV_BITS - 1 = 7`.
pub const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// The "long re-reference" insertion value used by SRRIP: `RRPV_MAX - 1 = 6`.
pub const RRPV_LONG: u8 = RRPV_MAX - 1;

/// BRRIP inserts at `RRPV_LONG` once every `BRRIP_LONG_ONE_IN` fills,
/// otherwise at `RRPV_MAX` (the ISCA'10 paper uses 1/32).
pub const BRRIP_LONG_ONE_IN: u64 = 32;

/// Per-block RRPV storage shared by every RRIP-derived policy in this crate.
#[derive(Debug, Clone)]
pub struct RrpvArray {
    ways: usize,
    rrpv: Vec<u8>,
}

impl RrpvArray {
    /// Creates storage for `sets` × `ways` blocks, initialised to the distant
    /// value so empty ways look like immediate victims.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            ways,
            rrpv: vec![RRPV_MAX; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Current RRPV of a block.
    #[inline]
    pub fn get(&self, set: usize, way: usize) -> u8 {
        self.rrpv[self.idx(set, way)]
    }

    /// Sets the RRPV of a block.
    #[inline]
    pub fn set(&mut self, set: usize, way: usize, value: u8) {
        debug_assert!(value <= RRPV_MAX);
        let idx = self.idx(set, way);
        self.rrpv[idx] = value;
    }

    /// Decrements the RRPV of a block towards zero (gradual promotion).
    #[inline]
    pub fn decrement(&mut self, set: usize, way: usize) {
        let idx = self.idx(set, way);
        if self.rrpv[idx] > 0 {
            self.rrpv[idx] -= 1;
        }
    }

    /// Standard RRIP victim search: find a way with `RRPV_MAX`, ageing every
    /// block in the set until one reaches it. Ties break towards the lowest
    /// way index, as in the CRC reference implementation.
    pub fn find_victim(&mut self, set: usize) -> usize {
        loop {
            for way in 0..self.ways {
                if self.get(set, way) == RRPV_MAX {
                    return way;
                }
            }
            for way in 0..self.ways {
                let idx = self.idx(set, way);
                self.rrpv[idx] += 1;
            }
        }
    }
}

/// Set-dueling monitor (Qureshi et al.): a handful of leader sets are
/// dedicated to each competing policy and a saturating counter (PSEL) tracks
/// which one misses less; follower sets adopt the winner.
#[derive(Debug, Clone)]
pub struct SetDueling {
    sets: usize,
    leader_stride: usize,
    psel: i32,
    psel_max: i32,
}

/// Which insertion policy a set should use according to the dueling monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuelWinner {
    /// Use the SRRIP-style (long) insertion.
    Srrip,
    /// Use the BRRIP-style (distant, occasionally long) insertion.
    Brrip,
}

impl SetDueling {
    /// Creates a dueling monitor for `sets` sets with 32 leader sets per
    /// policy (or fewer for tiny caches) and a 10-bit PSEL counter.
    pub fn new(sets: usize) -> Self {
        // One leader pair every `stride` sets gives ~32 leaders per policy for
        // a 1024-set LLC and degrades gracefully for smaller caches.
        let leader_stride = (sets / 32).max(2);
        Self {
            sets,
            leader_stride,
            psel: 0,
            psel_max: 512,
        }
    }

    /// Returns the policy that the given set must *model* (leader sets) or
    /// `None` when it is a follower.
    pub fn leader_policy(&self, set: usize) -> Option<DuelWinner> {
        if set % self.leader_stride == 0 {
            Some(DuelWinner::Srrip)
        } else if set % self.leader_stride == 1 {
            Some(DuelWinner::Brrip)
        } else {
            None
        }
    }

    /// The policy a follower set should use right now.
    pub fn winner(&self) -> DuelWinner {
        if self.psel >= 0 {
            DuelWinner::Srrip
        } else {
            DuelWinner::Brrip
        }
    }

    /// Effective insertion policy for a set (leader sets always model their
    /// assigned policy).
    pub fn policy_for_set(&self, set: usize) -> DuelWinner {
        self.leader_policy(set).unwrap_or_else(|| self.winner())
    }

    /// Records a miss in `set`; misses in a leader set vote against its
    /// policy.
    pub fn record_miss(&mut self, set: usize) {
        match self.leader_policy(set) {
            Some(DuelWinner::Srrip) => {
                self.psel = (self.psel - 1).max(-self.psel_max);
            }
            Some(DuelWinner::Brrip) => {
                self.psel = (self.psel + 1).min(self.psel_max);
            }
            None => {}
        }
    }

    /// Number of sets the monitor was built for.
    pub fn sets(&self) -> usize {
        self.sets
    }
}

/// Static RRIP (SRRIP-HP): insert at `RRPV_LONG`, promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Srrip {
    rrpv: RrpvArray,
}

impl Srrip {
    /// Creates an SRRIP policy.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn name(&self) -> &'static str {
        "SRRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, RRPV_LONG);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }
}

/// Bimodal RRIP (BRRIP): insert at `RRPV_MAX` most of the time, `RRPV_LONG`
/// infrequently; promote to 0 on hit.
#[derive(Debug, Clone)]
pub struct Brrip {
    rrpv: RrpvArray,
    rng: PolicyRng,
}

impl Brrip {
    /// Creates a BRRIP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            rng: PolicyRng::new(seed),
        }
    }
}

impl ReplacementPolicy for Brrip {
    fn name(&self) -> &'static str {
        "BRRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let value = if self.rng.one_in(BRRIP_LONG_ONE_IN) {
            RRPV_LONG
        } else {
            RRPV_MAX
        };
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }
}

/// Dynamic RRIP (DRRIP): set-duels SRRIP against BRRIP. This is the scheme
/// the paper calls "RRIP" and uses as the baseline for Figs. 5–10.
#[derive(Debug, Clone)]
pub struct Drrip {
    rrpv: RrpvArray,
    dueling: SetDueling,
    rng: PolicyRng,
}

impl Drrip {
    /// Creates a DRRIP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            dueling: SetDueling::new(sets),
            rng: PolicyRng::new(seed),
        }
    }

    /// Insertion value for a fill in `set` according to the dueling state.
    fn insertion_value(&mut self, set: usize) -> u8 {
        match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        }
    }
}

impl ReplacementPolicy for Drrip {
    fn name(&self) -> &'static str {
        "RRIP"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        // A fill means the request missed: inform the dueling monitor.
        self.dueling.record_miss(set);
        let value = self.insertion_value(set);
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        self.rrpv.set(set, way, 0);
    }
}

// ---- seed ship.rs ----

/// Size of the memory region that forms a signature (16 KiB as in the
/// original proposal and the paper).
pub const SHIP_REGION_BYTES: u64 = 16 * 1024;

/// Maximum value of the 3-bit SHCT counters.
const SHCT_MAX: u8 = 7;

/// Initial (weakly re-referenced) SHCT counter value.
const SHCT_INIT: u8 = 1;

/// SHiP-MEM replacement policy built on an SRRIP substrate.
#[derive(Debug, Clone)]
pub struct ShipMem {
    rrpv: RrpvArray,
    ways: usize,
    /// Signature Hit Counter Table: region id → 3-bit saturating counter.
    shct: HashMap<u64, u8>,
    /// Per-block bookkeeping: the signature that filled the block and whether
    /// it has been re-referenced since the fill.
    fill_signature: Vec<u64>,
    was_reused: Vec<bool>,
    block_bytes: u64,
}

impl ShipMem {
    /// Creates a SHiP-MEM policy for a cache of `sets` × `ways` blocks of
    /// `block_bytes` bytes.
    pub fn new(sets: usize, ways: usize, block_bytes: u64) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            shct: HashMap::new(),
            fill_signature: vec![0; sets * ways],
            was_reused: vec![false; sets * ways],
            block_bytes,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Memory-region signature of an access.
    #[inline]
    fn signature(&self, info: &AccessInfo) -> u64 {
        info.addr / SHIP_REGION_BYTES
    }

    /// Counter value for a signature (initialised weakly re-referenced).
    fn counter(&self, signature: u64) -> u8 {
        *self.shct.get(&signature).unwrap_or(&SHCT_INIT)
    }

    /// Number of distinct signatures observed so far (predictor footprint).
    pub fn table_entries(&self) -> usize {
        self.shct.len()
    }

    fn train_positive(&mut self, signature: u64) {
        let entry = self.shct.entry(signature).or_insert(SHCT_INIT);
        *entry = (*entry + 1).min(SHCT_MAX);
    }

    fn train_negative(&mut self, signature: u64) {
        let entry = self.shct.entry(signature).or_insert(SHCT_INIT);
        *entry = entry.saturating_sub(1);
    }

    /// Suppress an unused-parameter warning while documenting why the block
    /// size is kept: signatures could alternatively be derived from block
    /// addresses, and tests assert the configured granularity.
    pub fn region_blocks(&self) -> u64 {
        SHIP_REGION_BYTES / self.block_bytes
    }
}

impl ReplacementPolicy for ShipMem {
    fn name(&self) -> &'static str {
        "SHiP-MEM"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let signature = self.signature(info);
        let idx = self.idx(set, way);
        self.fill_signature[idx] = signature;
        self.was_reused[idx] = false;
        // Predicted dead signatures insert at the distant position, everything
        // else at the SRRIP long position.
        let value = if self.counter(signature) == 0 {
            RRPV_MAX
        } else {
            RRPV_LONG
        };
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let idx = self.idx(set, way);
        if !self.was_reused[idx] {
            self.was_reused[idx] = true;
            let signature = self.fill_signature[idx];
            self.train_positive(signature);
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, had_reuse: bool) {
        let idx = self.idx(set, way);
        if !had_reuse && !self.was_reused[idx] {
            let signature = self.fill_signature[idx];
            self.train_negative(signature);
        }
    }
}

// ---- seed hawkeye.rs ----

/// Number of 3-bit counter states; counters ≥ `FRIENDLY_THRESHOLD` predict
/// cache-friendly behaviour.
const COUNTER_MAX: u8 = 7;
const FRIENDLY_THRESHOLD: u8 = 4;

/// One entry of a sampled set's access history used by OPTgen.
#[derive(Debug, Clone, Copy)]
struct HistoryEntry {
    block: BlockAddr,
    site: AccessSite,
    /// Number of liveness intervals that currently overlap this position.
    occupancy: u8,
    /// Whether a later access to the same block was observed while this entry
    /// was inside the window (i.e. it served as the start of a usage interval).
    reused: bool,
}

/// OPTgen for a single sampled set: a sliding window of past accesses with an
/// occupancy vector that answers "would OPT have hit this access?".
#[derive(Debug, Clone, Default)]
struct OptGen {
    history: VecDeque<HistoryEntry>,
    capacity: usize,
    ways: u8,
}

impl OptGen {
    fn new(ways: usize) -> Self {
        Self {
            history: VecDeque::new(),
            // The ISCA'16 design tracks 8x the associativity of usage
            // intervals per sampled set.
            capacity: ways * 8,
            ways: ways as u8,
        }
    }

    /// Records an access to `block` by `site`. Returns up to two training
    /// events `(site, opt_friendly)`:
    ///
    /// * when the block has a previous access inside the window, the previous
    ///   site is trained with OPTgen's verdict (would OPT have hit?);
    /// * when the window overflows and the evicted entry never saw a reuse,
    ///   its site is trained negatively (the reuse interval, if any, exceeds
    ///   what OPT could exploit with this cache size).
    fn record(&mut self, block: BlockAddr, site: AccessSite) -> Vec<(AccessSite, bool)> {
        let mut events = Vec::new();
        if let Some(prev_pos) = self.history.iter().rposition(|entry| entry.block == block) {
            let prev_site = self.history[prev_pos].site;
            let interval_fits = self
                .history
                .iter()
                .skip(prev_pos)
                .all(|entry| entry.occupancy < self.ways);
            if interval_fits {
                for entry in self.history.iter_mut().skip(prev_pos) {
                    entry.occupancy += 1;
                }
            }
            self.history[prev_pos].reused = true;
            events.push((prev_site, interval_fits));
        }
        self.history.push_back(HistoryEntry {
            block,
            site,
            occupancy: 0,
            reused: false,
        });
        if self.history.len() > self.capacity {
            if let Some(evicted) = self.history.pop_front() {
                if !evicted.reused {
                    events.push((evicted.site, false));
                }
            }
        }
        events
    }
}

/// The Hawkeye replacement policy.
#[derive(Debug, Clone)]
pub struct Hawkeye {
    rrpv: RrpvArray,
    ways: usize,
    /// Which sets are sampled for OPTgen training.
    sample_interval: usize,
    optgen: HashMap<usize, OptGen>,
    /// Site-indexed 3-bit predictor counters.
    predictor: HashMap<AccessSite, u8>,
    /// Per-block: the site that loaded the block (for detraining on eviction)
    /// and whether the block was predicted friendly at fill time.
    loader: Vec<AccessSite>,
    friendly: Vec<bool>,
}

impl Hawkeye {
    /// Creates a Hawkeye policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        // Sample roughly 64 sets (every `sets/64`-th set), at least every set
        // for tiny caches.
        let sample_interval = (sets / 64).max(1);
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            sample_interval,
            optgen: HashMap::new(),
            predictor: HashMap::new(),
            loader: vec![0; sets * ways],
            friendly: vec![false; sets * ways],
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn is_sampled(&self, set: usize) -> bool {
        set % self.sample_interval == 0
    }

    /// Predicted friendliness of a site.
    fn predict_friendly(&self, site: AccessSite) -> bool {
        *self.predictor.get(&site).unwrap_or(&FRIENDLY_THRESHOLD) >= FRIENDLY_THRESHOLD
    }

    /// Current counter value of a site (used by tests).
    pub fn counter(&self, site: AccessSite) -> u8 {
        *self.predictor.get(&site).unwrap_or(&FRIENDLY_THRESHOLD)
    }

    fn train(&mut self, site: AccessSite, friendly: bool) {
        let entry = self.predictor.entry(site).or_insert(FRIENDLY_THRESHOLD);
        if friendly {
            *entry = (*entry + 1).min(COUNTER_MAX);
        } else {
            *entry = entry.saturating_sub(1);
        }
    }

    /// Feeds OPTgen on sampled sets and trains the predictor with its verdict.
    fn observe(&mut self, set: usize, info: &AccessInfo) {
        if !self.is_sampled(set) {
            return;
        }
        let ways = self.ways;
        let optgen = self.optgen.entry(set).or_insert_with(|| OptGen::new(ways));
        let block = info.addr >> 6;
        for (site, friendly) in optgen.record(block, info.site) {
            self.train(site, friendly);
        }
    }

    /// Ages every cache-friendly block of a set except `except_way` — called
    /// when a friendly block is inserted, mirroring Hawkeye's RRIP-style
    /// ageing that keeps relative order among friendly blocks.
    fn age_friendly(&mut self, set: usize, except_way: usize) {
        for way in 0..self.ways {
            if way == except_way {
                continue;
            }
            let idx = self.idx(set, way);
            if self.friendly[idx] {
                let v = self.rrpv.get(set, way);
                if v < RRPV_MAX - 1 {
                    self.rrpv.set(set, way, v + 1);
                }
            }
        }
    }
}

impl ReplacementPolicy for Hawkeye {
    fn name(&self) -> &'static str {
        "Hawkeye"
    }

    fn choose_victim(&mut self, set: usize, info: &AccessInfo) -> usize {
        // Prefer cache-averse blocks (RRPV == MAX); otherwise evict the oldest
        // friendly block and detrain the site that loaded it.
        for way in 0..self.ways {
            if self.rrpv.get(set, way) == RRPV_MAX {
                return way;
            }
        }
        let victim = (0..self.ways)
            .max_by_key(|&w| self.rrpv.get(set, w))
            .expect("ways is non-zero");
        let loader = self.loader[self.idx(set, victim)];
        self.train(loader, false);
        let _ = info;
        victim
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.observe(set, info);
        let friendly = self.predict_friendly(info.site);
        let idx = self.idx(set, way);
        self.loader[idx] = info.site;
        self.friendly[idx] = friendly;
        if friendly {
            self.rrpv.set(set, way, 0);
            self.age_friendly(set, way);
        } else {
            self.rrpv.set(set, way, RRPV_MAX);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.observe(set, info);
        let friendly = self.predict_friendly(info.site);
        let idx = self.idx(set, way);
        self.friendly[idx] = friendly;
        if friendly {
            self.rrpv.set(set, way, 0);
        } else {
            // The paper highlights this behaviour: a hit to a block whose site
            // is predicted cache-averse *demotes* the block instead of
            // promoting it, hurting graph workloads.
            self.rrpv.set(set, way, RRPV_MAX);
        }
    }
}

// ---- seed leeway.rs ----

/// How many consecutive smaller observations it takes to shrink a predicted
/// live distance by one step (the "shrink slowly" half of the conservative
/// update).
const SHRINK_VOTES: u8 = 8;

/// Live distances are capped at this value (ages saturate here).
const LIVE_DISTANCE_CAP: u16 = 255;

/// The Leeway replacement policy.
#[derive(Debug, Clone)]
pub struct Leeway {
    rrpv: RrpvArray,
    ways: usize,
    /// Age of each block: number of fills its set has seen since the block
    /// was last filled or hit.
    age: Vec<u16>,
    /// Largest age at which each block received a hit during its residency.
    observed_live: Vec<u16>,
    /// The site that loaded each block.
    loader: Vec<AccessSite>,
    /// Predictor: site → (predicted live distance, shrink votes).
    predictor: HashMap<AccessSite, (u16, u8)>,
    /// Only a subset of sets trains the predictor, as in the original design.
    sample_interval: usize,
    /// Leeway's reuse-aware adaptive policies are modelled with the same
    /// set-dueling insertion as DRRIP, which keeps the scheme anchored to the
    /// paper's RRIP baseline.
    dueling: SetDueling,
    rng: PolicyRng,
}

impl Leeway {
    /// Creates a Leeway policy for a cache of `sets` × `ways`.
    pub fn new(sets: usize, ways: usize) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            age: vec![0; sets * ways],
            observed_live: vec![0; sets * ways],
            loader: vec![0; sets * ways],
            predictor: HashMap::new(),
            sample_interval: (sets / 64).max(1),
            dueling: SetDueling::new(sets),
            rng: PolicyRng::new(0x1EE7),
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn is_sampled(&self, set: usize) -> bool {
        set % self.sample_interval == 0
    }

    /// Predicted live distance for a site. Unseen sites default to the cap so
    /// nothing is predicted dead before any evidence exists.
    pub fn predicted_live_distance(&self, site: AccessSite) -> u16 {
        self.predictor
            .get(&site)
            .map(|&(d, _)| d)
            .unwrap_or(LIVE_DISTANCE_CAP)
    }

    /// Conservative predictor update on eviction: grow immediately, shrink
    /// only after [`SHRINK_VOTES`] consecutive smaller observations.
    fn train(&mut self, site: AccessSite, observed: u16) {
        let entry = self.predictor.entry(site).or_insert((LIVE_DISTANCE_CAP, 0));
        if observed >= entry.0 {
            entry.0 = observed;
            entry.1 = 0;
        } else {
            entry.1 += 1;
            if entry.1 >= SHRINK_VOTES {
                // Shrink towards the observation rather than by a fixed step
                // so wildly stale predictions converge, but slowly.
                entry.0 = entry.0 - ((entry.0 - observed) / 4).max(1);
                entry.1 = 0;
            }
        }
    }

    /// Returns `true` when the block at (`set`, `way`) is predicted dead.
    fn is_expired(&self, set: usize, way: usize) -> bool {
        let idx = self.idx(set, way);
        self.age[idx] > self.predicted_live_distance(self.loader[idx])
    }

    /// Ages every other block of the set by one fill event.
    fn bump_ages(&mut self, set: usize, except_way: usize) {
        for way in 0..self.ways {
            if way != except_way {
                let idx = self.idx(set, way);
                self.age[idx] = (self.age[idx] + 1).min(LIVE_DISTANCE_CAP);
            }
        }
    }
}

impl ReplacementPolicy for Leeway {
    fn name(&self) -> &'static str {
        "Leeway"
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Dead-block predictions only steer the choice among blocks the base
        // policy already considers near-eviction (RRPV >= long): this is the
        // reproduction of Leeway's variability-aware rate control, which keeps
        // the scheme anchored to its base policy when predictions are shaky.
        let mut expired: Option<(u16, usize)> = None;
        for way in 0..self.ways {
            if self.rrpv.get(set, way) >= RRPV_LONG && self.is_expired(set, way) {
                let age = self.age[self.idx(set, way)];
                if expired.map_or(true, |(a, _)| age > a) {
                    expired = Some((age, way));
                }
            }
        }
        if let Some((_, way)) = expired {
            return way;
        }
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let idx = self.idx(set, way);
        self.loader[idx] = info.site;
        self.age[idx] = 0;
        self.observed_live[idx] = 0;
        self.dueling.record_miss(set);
        let value = match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        };
        self.rrpv.set(set, way, value);
        self.bump_ages(set, way);
    }

    fn on_hit(&mut self, set: usize, way: usize, _info: &AccessInfo) {
        let idx = self.idx(set, way);
        if self.age[idx] > self.observed_live[idx] {
            self.observed_live[idx] = self.age[idx];
        }
        self.age[idx] = 0;
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, _had_reuse: bool) {
        if self.is_sampled(set) {
            let idx = self.idx(set, way);
            let observed = self.observed_live[idx];
            let loader = self.loader[idx];
            self.train(loader, observed);
        }
    }
}

// ---- seed pin.rs ----

/// The PIN-X policy: `reserved_fraction` of each set's ways may hold pinned
/// blocks from the High Reuse Region.
#[derive(Debug, Clone)]
pub struct PinX {
    rrpv: RrpvArray,
    ways: usize,
    pinned: Vec<bool>,
    pinned_per_set: Vec<usize>,
    reserved_ways: usize,
    reserved_percent: u8,
}

impl PinX {
    /// Creates a PIN-X policy reserving `percent`% of the ways of every set
    /// for pinned blocks.
    ///
    /// # Panics
    ///
    /// Panics if `percent` is 0 or greater than 100.
    pub fn new(sets: usize, ways: usize, percent: u8) -> Self {
        assert!((1..=100).contains(&percent), "percent must be in 1..=100");
        let reserved_ways = ((ways * percent as usize) / 100).max(1);
        Self {
            rrpv: RrpvArray::new(sets, ways),
            ways,
            pinned: vec![false; sets * ways],
            pinned_per_set: vec![0; sets],
            reserved_ways,
            reserved_percent: percent,
        }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Number of ways per set reserved for pinned blocks.
    pub fn reserved_ways(&self) -> usize {
        self.reserved_ways
    }

    /// The configured reservation percentage.
    pub fn reserved_percent(&self) -> u8 {
        self.reserved_percent
    }

    /// Number of blocks currently pinned in `set`.
    pub fn pinned_in_set(&self, set: usize) -> usize {
        self.pinned_per_set[set]
    }

    fn try_pin(&mut self, set: usize, way: usize) {
        let idx = self.idx(set, way);
        if !self.pinned[idx] && self.pinned_per_set[set] < self.reserved_ways {
            self.pinned[idx] = true;
            self.pinned_per_set[set] += 1;
        }
    }
}

impl ReplacementPolicy for PinX {
    fn name(&self) -> &'static str {
        match self.reserved_percent {
            25 => "PIN-25",
            50 => "PIN-50",
            75 => "PIN-75",
            100 => "PIN-100",
            _ => "PIN-X",
        }
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Standard RRIP victim search restricted to unpinned ways.
        loop {
            let mut all_pinned = true;
            for way in 0..self.ways {
                if self.pinned[self.idx(set, way)] {
                    continue;
                }
                all_pinned = false;
                if self.rrpv.get(set, way) == RRPV_MAX {
                    return way;
                }
            }
            if all_pinned {
                // Every way is pinned (only possible with PIN-100): fall back
                // to evicting way 0 so forward progress is maintained. XMem
                // avoids this by bounding pin requests; the guard keeps the
                // simulator robust.
                return 0;
            }
            for way in 0..self.ways {
                if !self.pinned[self.idx(set, way)] {
                    let v = self.rrpv.get(set, way);
                    if v < RRPV_MAX {
                        self.rrpv.set(set, way, v + 1);
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        let idx = self.idx(set, way);
        // The way may have been vacated by an eviction that already cleared
        // the pin; make sure the bookkeeping is consistent.
        if self.pinned[idx] {
            self.pinned[idx] = false;
            self.pinned_per_set[set] = self.pinned_per_set[set].saturating_sub(1);
        }
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
            self.rrpv.set(set, way, 0);
        } else {
            self.rrpv.set(set, way, RRPV_LONG);
        }
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        if info.hint == ReuseHint::High {
            self.try_pin(set, way);
        }
        self.rrpv.set(set, way, 0);
    }

    fn on_evict(&mut self, set: usize, way: usize, _block: BlockAddr, _had_reuse: bool) {
        let idx = self.idx(set, way);
        if self.pinned[idx] {
            self.pinned[idx] = false;
            self.pinned_per_set[set] -= 1;
        }
    }
}

// ---- seed grasp.rs ----

/// Which subset of GRASP's features is active (the Fig. 7 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraspMode {
    /// `RRIP+Hints`: identical to DRRIP except that the insertion position is
    /// chosen by the hint instead of probabilistically — High-Reuse blocks are
    /// inserted near the LRU position (`RRPV = 6`), everything else at LRU
    /// (`RRPV = 7`). Hits promote to MRU as in RRIP.
    HintsOnly,
    /// GRASP's insertion policy (High → MRU, Moderate → 6, Low → 7) with the
    /// baseline RRIP hit promotion (always to MRU).
    InsertionOnly,
    /// Full GRASP: specialized insertion *and* gradual hit promotion.
    Full,
}

impl GraspMode {
    /// All ablation modes in the order of Fig. 7.
    pub const ALL: [GraspMode; 3] = [
        GraspMode::HintsOnly,
        GraspMode::InsertionOnly,
        GraspMode::Full,
    ];

    /// Display label matching Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            GraspMode::HintsOnly => "RRIP+Hints",
            GraspMode::InsertionOnly => "GRASP (Insertion-Only)",
            GraspMode::Full => "GRASP (Hit-Promotion)",
        }
    }
}

impl std::fmt::Display for GraspMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The GRASP replacement policy (DRRIP base + hint-specialized insertion and
/// hit promotion).
#[derive(Debug, Clone)]
pub struct Grasp {
    rrpv: RrpvArray,
    dueling: SetDueling,
    rng: PolicyRng,
    mode: GraspMode,
}

impl Grasp {
    /// Creates the full GRASP policy.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        Self::with_mode(sets, ways, seed, GraspMode::Full)
    }

    /// Creates a GRASP policy with an explicit ablation mode.
    pub fn with_mode(sets: usize, ways: usize, seed: u64, mode: GraspMode) -> Self {
        Self {
            rrpv: RrpvArray::new(sets, ways),
            dueling: SetDueling::new(sets),
            rng: PolicyRng::new(seed),
            mode,
        }
    }

    /// The active ablation mode.
    pub fn mode(&self) -> GraspMode {
        self.mode
    }

    /// DRRIP's default insertion value (used for Default-hinted requests and
    /// by the `HintsOnly` ablation for non-High requests).
    fn default_insertion(&mut self, set: usize) -> u8 {
        match self.dueling.policy_for_set(set) {
            DuelWinner::Srrip => RRPV_LONG,
            DuelWinner::Brrip => {
                if self.rng.one_in(BRRIP_LONG_ONE_IN) {
                    RRPV_LONG
                } else {
                    RRPV_MAX
                }
            }
        }
    }

    fn insertion_value(&mut self, set: usize, hint: ReuseHint) -> u8 {
        match self.mode {
            GraspMode::HintsOnly => match hint {
                // RRIP+Hints: High-Reuse blocks get the favourable of RRIP's
                // two insertion points, everything else the unfavourable one.
                ReuseHint::High => RRPV_LONG,
                ReuseHint::Moderate | ReuseHint::Low => RRPV_MAX,
                ReuseHint::Default => self.default_insertion(set),
            },
            GraspMode::InsertionOnly | GraspMode::Full => match hint {
                // Table II of the paper.
                ReuseHint::High => 0,
                ReuseHint::Moderate => RRPV_LONG,
                ReuseHint::Low => RRPV_MAX,
                ReuseHint::Default => self.default_insertion(set),
            },
        }
    }
}

impl ReplacementPolicy for Grasp {
    fn name(&self) -> &'static str {
        match self.mode {
            GraspMode::HintsOnly => "RRIP+Hints",
            GraspMode::InsertionOnly => "GRASP-Insertion",
            GraspMode::Full => "GRASP",
        }
    }

    fn choose_victim(&mut self, set: usize, _info: &AccessInfo) -> usize {
        // Eviction is unchanged from the base scheme (Sec. III-C): no hint is
        // consulted, so no per-block hint metadata is needed.
        self.rrpv.find_victim(set)
    }

    fn on_fill(&mut self, set: usize, way: usize, info: &AccessInfo) {
        self.dueling.record_miss(set);
        let value = self.insertion_value(set, info.hint);
        self.rrpv.set(set, way, value);
    }

    fn on_hit(&mut self, set: usize, way: usize, info: &AccessInfo) {
        match self.mode {
            // RRIP-style promotion straight to MRU.
            GraspMode::HintsOnly | GraspMode::InsertionOnly => self.rrpv.set(set, way, 0),
            GraspMode::Full => match info.hint {
                ReuseHint::High | ReuseHint::Default => self.rrpv.set(set, way, 0),
                // Gradual promotion towards MRU (Table II hit policy).
                ReuseHint::Moderate | ReuseHint::Low => self.rrpv.decrement(set, way),
            },
        }
    }
}
