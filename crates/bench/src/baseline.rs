//! Frozen dyn-dispatch cache used as the micro-benchmark baseline.
//!
//! [`BaselineCache`] is a faithful copy of the seed's `SetAssocCache` before
//! the fast-path overhaul: the replacement policy is a
//! `Box<dyn ReplacementPolicy>` paying a virtual call per access event, the
//! valid/dirty/reused flags are three per-block `Vec<bool>`s, and the set
//! index is computed with `%`. Pair it with
//! [`crate::seed_policies::build_seed_policy`] — the frozen seed policy
//! implementations — to reproduce the seed's complete hot path: that is what
//! `micro_cachesim` measures the current [`grasp_cachesim::SetAssocCache`]
//! against, and what the parity test pins the new fast path to,
//! bit-for-bit. Do not "optimize" this file.

use grasp_cachesim::addr::{block_of, BlockAddr};
use grasp_cachesim::cache::AccessOutcome;
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::policy::ReplacementPolicy;
use grasp_cachesim::request::AccessInfo;
use grasp_cachesim::stats::CacheStats;

/// The seed's set-associative cache: dynamic dispatch and boolean metadata.
pub struct BaselineCache {
    config: CacheConfig,
    sets: usize,
    tags: Vec<BlockAddr>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    reused: Vec<bool>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl BaselineCache {
    /// Creates a baseline cache with the given geometry and boxed policy.
    pub fn new(config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        let sets = config.sets();
        let blocks = config.blocks();
        Self {
            config,
            sets,
            tags: vec![0; blocks],
            valid: vec![false; blocks],
            dirty: vec![false; blocks],
            reused: vec![false; blocks],
            policy,
            stats: CacheStats::new(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.config.ways + way
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        (block % self.sets as u64) as usize
    }

    /// Performs a demand access exactly as the seed implementation did.
    pub fn access(&mut self, info: &AccessInfo) -> AccessOutcome {
        let outcome = self.access_inner(info);
        self.stats.record(info.region, outcome.hit);
        outcome
    }

    fn access_inner(&mut self, info: &AccessInfo) -> AccessOutcome {
        let block = block_of(info.addr, self.config.block_bytes);
        let set = self.set_of(block);

        for way in 0..self.config.ways {
            let idx = self.idx(set, way);
            if self.valid[idx] && self.tags[idx] == block {
                self.reused[idx] = true;
                if info.is_write() {
                    self.dirty[idx] = true;
                }
                self.policy.on_hit(set, way, info);
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                    evicted_dirty: false,
                    bypassed: false,
                };
            }
        }

        if self.policy.should_bypass(set, info) {
            self.stats.bypasses += 1;
            return AccessOutcome {
                hit: false,
                evicted: None,
                evicted_dirty: false,
                bypassed: true,
            };
        }

        let way = (0..self.config.ways)
            .find(|&w| !self.valid[self.idx(set, w)])
            .unwrap_or_else(|| self.policy.choose_victim(set, info));

        let idx = self.idx(set, way);
        let mut evicted = None;
        let mut evicted_dirty = false;
        if self.valid[idx] {
            evicted = Some(self.tags[idx]);
            evicted_dirty = self.dirty[idx];
            self.stats.evictions += 1;
            self.policy
                .on_evict(set, way, self.tags[idx], self.reused[idx]);
        }
        self.tags[idx] = block;
        self.valid[idx] = true;
        self.dirty[idx] = info.is_write();
        self.reused[idx] = false;
        self.policy.on_fill(set, way, info);

        AccessOutcome {
            hit: false,
            evicted,
            evicted_dirty,
            bypassed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_cachesim::cache::SetAssocCache;
    use grasp_core::policy::PolicyKind;

    #[test]
    fn fast_path_matches_the_frozen_seed_for_every_policy() {
        let config = CacheConfig::new(64 * 1024, 16, 64);
        let trace = crate::synthetic_mixed_trace(30_000);
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Srrip,
            PolicyKind::Brrip,
            PolicyKind::Rrip,
            PolicyKind::ShipMem,
            PolicyKind::Hawkeye,
            PolicyKind::Leeway,
            PolicyKind::Pin(75),
            PolicyKind::GraspHintsOnly,
            PolicyKind::GraspInsertionOnly,
            PolicyKind::Grasp,
        ] {
            let mut baseline = BaselineCache::new(
                config,
                crate::seed_policies::build_seed_policy(policy, &config),
            );
            let mut fast = SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
            for info in &trace {
                let expected = baseline.access(info);
                let actual = fast.access(info);
                assert_eq!(expected, actual, "{policy}: outcome diverged");
            }
            assert_eq!(baseline.stats(), fast.stats(), "{policy}: stats diverged");
        }
    }
}
