//! Criterion micro-benchmarks for the graph substrate: generator throughput
//! and CSR construction.

use criterion::{criterion_group, criterion_main, Criterion};
use grasp_graph::generators::{GraphGenerator, Rmat, Uniform};
use grasp_graph::Csr;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_generation");
    group.sample_size(10);
    group.bench_function("rmat_scale14", |b| {
        b.iter(|| black_box(Rmat::new(14, 16).generate(7)).edge_count())
    });
    group.bench_function("uniform_16k", |b| {
        b.iter(|| black_box(Uniform::new(16_384, 16).generate(7)).edge_count())
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let edges = Rmat::new(14, 16).edge_list(3);
    let mut group = c.benchmark_group("csr_construction");
    group.sample_size(10);
    group.bench_function("from_edge_list_scale14", |b| {
        b.iter(|| Csr::from_edge_list(black_box(&edges)).unwrap().edge_count())
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_csr_build);
criterion_main!(benches);
