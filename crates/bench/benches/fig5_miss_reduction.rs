//! Fig. 5 — LLC miss reduction of SHiP-MEM, Hawkeye, Leeway and GRASP over
//! the RRIP baseline, for the five applications over the five high-skew
//! datasets (all DBG-reordered).
//!
//! Runs as one parallel campaign (see [`grasp_core::campaign`]); statistics
//! are bit-identical to the former serial loop.
//!
//! Paper reference: GRASP eliminates 6.4% of LLC misses on average (max
//! 14.2%) and never increases misses; Leeway averages +1.1%; SHiP-MEM and
//! Hawkeye average -4.8% and -22.7% respectively.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_core::compare::{arithmetic_mean, miss_reduction_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 5: LLC misses eliminated over the RRIP baseline");
    let scale = harness_scale();
    let schemes = PolicyKind::FIG5_SCHEMES;
    let started = std::time::Instant::now();
    let results = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &schemes).run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 5 — % LLC misses eliminated vs RRIP (positive is better)",
        &["app", "dataset", "SHiP-MEM", "Hawkeye", "Leeway", "GRASP"],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let baseline = results
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("baseline cell");
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let run = results
                    .get(kind, TechniqueKind::Dbg, app, scheme)
                    .expect("scheme cell");
                let reduction = miss_reduction_pct(baseline.llc_misses(), run.llc_misses());
                per_scheme[i].push(reduction);
                cells.push(pct(reduction));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_scheme {
        mean_row.push(pct(arithmetic_mean(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper averages: SHiP-MEM -4.8, Hawkeye -22.7, Leeway +1.1, GRASP +6.4.");
    dump_json("fig5", wall_ms, &[&table]);
}
