//! Fig. 11 and Table VII — GRASP vs Belady's optimal replacement (OPT).
//!
//! The LLC demand-access trace of every workload (recorded under the RRIP
//! run) is replayed under LRU, RRIP and GRASP, and post-processed with
//! Belady's MIN; the figure reports the percentage of misses each scheme
//! eliminates relative to LRU. Table VII repeats the average over a sweep of
//! LLC sizes.
//!
//! Paper reference (16 MB LLC): RRIP eliminates 15.2%, GRASP 19.7%, OPT 34.3%
//! of LRU's misses; the gap between GRASP and OPT is the remaining headroom.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, figure_campaign, harness_scale, pct};
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::{AddressBoundRegisters, RegionClassifier};
use grasp_cachesim::policy::opt::optimal_misses;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_cachesim::trace::{misses_eliminated_pct, replay_with_classifier};
use grasp_core::compare::arithmetic_mean;
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

/// Rebuilds the region classifier for a given LLC size from the property
/// regions observed in the trace (the bench records which addresses carry the
/// Property label, and the bounds are recovered from the address extremes).
fn classifier_for(trace: &[AccessInfo], llc_bytes: u64) -> RegionClassifier {
    let mut min = u64::MAX;
    let mut max = 0u64;
    for info in trace {
        if info.region == RegionLabel::Property {
            min = min.min(info.addr);
            max = max.max(info.addr);
        }
    }
    let mut abrs = AddressBoundRegisters::new();
    if min < max {
        abrs.program(min, max + 1);
    }
    RegionClassifier::new(abrs, llc_bytes)
}

fn replay_all(trace: &[AccessInfo], llc_bytes: u64) -> (u64, u64, u64, u64) {
    let config = CacheConfig::new(llc_bytes, 16, 64);
    let classifier = classifier_for(trace, llc_bytes);
    let lru = replay_with_classifier(
        trace,
        config,
        PolicyKind::Lru.build_dispatch(&config),
        &classifier,
    );
    let rrip = replay_with_classifier(
        trace,
        config,
        PolicyKind::Rrip.build_dispatch(&config),
        &classifier,
    );
    let grasp = replay_with_classifier(
        trace,
        config,
        PolicyKind::Grasp.build_dispatch(&config),
        &classifier,
    );
    let opt = optimal_misses(trace, &config);
    (lru.misses, rrip.misses, grasp.misses, opt.misses)
}

fn main() {
    banner("Fig. 11 / Table VII: GRASP vs Belady's OPT");
    let scale = harness_scale();

    // Record one LLC trace per (app, dataset) pair under the RRIP run; the
    // whole recording grid runs as one parallel campaign, and each compact
    // trace is decoded once for the replay sweeps below.
    let recordings = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &[])
        .recording_llc_trace()
        .run();
    let mut traces: Vec<(AppKind, DatasetKind, Vec<AccessInfo>)> = Vec::new();
    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let run = recordings
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("recording cell");
            let trace = run
                .llc_trace
                .as_ref()
                .map(|t| t.to_vec())
                .unwrap_or_default();
            traces.push((app, kind, trace));
        }
    }

    // Fig. 11: per-workload miss elimination over LRU at the default LLC size.
    let default_llc = scale.llc_bytes();
    let mut fig11 = Table::new(
        format!(
            "Fig. 11 — % misses eliminated over LRU ({} KiB LLC)",
            default_llc / 1024
        ),
        &["app", "dataset", "RRIP", "GRASP", "OPT"],
    );
    let mut rrip_all = Vec::new();
    let mut grasp_all = Vec::new();
    let mut opt_all = Vec::new();
    for (app, kind, trace) in &traces {
        let (lru, rrip, grasp, opt) = replay_all(trace, default_llc);
        let r = misses_eliminated_pct(lru, rrip);
        let g = misses_eliminated_pct(lru, grasp);
        let o = misses_eliminated_pct(lru, opt);
        rrip_all.push(r);
        grasp_all.push(g);
        opt_all.push(o);
        fig11.push_row(vec![
            app.label().to_owned(),
            kind.label().to_owned(),
            pct(r),
            pct(g),
            pct(o),
        ]);
    }
    fig11.push_row(vec![
        "GM".to_owned(),
        "all".to_owned(),
        pct(arithmetic_mean(&rrip_all)),
        pct(arithmetic_mean(&grasp_all)),
        pct(arithmetic_mean(&opt_all)),
    ]);
    println!("{fig11}");
    println!("Paper (16 MB): RRIP 15.2, GRASP 19.7, OPT 34.3.");

    // Table VII: LLC-size sweep (scaled analogue of the paper's 1–32 MB).
    let mut table7 = Table::new(
        "Table VII — average % misses eliminated over LRU vs LLC size",
        &["LLC size (KiB)", "RRIP", "GRASP", "OPT"],
    );
    for llc_bytes in [
        default_llc / 2,
        default_llc,
        default_llc * 2,
        default_llc * 4,
        default_llc * 8,
    ] {
        if llc_bytes < 32 * 1024 {
            continue;
        }
        let mut rrip_avg = Vec::new();
        let mut grasp_avg = Vec::new();
        let mut opt_avg = Vec::new();
        for (_, _, trace) in &traces {
            let (lru, rrip, grasp, opt) = replay_all(trace, llc_bytes);
            rrip_avg.push(misses_eliminated_pct(lru, rrip));
            grasp_avg.push(misses_eliminated_pct(lru, grasp));
            opt_avg.push(misses_eliminated_pct(lru, opt));
        }
        table7.push_row(vec![
            (llc_bytes / 1024).to_string(),
            pct(arithmetic_mean(&rrip_avg)),
            pct(arithmetic_mean(&grasp_avg)),
            pct(arithmetic_mean(&opt_avg)),
        ]);
    }
    println!("{table7}");
    println!("Paper (1->32 MB): RRIP ~16% flat, GRASP 15.4% -> 21.2%, OPT 27.5% -> 34.5%.");
}
