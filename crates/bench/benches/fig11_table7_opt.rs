//! Fig. 11 and Table VII — GRASP vs Belady's optimal replacement (OPT).
//!
//! Each workload's post-L2 stream is captured once by the record phase of a
//! replay-mode campaign. Online policies (LRU, RRIP, GRASP) and Belady's MIN
//! then replay the same **demand** stream — OPT cannot model prefetches, so
//! giving them only to the online policies would break its lower bound — for
//! several LLC sizes, with reuse hints recomputed from the Address Bound
//! Register bounds that travel with the trace. The figure reports the
//! percentage of misses each scheme eliminates relative to LRU; Table VII
//! repeats the average over a sweep of LLC sizes.
//!
//! Every replay is **chunk-native**: the online policies stream the demand
//! view straight off the recorded trace's 12-byte-per-record storage
//! ([`LlcTrace::replay_demand_with_classifier`]), and Belady's OPT consumes
//! the chunks directly ([`optimal_misses_trace`]) — no 16-byte-per-access
//! `Vec<AccessInfo>` is ever materialized, which is what keeps the
//! paper-scale (billions of accesses) sweep RAM-feasible.
//!
//! Paper reference (16 MB LLC): RRIP eliminates 15.2%, GRASP 19.7%, OPT 34.3%
//! of LRU's misses; the gap between GRASP and OPT is the remaining headroom.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::{AddressBoundRegisters, RegionClassifier};
use grasp_cachesim::policy::opt::optimal_misses_trace;
use grasp_cachesim::trace::{misses_eliminated_pct, LlcTrace};
use grasp_core::compare::arithmetic_mean;
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

/// One recorded workload: the chunked post-L2 trace every scheme (online and
/// OPT) replays the demand view of, with the recorded ABR bounds for
/// reclassification travelling inside the trace.
struct Recording {
    app: AppKind,
    dataset: DatasetKind,
    trace: LlcTrace,
}

/// Rebuilds the region classifier for a given LLC size from the ABR bounds
/// the application programmed during the recording run (carried by the
/// trace), mirroring what the hardware would do at that capacity.
fn classifier_for(bounds: &[(u64, u64)], llc_bytes: u64) -> RegionClassifier {
    let mut abrs = AddressBoundRegisters::new();
    for &(start, end) in bounds {
        abrs.program(start, end);
    }
    RegionClassifier::new(abrs, llc_bytes)
}

fn replay_all(recording: &Recording, llc_bytes: u64) -> (u64, u64, u64, u64) {
    let config = CacheConfig::new(llc_bytes, 16, 64);
    let classifier = classifier_for(recording.trace.abr_bounds(), llc_bytes);
    let mut misses = [0u64; 3];
    for (slot, policy) in [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Grasp]
        .into_iter()
        .enumerate()
    {
        misses[slot] = recording
            .trace
            .replay_demand_with_classifier(config, policy.build_dispatch(&config), &classifier)
            .misses;
    }
    let opt = optimal_misses_trace(&recording.trace, &config);
    (misses[0], misses[1], misses[2], opt.misses)
}

fn main() {
    banner("Fig. 11 / Table VII: GRASP vs Belady's OPT");
    let scale = harness_scale();

    // Record one post-L2 stream per (app, dataset) pair: the replay-mode
    // campaign runs each application exactly once and hands the trace back.
    let started = std::time::Instant::now();
    let recordings = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &[])
        .recording_llc_trace()
        .run();
    let mut workloads: Vec<Recording> = Vec::new();
    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let run = recordings
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("recording cell");
            workloads.push(Recording {
                app,
                dataset: kind,
                // Cloning shares the Arc-frozen chunks — no record copies.
                trace: run.llc_trace.clone().unwrap_or_default(),
            });
        }
    }
    let wall_ms = started.elapsed().as_millis();

    // Fig. 11: per-workload miss elimination over LRU at the default LLC size.
    let default_llc = scale.llc_bytes();
    let mut fig11 = Table::new(
        format!(
            "Fig. 11 — % misses eliminated over LRU ({} KiB LLC)",
            default_llc / 1024
        ),
        &["app", "dataset", "RRIP", "GRASP", "OPT"],
    );
    let mut rrip_all = Vec::new();
    let mut grasp_all = Vec::new();
    let mut opt_all = Vec::new();
    for recording in &workloads {
        let (lru, rrip, grasp, opt) = replay_all(recording, default_llc);
        let r = misses_eliminated_pct(lru, rrip);
        let g = misses_eliminated_pct(lru, grasp);
        let o = misses_eliminated_pct(lru, opt);
        rrip_all.push(r);
        grasp_all.push(g);
        opt_all.push(o);
        fig11.push_row(vec![
            recording.app.label().to_owned(),
            recording.dataset.label().to_owned(),
            pct(r),
            pct(g),
            pct(o),
        ]);
    }
    fig11.push_row(vec![
        "GM".to_owned(),
        "all".to_owned(),
        pct(arithmetic_mean(&rrip_all)),
        pct(arithmetic_mean(&grasp_all)),
        pct(arithmetic_mean(&opt_all)),
    ]);
    println!("{fig11}");
    println!("Paper (16 MB): RRIP 15.2, GRASP 19.7, OPT 34.3.");

    // Table VII: LLC-size sweep (scaled analogue of the paper's 1–32 MB).
    let mut table7 = Table::new(
        "Table VII — average % misses eliminated over LRU vs LLC size",
        &["LLC size (KiB)", "RRIP", "GRASP", "OPT"],
    );
    for llc_bytes in [
        default_llc / 2,
        default_llc,
        default_llc * 2,
        default_llc * 4,
        default_llc * 8,
    ] {
        if llc_bytes < 32 * 1024 {
            continue;
        }
        let mut rrip_avg = Vec::new();
        let mut grasp_avg = Vec::new();
        let mut opt_avg = Vec::new();
        for recording in &workloads {
            let (lru, rrip, grasp, opt) = replay_all(recording, llc_bytes);
            rrip_avg.push(misses_eliminated_pct(lru, rrip));
            grasp_avg.push(misses_eliminated_pct(lru, grasp));
            opt_avg.push(misses_eliminated_pct(lru, opt));
        }
        table7.push_row(vec![
            (llc_bytes / 1024).to_string(),
            pct(arithmetic_mean(&rrip_avg)),
            pct(arithmetic_mean(&grasp_avg)),
            pct(arithmetic_mean(&opt_avg)),
        ]);
    }
    println!("{table7}");
    println!("Paper (1->32 MB): RRIP ~16% flat, GRASP 15.4% -> 21.2%, OPT 27.5% -> 34.5%.");
    dump_json("fig11_table7", wall_ms, &[&fig11, &table7]);
}
