//! Fig. 2 — classification of LLC accesses and misses as falling within or
//! outside the Property Array, for the `pl` and `tw` datasets across all five
//! applications (normalized to total LLC accesses).
//!
//! Paper reference: the Property Array accounts for 78–94% of LLC accesses and
//! a large fraction of LLC misses.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dataset, experiment, harness_scale};
use grasp_cachesim::request::RegionLabel;
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 2: LLC access/miss breakdown by data structure");
    let scale = harness_scale();
    let mut table = Table::new(
        "Fig. 2 — % of LLC accesses (paper: property accounts for 78-94% of accesses)",
        &[
            "dataset",
            "app",
            "accesses in property (%)",
            "accesses outside (%)",
            "misses in property (%)",
            "misses outside (%)",
        ],
    );
    for kind in [DatasetKind::Pld, DatasetKind::Twitter] {
        let ds = dataset(kind, scale);
        for app in AppKind::ALL {
            let exp = experiment(&ds, app, scale, TechniqueKind::Dbg);
            let run = exp.run(PolicyKind::Rrip);
            let llc = &run.stats.llc;
            let total = llc.accesses as f64;
            let prop = llc.region(RegionLabel::Property);
            let outside_accesses = llc.accesses - prop.accesses;
            let outside_misses = llc.misses - prop.misses;
            table.push_row(vec![
                kind.label().to_owned(),
                app.label().to_owned(),
                format!("{:.1}", prop.accesses as f64 / total * 100.0),
                format!("{:.1}", outside_accesses as f64 / total * 100.0),
                format!("{:.1}", prop.misses as f64 / total * 100.0),
                format!("{:.1}", outside_misses as f64 / total * 100.0),
            ]);
        }
    }
    println!("{table}");
}
