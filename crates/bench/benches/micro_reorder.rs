//! Criterion micro-benchmarks for the reordering techniques, quantifying the
//! cost gap between the lightweight skew-aware techniques and Gorder that
//! underlies Fig. 10(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_graph::generators::{GraphGenerator, Rmat};
use grasp_graph::types::Direction;
use grasp_reorder::TechniqueKind;
use std::hint::black_box;

fn bench_reordering(c: &mut Criterion) {
    let graph = Rmat::new(14, 16).generate(5);
    let mut group = c.benchmark_group("reordering_cost");
    group.sample_size(10);
    for kind in [
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
        TechniqueKind::GorderDbg,
    ] {
        let technique = kind.instantiate();
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &graph, |b, g| {
            b.iter(|| black_box(technique.compute(g, Direction::Out)).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reordering);
criterion_main!(benches);
