//! Fig. 7 — contribution of GRASP's individual features: RRIP+Hints
//! (software hints steering RRIP's existing insertion points), GRASP
//! (Insertion-Only), and full GRASP (insertion + gradual hit promotion),
//! all relative to the RRIP baseline. Runs as one parallel campaign.
//!
//! Paper reference: RRIP+Hints +3.3%, Insertion-Only +5.0%, full GRASP +5.2%
//! average speed-up.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_core::compare::{geometric_mean_speedup, speedup_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 7: impact of GRASP features on performance");
    let scale = harness_scale();
    let ablations = PolicyKind::ABLATIONS;
    let started = std::time::Instant::now();
    let results = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &ablations).run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 7 — speed-up (%) over RRIP for GRASP's ablations",
        &[
            "app",
            "dataset",
            "RRIP+Hints",
            "GRASP (Insertion-Only)",
            "GRASP (Hit-Promotion)",
        ],
    );
    let mut per_mode: Vec<Vec<f64>> = vec![Vec::new(); ablations.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let baseline = results
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("baseline cell");
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &mode) in ablations.iter().enumerate() {
                let run = results
                    .get(kind, TechniqueKind::Dbg, app, mode)
                    .expect("ablation cell");
                let speedup = speedup_pct(baseline.cycles, run.cycles);
                per_mode[i].push(speedup);
                cells.push(pct(speedup));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_mode {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper GM: RRIP+Hints +3.3, Insertion-Only +5.0, Hit-Promotion +5.2.");
    dump_json("fig7", wall_ms, &[&table]);
}
