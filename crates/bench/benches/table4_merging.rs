//! Table IV — effect of merging the Property Arrays (the data-structure
//! optimization of Sec. IV-A) on SSSP, PR and PRD.
//!
//! Paper reference values: SSSP 3–8%, PR 40–52%, PRD 14–49% speed-up from
//! merging; BC and Radii have no merging opportunity.

use grasp_analytics::apps::AppKind;
use grasp_analytics::props::PropertyLayout;
use grasp_bench::{banner, dataset, harness_scale, pct};
use grasp_core::compare::speedup_pct;
use grasp_core::datasets::DatasetKind;
use grasp_core::experiment::Experiment;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Table IV: speed-up from merging the Property Arrays");
    let scale = harness_scale();
    let mut table = Table::new(
        "Table IV — merged vs separate Property Arrays (paper: SSSP 3-8%, PR 40-52%, PRD 14-49%)",
        &[
            "app",
            "dataset",
            "separate misses",
            "merged misses",
            "speed-up (%)",
        ],
    );
    for app in [AppKind::Sssp, AppKind::PageRank, AppKind::PageRankDelta] {
        for kind in DatasetKind::HIGH_SKEW {
            let ds = dataset(kind, scale);
            let run_with = |layout: PropertyLayout| {
                let app_config = Experiment::traced_app_config(app).with_layout(layout);
                Experiment::new(ds.graph.clone(), app)
                    .with_hierarchy(scale.hierarchy())
                    .with_reordering(TechniqueKind::Dbg)
                    .with_app_config(app_config)
                    .run(PolicyKind::Rrip)
            };
            let separate = run_with(PropertyLayout::Separate);
            let merged = run_with(PropertyLayout::Merged);
            table.push_row(vec![
                app.label().to_owned(),
                kind.label().to_owned(),
                separate.llc_misses().to_string(),
                merged.llc_misses().to_string(),
                pct(speedup_pct(separate.cycles, merged.cycles)),
            ]);
        }
    }
    println!("{table}");
    println!("(BC and Radii keep a single hot Property Array and have no merging opportunity.)");
}
