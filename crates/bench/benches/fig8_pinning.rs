//! Fig. 8 — GRASP vs XMem-style pinning (PIN-25/50/75/100) on the high-skew
//! datasets, relative to the RRIP baseline. Runs as one parallel campaign.
//!
//! Paper reference: GRASP +5.2% average and outperforms every PIN
//! configuration on 24 of 25 datapoints; PIN-25/50/75/100 average
//! 0.4/1.1/2.0/2.5%.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_core::compare::{geometric_mean_speedup, speedup_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 8: GRASP vs pinning on high-skew datasets");
    let scale = harness_scale();
    let schemes = [
        PolicyKind::Pin(25),
        PolicyKind::Pin(50),
        PolicyKind::Pin(75),
        PolicyKind::Pin(100),
        PolicyKind::Grasp,
    ];
    let started = std::time::Instant::now();
    let results = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &schemes).run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 8 — speed-up (%) over RRIP",
        &[
            "app", "dataset", "PIN-25", "PIN-50", "PIN-75", "PIN-100", "GRASP",
        ],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let baseline = results
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("baseline cell");
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let run = results
                    .get(kind, TechniqueKind::Dbg, app, scheme)
                    .expect("scheme cell");
                let speedup = speedup_pct(baseline.cycles, run.cycles);
                per_scheme[i].push(speedup);
                cells.push(pct(speedup));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_scheme {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper GM: PIN-25 +0.4, PIN-50 +1.1, PIN-75 +2.0, PIN-100 +2.5, GRASP +5.2.");
    dump_json("fig8", wall_ms, &[&table]);
}
