//! Table I — skew of the evaluated datasets: percentage of hot vertices
//! (degree ≥ average) and the percentage of edges they cover, for in- and
//! out-edges.
//!
//! Paper reference values (Table I): hot vertices 9–26% covering 81–93% of
//! edges for the five high-skew datasets.

use grasp_bench::{banner, dataset, harness_scale};
use grasp_core::datasets::DatasetKind;
use grasp_core::report::Table;

fn main() {
    banner("Table I: skew in the degree distribution");
    let scale = harness_scale();
    let mut table = Table::new(
        "Table I — hot vertices and edge coverage (paper: 9-26% hot, 81-93% coverage)",
        &[
            "dataset",
            "in hot vertices (%)",
            "in edge coverage (%)",
            "out hot vertices (%)",
            "out edge coverage (%)",
        ],
    );
    for kind in DatasetKind::ALL {
        let ds = dataset(kind, scale);
        let (in_skew, out_skew) = ds.skew();
        table.push_numeric_row(
            kind.label(),
            &[
                in_skew.hot_vertices_pct(),
                in_skew.edge_coverage_pct(),
                out_skew.hot_vertices_pct(),
                out_skew.edge_coverage_pct(),
            ],
        );
    }
    println!("{table}");
    println!("(fr and uni are the adversarial low-/no-skew datasets of Fig. 9.)");
}
