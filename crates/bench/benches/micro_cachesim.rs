//! Criterion micro-benchmarks for the cache simulator: raw access throughput
//! of each replacement policy on a synthetic thrash-prone trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_cachesim::cache::SetAssocCache;
use grasp_cachesim::config::CacheConfig;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::request::{AccessInfo, RegionLabel};
use grasp_core::policy::PolicyKind;
use std::hint::black_box;

fn synthetic_trace(len: usize) -> Vec<AccessInfo> {
    // A mix of a hot working set and a cold stream, with hints attached the
    // way the analytics layer would attach them.
    let mut trace = Vec::with_capacity(len);
    let mut x = 0x12345678u64;
    for i in 0..len {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let (addr, hint) = if i % 3 == 0 {
            ((x >> 33) % 512 * 64, ReuseHint::High)
        } else {
            (((x >> 20) % 65_536 + 1024) * 64, ReuseHint::Low)
        };
        trace.push(
            AccessInfo::read(addr)
                .with_hint(hint)
                .with_site(1)
                .with_region(RegionLabel::Property),
        );
    }
    trace
}

fn bench_policies(c: &mut Criterion) {
    let config = CacheConfig::new(256 * 1024, 16, 64);
    let trace = synthetic_trace(100_000);
    let mut group = c.benchmark_group("llc_access_throughput");
    group.sample_size(10);
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Rrip,
        PolicyKind::ShipMem,
        PolicyKind::Hawkeye,
        PolicyKind::Leeway,
        PolicyKind::Pin(75),
        PolicyKind::Grasp,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut cache = SetAssocCache::new("LLC", config, policy.build(&config));
                    for info in trace {
                        black_box(cache.access(info));
                    }
                    cache.stats().misses
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
