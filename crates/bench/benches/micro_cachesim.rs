//! Micro-benchmarks for the cache simulator: raw demand-access throughput of
//! each replacement policy, measured on the fast-path `SetAssocCache`
//! (static `PolicyDispatch`, packed bitmask metadata) and on the frozen
//! dyn-dispatch [`grasp_bench::baseline::BaselineCache`] copied from the
//! seed implementation. The final table reports accesses/s for both and the
//! resulting speed-up per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grasp_bench::baseline::BaselineCache;
use grasp_bench::seed_policies::build_seed_policy;
use grasp_bench::synthetic_mixed_trace;
use grasp_cachesim::cache::{BatchScratch, SetAssocCache};
use grasp_cachesim::config::CacheConfig;
use grasp_core::policy::PolicyKind;
use std::hint::black_box;
use std::time::Instant;

const POLICIES: [PolicyKind; 7] = [
    PolicyKind::Lru,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(75),
    PolicyKind::Grasp,
];

fn bench_policies(c: &mut Criterion) {
    let config = CacheConfig::new(256 * 1024, 16, 64);
    let trace = synthetic_mixed_trace(100_000);
    let mut group = c.benchmark_group("llc_access_throughput");
    group.sample_size(10);
    for policy in POLICIES {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut cache =
                        SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
                    for info in trace {
                        black_box(cache.access(info));
                    }
                    cache.stats().misses
                });
            },
        );
    }
    group.finish();
}

/// Median time of `samples` runs of `f`.
fn median_time<F: FnMut()>(samples: usize, mut f: F) -> std::time::Duration {
    f(); // warm-up
    let mut times: Vec<_> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Head-to-head: fast path vs the seed's dyn-dispatch implementation.
fn bench_fast_vs_baseline(_c: &mut Criterion) {
    let config = CacheConfig::new(256 * 1024, 16, 64);
    let trace = synthetic_mixed_trace(100_000);
    let samples = 10;

    println!("fast path (PolicyDispatch + packed metadata) vs dyn-dispatch baseline:");
    println!(
        "{:<10} {:>15} {:>15} {:>9}",
        "policy", "baseline Macc/s", "fast Macc/s", "speed-up"
    );
    let mut worst = f64::INFINITY;
    let mut base_total = std::time::Duration::ZERO;
    let mut fast_total = std::time::Duration::ZERO;
    for policy in POLICIES {
        let base_time = median_time(samples, || {
            let mut cache = BaselineCache::new(config, build_seed_policy(policy, &config));
            for info in &trace {
                black_box(cache.access(info));
            }
            black_box(cache.stats().misses);
        });
        let fast_time = median_time(samples, || {
            let mut cache = SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
            for info in &trace {
                black_box(cache.access(info));
            }
            black_box(cache.stats().misses);
        });
        let to_rate = |d: std::time::Duration| trace.len() as f64 / d.as_secs_f64() / 1e6;
        let speedup = base_time.as_secs_f64() / fast_time.as_secs_f64();
        worst = worst.min(speedup);
        base_total += base_time;
        fast_total += fast_time;
        println!(
            "{:<10} {:>15.1} {:>15.1} {:>8.2}x",
            policy.label(),
            to_rate(base_time),
            to_rate(fast_time),
            speedup
        );
    }
    let aggregate = base_total.as_secs_f64() / fast_total.as_secs_f64();
    println!(
        "aggregate demand-access throughput speed-up: {aggregate:.2}x (worst single policy {worst:.2}x)"
    );
}

/// Per-access `access` loop vs the batched lookup kernel on the same trace:
/// the raw Macc/s gain from hoisted policy dispatch, column-wise set/partial
/// precompute and deferred statistics, with stats asserted bit-identical.
fn bench_batched_kernel(_c: &mut Criterion) {
    let config = CacheConfig::new(256 * 1024, 16, 64);
    let trace = synthetic_mixed_trace(100_000);
    let samples = 10;
    let batch = 4096;

    println!("per-access demand loop vs batched lookup kernel (batch = {batch} accesses):");
    println!(
        "{:<10} {:>16} {:>15} {:>9}",
        "policy", "scalar Macc/s", "batch Macc/s", "speed-up"
    );
    let mut scalar_total = std::time::Duration::ZERO;
    let mut batch_total = std::time::Duration::ZERO;
    for policy in POLICIES {
        let scalar_stats = {
            let mut cache = SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
            for info in &trace {
                cache.access(info);
            }
            cache.stats().clone()
        };
        let scalar_time = median_time(samples, || {
            let mut cache = SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
            for info in &trace {
                black_box(cache.access(info));
            }
            black_box(cache.stats().misses);
        });
        let batch_time = median_time(samples, || {
            let mut cache = SetAssocCache::new("LLC", config, policy.build_dispatch(&config));
            let mut scratch = BatchScratch::new();
            for window in trace.chunks(batch) {
                black_box(cache.access_batch(window, &mut scratch));
            }
            assert_eq!(
                cache.stats(),
                &scalar_stats,
                "{}: batched kernel diverged from per-access loop",
                policy.label()
            );
        });
        let to_rate = |d: std::time::Duration| trace.len() as f64 / d.as_secs_f64() / 1e6;
        scalar_total += scalar_time;
        batch_total += batch_time;
        println!(
            "{:<10} {:>16.1} {:>15.1} {:>8.2}x",
            policy.label(),
            to_rate(scalar_time),
            to_rate(batch_time),
            scalar_time.as_secs_f64() / batch_time.as_secs_f64()
        );
    }
    let aggregate = scalar_total.as_secs_f64() / batch_total.as_secs_f64();
    println!("aggregate batched-kernel speed-up over per-access loop: {aggregate:.2}x");
}

criterion_group!(
    benches,
    bench_policies,
    bench_fast_vs_baseline,
    bench_batched_kernel
);
criterion_main!(benches);
