//! Fig. 10(a) — net speed-up of the software reordering techniques (Sort,
//! HubSort, DBG, Gorder) after accounting for their reordering cost, measured
//! natively (wall clock) rather than in the simulator.
//!
//! Paper reference: averaged over all application/dataset pairs, Sort +2.6%,
//! HubSort +0.6%, DBG +10.8%; Gorder loses badly (-85.4%) because its
//! reordering cost dwarfs the application runtime.

use grasp_analytics::apps::{AppConfig, AppKind};
use grasp_bench::{banner, dataset, harness_scale, pct};
use grasp_core::compare::geometric_mean_speedup;
use grasp_core::datasets::DatasetKind;
use grasp_core::experiment::Experiment;
use grasp_core::report::Table;
use grasp_reorder::cost::run_boxed;
use grasp_reorder::TechniqueKind;

/// Native app configuration: long enough for reordering cost amortization to
/// be meaningful, as in the paper's full-application measurements.
fn native_config(app: AppKind) -> AppConfig {
    let max_iterations = match app {
        AppKind::PageRank => 20,
        AppKind::PageRankDelta => 20,
        AppKind::Radii => 16,
        AppKind::Bc | AppKind::Sssp => 256,
    };
    AppConfig {
        max_iterations,
        epsilon: 0.0,
        ..AppConfig::default()
    }
}

fn main() {
    banner("Fig. 10(a): net speed-up of reordering techniques (native, wall clock)");
    let scale = harness_scale();
    let techniques = [
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
        TechniqueKind::GorderDbg,
    ];
    let mut table = Table::new(
        "Fig. 10a — net speed-up (%) over the original ordering, including reordering cost",
        &["app", "dataset", "Sort", "HubSort", "DBG", "Gorder(+DBG)"],
    );
    let mut per_technique: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let ds = dataset(kind, scale);
            let config = native_config(app);
            let baseline = Experiment::new(ds.graph.clone(), app)
                .with_app_config(config)
                .run_native();
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &kind_t) in techniques.iter().enumerate() {
                let technique = kind_t.instantiate();
                let outcome = run_boxed(technique.as_ref(), &ds.graph, app.hotness_direction());
                let run = Experiment::new(outcome.graph.clone(), app)
                    .with_app_config(config)
                    .run_native();
                let total = outcome.total_time() + run.runtime;
                let net = (baseline.runtime.as_secs_f64() / total.as_secs_f64() - 1.0) * 100.0;
                per_technique[i].push(net);
                cells.push(pct(net));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_technique {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper averages: Sort +2.6, HubSort +0.6, DBG +10.8, Gorder -85.4.");
    println!("(Wall-clock numbers depend on the host; the qualitative ordering is what matters.)");
}
