//! Fig. 6 — speed-up of SHiP-MEM, Hawkeye, Leeway and GRASP over the RRIP
//! baseline (five applications × five high-skew datasets, DBG-reordered).
//!
//! The whole grid runs as one parallel [`grasp_core::campaign::Campaign`]:
//! every dataset is generated and DBG-reordered once, and the app × policy
//! fan-out saturates the available cores. Per-cell statistics are
//! bit-identical to the former serial loop.
//!
//! Paper reference: GRASP averages +5.2% (max 10.2%) and never causes a
//! slowdown; SHiP-MEM and Hawkeye average -5.5% and -16.2%; Leeway +0.9%.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_core::compare::{geometric_mean_speedup, speedup_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 6: speed-up over the RRIP baseline");
    let scale = harness_scale();
    let schemes = PolicyKind::FIG5_SCHEMES;
    let started = std::time::Instant::now();
    let results = figure_campaign(scale, &DatasetKind::HIGH_SKEW, &AppKind::ALL, &schemes).run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 6 — speed-up (%) vs RRIP under the analytic timing model",
        &["app", "dataset", "SHiP-MEM", "Hawkeye", "Leeway", "GRASP"],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let baseline = results
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("baseline cell");
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let run = results
                    .get(kind, TechniqueKind::Dbg, app, scheme)
                    .expect("scheme cell");
                let speedup = speedup_pct(baseline.cycles, run.cycles);
                per_scheme[i].push(speedup);
                cells.push(pct(speedup));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_scheme {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper GM: SHiP-MEM -5.5, Hawkeye -16.2, Leeway +0.9, GRASP +5.2.");
    dump_json("fig6", wall_ms, &[&table]);
}
