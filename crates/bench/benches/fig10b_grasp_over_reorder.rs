//! Fig. 10(b) — GRASP's speed-up over the RRIP baseline when applied on top
//! of each software reordering technique (Sort, HubSort, DBG, Gorder+DBG),
//! demonstrating that GRASP is not coupled to any one technique.
//!
//! This is the grid where the campaign runner pays off most: every dataset is
//! reordered once per technique (instead of once per app × technique ×
//! policy) and all cells run in parallel.
//!
//! Paper reference: GRASP averages +4.4%, +4.2%, +5.2% and +5.0% on top of
//! Sort, HubSort, DBG and Gorder respectively.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, harness_scale, pct};
use grasp_core::campaign::Campaign;
use grasp_core::compare::{geometric_mean_speedup, speedup_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 10(b): GRASP on top of different reordering techniques");
    let scale = harness_scale();
    let techniques = [
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
        TechniqueKind::GorderDbg,
    ];
    let started = std::time::Instant::now();
    let results = Campaign::new(scale)
        .datasets(&DatasetKind::HIGH_SKEW)
        .techniques(&techniques)
        .apps(&AppKind::ALL)
        .policies(&[PolicyKind::Rrip, PolicyKind::Grasp])
        .run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 10b — GRASP speed-up (%) over RRIP per reordering technique",
        &[
            "app",
            "dataset",
            "over Sort",
            "over HubSort",
            "over DBG",
            "over Gorder(+DBG)",
        ],
    );
    let mut per_technique: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];

    for app in AppKind::ALL {
        for kind in DatasetKind::HIGH_SKEW {
            let mut cells = vec![app.label().to_owned(), kind.label().to_owned()];
            for (i, &technique) in techniques.iter().enumerate() {
                let baseline = results
                    .get(kind, technique, app, PolicyKind::Rrip)
                    .expect("baseline cell");
                let grasp = results
                    .get(kind, technique, app, PolicyKind::Grasp)
                    .expect("grasp cell");
                let speedup = speedup_pct(baseline.cycles, grasp.cycles);
                per_technique[i].push(speedup);
                cells.push(pct(speedup));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_technique {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!("Paper averages: +4.4 (Sort), +4.2 (HubSort), +5.2 (DBG), +5.0 (Gorder).");
    dump_json("fig10b", wall_ms, &[&table]);
}
