//! Fig. 9 — robustness on the adversarial low-skew (`fr`) and no-skew (`uni`)
//! datasets: PIN-75, PIN-100 and GRASP over the RRIP baseline. Runs as one
//! parallel campaign.
//!
//! Paper reference: GRASP provides a net speed-up on 9 of 10 datapoints (max
//! slowdown 0.1%), whereas PIN-75 and PIN-100 cause slowdowns on almost every
//! datapoint (up to 5.3% and 14.2%).

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dump_json, figure_campaign, harness_scale, pct};
use grasp_core::compare::{geometric_mean_speedup, speedup_pct};
use grasp_core::datasets::DatasetKind;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;

fn main() {
    banner("Fig. 9: robustness on low-/no-skew datasets");
    let scale = harness_scale();
    let schemes = [PolicyKind::Pin(75), PolicyKind::Pin(100), PolicyKind::Grasp];
    let started = std::time::Instant::now();
    let results = figure_campaign(scale, &DatasetKind::ADVERSARIAL, &AppKind::ALL, &schemes).run();
    let wall_ms = started.elapsed().as_millis();

    let mut table = Table::new(
        "Fig. 9 — speed-up (%) over RRIP on fr (low skew) and uni (no skew)",
        &["dataset", "app", "PIN-75", "PIN-100", "GRASP"],
    );
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];

    for kind in DatasetKind::ADVERSARIAL {
        for app in AppKind::ALL {
            let baseline = results
                .get(kind, TechniqueKind::Dbg, app, PolicyKind::Rrip)
                .expect("baseline cell");
            let mut cells = vec![kind.label().to_owned(), app.label().to_owned()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let run = results
                    .get(kind, TechniqueKind::Dbg, app, scheme)
                    .expect("scheme cell");
                let speedup = speedup_pct(baseline.cycles, run.cycles);
                per_scheme[i].push(speedup);
                cells.push(pct(speedup));
            }
            table.push_row(cells);
        }
    }
    let mut mean_row = vec!["GM".to_owned(), "all".to_owned()];
    for values in &per_scheme {
        mean_row.push(pct(geometric_mean_speedup(values)));
    }
    table.push_row(mean_row);
    println!("{table}");
    println!(
        "Paper: GRASP between -0.1% and +4.3%; PIN-75/PIN-100 slow down on almost all datapoints."
    );
    dump_json("fig9", wall_ms, &[&table]);
}
