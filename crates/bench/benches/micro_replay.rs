//! Micro-benchmark of the record/replay pipeline: policy sweeps on one
//! (dataset, reordering, application) cell, comparing three execution plans:
//!
//! 1. **direct** — re-execute the application and re-simulate L1/L2 for
//!    every policy;
//! 2. **buffered replay** (PR 2) — record the post-L2 stream once
//!    ([`Experiment::record`]), then replay the finished buffer per policy;
//! 3. **streaming** — record and replay **concurrently**
//!    ([`Experiment::sweep_streaming`]): frozen trace chunks flow through a
//!    bounded channel to one replayer per policy while the application is
//!    still running, so the fan-out overlaps the record phase instead of
//!    barriering on it, and the peak trace footprint is channel-depth ×
//!    chunk-size instead of the whole stream.
//!
//! The sweeps run under two hierarchies: the paper's Table VI geometry
//! (`paper`), where the 32 KiB L1 filters most traffic, and the
//! reproduction's scaled-down geometry (`scaled`), whose deliberately tiny
//! 4 KiB L1 passes an unusually large share of the stream through to the
//! LLC.
//!
//! A second section isolates the **batched replay kernel**: the same
//! 8-policy fan-out over the already-recorded stream, per-event feed
//! (decode + dispatch per record, once per policy) vs the chunk-native
//! batched fan-out (flush splitting, each flush-free run decoded
//! column-wise once and consumed by all eight stages, hoisted policy
//! dispatch, deferred statistics), asserted bit-identical. Acceptance bar:
//! batched ≥ 1.5x.
//!
//! A **record phase** section measures the other half of the pipeline: the
//! same cell recorded once through the per-event reference
//! ([`Experiment::record_scalar`] — unbuffered workspace, one upper-level
//! access per event) and once through the batched record kernel
//! ([`Experiment::record`] — the workspace buffers columns that flow through
//! `UpperLevels::access_batch` into a bulk sink), asserted bit-identical,
//! plus the cold end-to-end cost (batched record + v2 persist) that a
//! store-cold campaign pays. Acceptance bar: batched record ≥ 1.3x.
//!
//! A third section exercises the **persistent trace store**: cold = record
//! the stream and persist it (plus the 8-policy fan-out), warm = load the
//! entry back — the record phase skipped entirely — and run the same
//! fan-out. Warm results are asserted bit-identical to both the cold record
//! and the direct path; the speed-up is reported (the warm pass saves the
//! whole application + L1/L2 simulation). Store entries are published with
//! the default codec (v2 delta+varint), so the entry-bytes column tracks the
//! compressed format.
//!
//! A fourth section measures **trace compression** (format v2): the same
//! recorded stream is persisted raw (v1, 12 B/record) and delta+varint
//! (v2), comparing bytes/record and the v1→v2 ratio — both fully
//! deterministic — plus the encode/decode wall-clock against the raw load
//! time (the warm-path overhead the compression must not squander). Both
//! encodings are asserted to load back equal to the in-memory trace with a
//! bit-identical replay.
//!
//! Acceptance bars, both with bit-identical statistics asserted per cell:
//!
//! * buffered replay ≥ 3x over direct on the paper-scale 8-policy sweep
//!   (PR 2's bar);
//! * streaming ≥ 1.5x end-to-end over buffered replay on the paper-scale
//!   wide sweep. The streaming win comes from overlap and concurrent
//!   consumers, and the serial record phase bounds the ideal at ~1.7x on
//!   this workload, so the bar only applies where the margin is physically
//!   available: ≥ 4 hardware threads (recorder + at least three replay
//!   consumers). Below that — and under `GRASP_BENCH_NO_SPEEDUP_BARS=1`,
//!   which CI's trajectory job sets for shared runners — the mode still
//!   runs and is asserted bit-identical, but the bar is reported, not
//!   enforced.

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dataset, dump_json, harness_scale};
use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::{Codec, LlcTrace};
use grasp_core::campaign::{Campaign, ExecutionMode};
use grasp_core::datasets::DatasetKind;
use grasp_core::experiment::Experiment;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_core::trace_store::{TraceStore, TraceStoreKey};
use grasp_reorder::TechniqueKind;
use std::time::Instant;

/// Median wall time of three runs of `f` — single-shot fan-out timings on a
/// shared host swing far too much to compare two paths whose real gap is
/// tens of percent. No warm-up run: both sides of every comparison replay
/// the same buffered trace, so neither gets a cold-cache handicap.
fn median_time<F: FnMut()>(mut f: F) -> std::time::Duration {
    let mut times: Vec<_> = (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[1]
}

const SWEEP: [PolicyKind; 8] = [
    PolicyKind::Lru,
    PolicyKind::Srrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(75),
    PolicyKind::Grasp,
];

/// The streaming comparison sweeps the full policy zoo plus a PIN-X
/// parameter ladder — the shape of a real design-space exploration, and wide
/// enough that the replay fan-out is a meaningful share of the buffered
/// pipeline's end-to-end time.
const WIDE_SWEEP: [PolicyKind; 20] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(10),
    PolicyKind::Pin(25),
    PolicyKind::Pin(30),
    PolicyKind::Pin(40),
    PolicyKind::Pin(50),
    PolicyKind::Pin(60),
    PolicyKind::Pin(75),
    PolicyKind::Pin(90),
    PolicyKind::Pin(100),
    PolicyKind::GraspHintsOnly,
    PolicyKind::GraspInsertionOnly,
    PolicyKind::Grasp,
];

fn main() {
    banner("micro: direct vs buffered replay vs streaming policy sweeps on one cell");
    let scale = harness_scale();
    let ds = dataset(DatasetKind::Twitter, scale);
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(
        "Record-once / replay-many vs direct (8-policy sweep, one cell)",
        &[
            "hierarchy",
            "direct ms",
            "replay ms",
            "speed-up",
            "trace records",
        ],
    );
    // The worker count is machine-dependent, so it is reported in prose
    // below, never in the table (the bench-diff trajectory gate compares
    // titles and non-timing cells across machines).
    let mut streaming_table = Table::new(
        format!(
            "Streaming vs buffered replay ({}-policy sweep)",
            WIDE_SWEEP.len()
        ),
        &["hierarchy", "buffered ms", "streaming ms", "speed-up"],
    );
    let mut batched_table = Table::new(
        "Batched replay: chunk-native kernel vs per-event feed (8-policy fan-out)",
        &["hierarchy", "per-event ms", "batched ms", "speed-up"],
    );
    let mut record_table = Table::new(
        "Record phase: batched kernel vs per-event record",
        &[
            "hierarchy",
            "per-event ms",
            "batched ms",
            "speed-up",
            "record+persist ms",
        ],
    );
    let mut store_table = Table::new(
        "Trace store: cold (record + persist) vs warm (load + replay, record skipped)",
        &["hierarchy", "cold ms", "warm ms", "speed-up", "entry bytes"],
    );
    let mut compression_table = Table::new(
        "Trace compression: raw (v1) vs delta+varint (v2)",
        &[
            "hierarchy",
            "raw B/rec",
            "v2 B/rec",
            "ratio",
            "raw load ms",
            "encode ms",
            "decode ms",
        ],
    );
    let store_dir =
        std::env::temp_dir().join(format!("grasp-micro-replay-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = TraceStore::open(&store_dir).expect("bench trace store opens");
    let mut total_ms = 0u128;
    let mut paper_speedup = 0.0;
    let mut paper_streaming_speedup = 0.0;
    let mut paper_batched_speedup = 0.0;
    let mut paper_record_speedup = 0.0;
    for (label, hierarchy) in [
        ("paper (Table VI)", HierarchyConfig::paper_scale()),
        ("scaled", scale.hierarchy()),
    ] {
        let exp = Experiment::new(ds.graph.clone(), AppKind::PageRank)
            .with_hierarchy(hierarchy)
            .with_reordering(TechniqueKind::Dbg);

        // Warm up allocators and the graph working set once.
        let _ = exp.run(PolicyKind::Lru);

        let started = Instant::now();
        let direct: Vec<_> = SWEEP.iter().map(|&p| exp.run(p)).collect();
        let direct_time = started.elapsed();

        let started = Instant::now();
        let recorded = exp.record();
        let replayed: Vec<_> = SWEEP.iter().map(|&p| recorded.replay(p)).collect();
        let replay_time = started.elapsed();

        for (a, b) in direct.iter().zip(&replayed) {
            assert_eq!(
                a.stats, b.stats,
                "{label}/{}: replay diverged from the direct path",
                a.policy
            );
        }

        let speedup = direct_time.as_secs_f64() / replay_time.as_secs_f64().max(1e-9);
        if label.starts_with("paper") {
            paper_speedup = speedup;
        }
        total_ms += (direct_time + replay_time).as_millis();
        table.push_row(vec![
            label.into(),
            format!("{:.1}", direct_time.as_secs_f64() * 1e3),
            format!("{:.1}", replay_time.as_secs_f64() * 1e3),
            format!("{speedup:.2}x"),
            recorded.trace().len().to_string(),
        ]);

        // The batched-kernel comparison: the same 8-policy fan-out over the
        // already-recorded stream, once through the per-event scalar path
        // (decode + dispatch per record, once per policy) and once through
        // the chunk-native batched fan-out (flush splitting, each tile
        // decoded column-wise once for all eight stages, hoisted policy
        // dispatch, deferred statistics). Record time is excluded: the
        // kernel's job is exactly the replay fan-out. Both sides take the
        // median of three runs — single-shot fan-out timings swing by tens
        // of percent on a loaded host.
        let mut scalar_fanout = Vec::new();
        let scalar_time = median_time(|| {
            scalar_fanout = SWEEP.iter().map(|&p| recorded.replay_scalar(p)).collect();
        });

        let mut batched_fanout = Vec::new();
        let batched_time = median_time(|| {
            batched_fanout = recorded.replay_fanout(&SWEEP);
        });

        for (a, b) in scalar_fanout.iter().zip(&batched_fanout) {
            assert_eq!(
                a.stats, b.stats,
                "{label}/{}: batched replay diverged from the per-event path",
                a.policy
            );
        }

        let batched_speedup = scalar_time.as_secs_f64() / batched_time.as_secs_f64().max(1e-9);
        if label.starts_with("paper") {
            paper_batched_speedup = batched_speedup;
        }
        total_ms += (scalar_time + batched_time).as_millis();
        batched_table.push_row(vec![
            label.into(),
            format!("{:.1}", scalar_time.as_secs_f64() * 1e3),
            format!("{:.1}", batched_time.as_secs_f64() * 1e3),
            format!("{batched_speedup:.2}x"),
        ]);

        // The record-phase comparison: the same cell recorded once through
        // the per-event reference (unbuffered workspace, one
        // `UpperLevels::access` per event) and once through the batched
        // record kernel (buffered workspace → `access_batch` → bulk sink).
        // Both sides run the full application, so this measures exactly what
        // a store-cold campaign pays before any replay can start. The final
        // column adds the v2 persist to the batched record — the whole cold
        // end-to-end cost of populating a trace-store entry.
        let mut scalar_recorded = None;
        let record_scalar_time = median_time(|| {
            scalar_recorded = Some(exp.record_scalar());
        });
        let mut batched_recorded = None;
        let record_batched_time = median_time(|| {
            batched_recorded = Some(exp.record());
        });
        let scalar_recorded = scalar_recorded.expect("timed at least once");
        let batched_recorded = batched_recorded.expect("timed at least once");
        assert_eq!(
            scalar_recorded.trace(),
            batched_recorded.trace(),
            "{label}: batched recording diverged from the per-event record"
        );
        let started = Instant::now();
        let cold_end_to_end = exp.record();
        let mut persisted = Vec::new();
        cold_end_to_end
            .trace()
            .write_to(&mut persisted)
            .expect("v2 persist of the cold recording");
        let record_persist_time = started.elapsed();
        let record_speedup =
            record_scalar_time.as_secs_f64() / record_batched_time.as_secs_f64().max(1e-9);
        if label.starts_with("paper") {
            paper_record_speedup = record_speedup;
        }
        total_ms += (record_scalar_time + record_batched_time + record_persist_time).as_millis();
        record_table.push_row(vec![
            label.into(),
            format!("{:.1}", record_scalar_time.as_secs_f64() * 1e3),
            format!("{:.1}", record_batched_time.as_secs_f64() * 1e3),
            format!("{record_speedup:.2}x"),
            format!("{:.1}", record_persist_time.as_secs_f64() * 1e3),
        ]);

        // The streaming comparison: the same wide sweep, once as PR 2's
        // buffered record-then-fan-out barrier, once through the streaming
        // pipeline with the record phase overlapped by concurrent consumers.
        let started = Instant::now();
        let wide_recorded = exp.record();
        let wide_buffered: Vec<_> = WIDE_SWEEP
            .iter()
            .map(|&p| wide_recorded.replay(p))
            .collect();
        drop(wide_recorded);
        let buffered_time = started.elapsed();

        let started = Instant::now();
        let streamed = exp.sweep_streaming(&WIDE_SWEEP, workers.saturating_sub(1).max(1));
        let streaming_time = started.elapsed();

        for (a, b) in wide_buffered.iter().zip(&streamed) {
            assert_eq!(
                a.stats, b.stats,
                "{label}/{}: streaming diverged from buffered replay",
                a.policy
            );
        }

        let streaming_speedup =
            buffered_time.as_secs_f64() / streaming_time.as_secs_f64().max(1e-9);
        if label.starts_with("paper") {
            paper_streaming_speedup = streaming_speedup;
        }
        total_ms += (buffered_time + streaming_time).as_millis();
        streaming_table.push_row(vec![
            label.into(),
            format!("{:.1}", buffered_time.as_secs_f64() * 1e3),
            format!("{:.1}", streaming_time.as_secs_f64() * 1e3),
            format!("{streaming_speedup:.2}x"),
        ]);

        // The trace-store comparison: cold = record the stream (application
        // + upper levels) + persist it + fan out the sweep; warm = load the
        // persisted entry — the record phase skipped entirely — and fan out
        // the same sweep. Keys fork on the hierarchy hash, so the paper and
        // scaled geometries land in separate entries.
        let key = TraceStoreKey::new(
            DatasetKind::Twitter,
            scale,
            TechniqueKind::Dbg,
            AppKind::PageRank,
            exp.hierarchy(),
            exp.app_config(),
        );
        let started = Instant::now();
        let cold_recorded = exp.record();
        let entry_bytes = store
            .publish(
                &key,
                cold_recorded.trace(),
                cold_recorded.app(),
                cold_recorded.instructions(),
            )
            .expect("bench store publish");
        let cold: Vec<_> = SWEEP.iter().map(|&p| cold_recorded.replay(p)).collect();
        let cold_time = started.elapsed();

        let started = Instant::now();
        let stored = store.load(&key).expect("warm store lookup must hit");
        let warm_recorded = exp.recorded_from_parts(stored.trace, stored.app, stored.instructions);
        let warm: Vec<_> = SWEEP.iter().map(|&p| warm_recorded.replay(p)).collect();
        let warm_time = started.elapsed();

        for ((a, b), c) in cold.iter().zip(&warm).zip(&direct) {
            assert_eq!(
                a.stats, b.stats,
                "{label}/{}: store-loaded replay diverged from the cold record",
                a.policy
            );
            assert_eq!(
                a.stats, c.stats,
                "{label}/{}: store pipeline diverged from the direct path",
                a.policy
            );
        }

        let store_speedup = cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
        total_ms += (cold_time + warm_time).as_millis();
        store_table.push_row(vec![
            label.into(),
            format!("{:.1}", cold_time.as_secs_f64() * 1e3),
            format!("{:.1}", warm_time.as_secs_f64() * 1e3),
            format!("{store_speedup:.2}x"),
            entry_bytes.to_string(),
        ]);

        // The compression comparison: persist the recorded stream under both
        // codecs, compare bytes/record and the decode overhead against the
        // raw load (the price the warm path pays for the smaller store).
        let trace = recorded.trace();
        let records = trace.len().max(1) as f64;
        let mut raw_bytes = Vec::new();
        trace
            .write_to_with(&mut raw_bytes, Codec::Raw)
            .expect("raw encode");
        let started = Instant::now();
        let mut v2_bytes = Vec::new();
        trace
            .write_to_with(&mut v2_bytes, Codec::DeltaVarint)
            .expect("delta-varint encode");
        let encode_time = started.elapsed();
        let started = Instant::now();
        let raw_loaded = LlcTrace::read_from(&mut raw_bytes.as_slice()).expect("raw load");
        let raw_load_time = started.elapsed();
        let started = Instant::now();
        let v2_loaded = LlcTrace::read_from(&mut v2_bytes.as_slice()).expect("v2 decode");
        let decode_time = started.elapsed();
        assert_eq!(&raw_loaded, trace, "{label}: raw roundtrip diverged");
        assert_eq!(&v2_loaded, trace, "{label}: v2 roundtrip diverged");
        let llc = exp.hierarchy().llc;
        let from_v2 = v2_loaded.replay(llc, PolicyKind::Grasp.build_dispatch(&llc));
        let from_raw = raw_loaded.replay(llc, PolicyKind::Grasp.build_dispatch(&llc));
        assert_eq!(
            from_raw, from_v2,
            "{label}: decompressed replay diverged from the raw replay"
        );
        let ratio = raw_bytes.len() as f64 / v2_bytes.len().max(1) as f64;
        total_ms += (encode_time + raw_load_time + decode_time).as_millis();
        compression_table.push_row(vec![
            label.into(),
            format!("{:.2}", raw_bytes.len() as f64 / records),
            format!("{:.2}", v2_bytes.len() as f64 / records),
            format!("{ratio:.2}x"),
            format!("{:.1}", raw_load_time.as_secs_f64() * 1e3),
            format!("{:.1}", encode_time.as_secs_f64() * 1e3),
            format!("{:.1}", decode_time.as_secs_f64() * 1e3),
        ]);
        assert!(
            ratio >= 2.5,
            "{label}: v2 compression {ratio:.2}x fell below the 2.5x bar on the recorded stream"
        );
    }
    // The campaign-scheduling comparison: a many-stream grid (4 datasets ×
    // 2 apps = 8 unique streams, 8-policy sweep = 64 cells) run under the
    // three campaign plans. All three pay the same dataset build + reorder
    // inside `run()`, so the gap is purely scheduling:
    //
    // * **barrier** — `ExecutionMode::Replay`: all records, hard barrier,
    //   then all replays;
    // * **sequential streaming** — `streaming_pipelines(1)`: the
    //   historical one-stream-at-a-time streaming loop;
    // * **pipelined** — the default dependency-driven scheduler: replay
    //   cells drain while later streams still record, LPT cost ordering.
    let mut campaign_table = Table::new(
        "Pipelined campaign: dependency-driven scheduler vs barrier replay vs \
         sequential streaming",
        &[
            "grid",
            "barrier ms",
            "sequential ms",
            "pipelined ms",
            "vs barrier speed-up",
            "vs sequential speed-up",
        ],
    );
    let grid = |mode: ExecutionMode| {
        Campaign::new(scale)
            .datasets(&[
                DatasetKind::Twitter,
                DatasetKind::Kron,
                DatasetKind::Uniform,
                DatasetKind::LiveJournal,
            ])
            .apps(&[AppKind::PageRank, AppKind::Sssp])
            .policies(&SWEEP)
            .execution(mode)
    };
    let started = Instant::now();
    let barrier = grid(ExecutionMode::Replay).run();
    let barrier_time = started.elapsed();
    let started = Instant::now();
    let sequential = grid(ExecutionMode::Streaming).streaming_pipelines(1).run();
    let sequential_time = started.elapsed();
    let started = Instant::now();
    let pipelined = grid(ExecutionMode::Pipelined).run();
    let pipelined_time = started.elapsed();
    assert_eq!(pipelined.len(), 4 * 2 * SWEEP.len());
    assert!(
        !pipelined.scheduler_events().is_empty(),
        "the pipelined plan must log its schedule"
    );
    for ((a, b), c) in pipelined.iter().zip(barrier.iter()).zip(sequential.iter()) {
        assert_eq!(a.cell, b.cell, "grid order must not depend on the plan");
        assert_eq!(a.cell, c.cell, "grid order must not depend on the plan");
        assert_eq!(
            a.result.stats, b.result.stats,
            "{}/{}/{}: pipelined diverged from the barrier plan",
            a.cell.dataset, a.cell.app, a.cell.policy
        );
        assert_eq!(
            a.result.stats, c.result.stats,
            "{}/{}/{}: pipelined diverged from sequential streaming",
            a.cell.dataset, a.cell.app, a.cell.policy
        );
    }
    let pipelined_vs_barrier = barrier_time.as_secs_f64() / pipelined_time.as_secs_f64().max(1e-9);
    let pipelined_vs_sequential =
        sequential_time.as_secs_f64() / pipelined_time.as_secs_f64().max(1e-9);
    total_ms += (barrier_time + sequential_time + pipelined_time).as_millis();
    campaign_table.push_row(vec![
        format!("8 streams x {} policies", SWEEP.len()),
        format!("{:.1}", barrier_time.as_secs_f64() * 1e3),
        format!("{:.1}", sequential_time.as_secs_f64() * 1e3),
        format!("{:.1}", pipelined_time.as_secs_f64() * 1e3),
        format!("{pipelined_vs_barrier:.2}x"),
        format!("{pipelined_vs_sequential:.2}x"),
    ]);

    let store_stats = store.stats();
    assert_eq!(
        store_stats.hits, 2,
        "both hierarchies' warm passes must be served from the store"
    );
    std::fs::remove_dir_all(&store_dir).ok();
    println!("{table}");
    println!("{batched_table}");
    println!("{record_table}");
    println!("{streaming_table}");
    println!("{campaign_table}");
    println!("{store_table}");
    println!("{compression_table}");
    println!("trace store traffic: {store_stats}");
    println!(
        "stats bit-identical across all {} + {} policies on both hierarchies \
         ({workers} worker(s) for the streaming sweep)",
        SWEEP.len(),
        WIDE_SWEEP.len()
    );
    // GRASP_BENCH_NO_SPEEDUP_BARS demotes the speed-up bars to reports: CI's
    // bench-trajectory job sets it because shared runners make hard perf
    // asserts flaky, and that job's gate is the table diff, not the bars.
    let enforce_bars = std::env::var_os("GRASP_BENCH_NO_SPEEDUP_BARS").is_none();
    if enforce_bars {
        assert!(
            paper_speedup >= 3.0,
            "paper-scale pipeline speed-up {paper_speedup:.2}x fell below the 3x acceptance bar"
        );
    } else {
        println!("buffered-replay bar (>=3x) reported only: measured {paper_speedup:.2}x");
    }
    // The streaming bar needs headroom, not just parallelism: the serial
    // record phase bounds the ideal at ~(record + fan-out)/record ≈ 1.7x on
    // this workload, so with fewer than three replay consumers (4 hardware
    // threads) channel overhead and the consumer tail eat the margin and
    // the bar would flake without any real regression.
    if enforce_bars && workers >= 4 {
        assert!(
            paper_streaming_speedup >= 1.5,
            "paper-scale streaming speed-up {paper_streaming_speedup:.2}x fell below the \
             1.5x acceptance bar ({workers} workers)"
        );
    } else {
        println!(
            "streaming speed-up bar (>=1.5x, measured {paper_streaming_speedup:.2}x) \
             {}: needs >=4 hardware threads (recorder + >=3 replay consumers) and \
             enforcement enabled ({workers} worker(s))",
            if enforce_bars {
                "skipped"
            } else {
                "reported only"
            }
        );
    }
    // The batched-kernel bar rides the same gate as the streaming one:
    // single-core shared runners (CI's trajectory box) time too noisily for a
    // hard perf assert, so the bar is enforced only where a dedicated
    // multi-core box makes the measurement stable.
    if enforce_bars && workers >= 4 {
        assert!(
            paper_batched_speedup >= 1.5,
            "paper-scale batched replay speed-up {paper_batched_speedup:.2}x fell below \
             the 1.5x acceptance bar over the per-event feed"
        );
    } else {
        println!(
            "batched-replay bar (>=1.5x vs per-event feed, measured \
             {paper_batched_speedup:.2}x) {}: needs >=4 hardware threads and enforcement \
             enabled ({workers} worker(s))",
            if enforce_bars {
                "skipped"
            } else {
                "reported only"
            }
        );
    }
    // The pipelined-campaign bar rides the same gate: on a single worker
    // every plan degenerates to the same serial work (the scheduler can
    // only win wall-clock where workers can actually overlap record and
    // replay), so the bar is enforced only at >= 4 hardware threads.
    if enforce_bars && workers >= 4 {
        assert!(
            pipelined_vs_barrier >= 1.3,
            "pipelined campaign speed-up {pipelined_vs_barrier:.2}x fell below the 1.3x \
             acceptance bar over the barrier plan ({workers} workers)"
        );
    } else {
        println!(
            "pipelined-campaign bar (>=1.3x vs barrier replay, measured \
             {pipelined_vs_barrier:.2}x; vs sequential streaming \
             {pipelined_vs_sequential:.2}x) {}: needs >=4 hardware threads and \
             enforcement enabled ({workers} worker(s))",
            if enforce_bars {
                "skipped"
            } else {
                "reported only"
            }
        );
    }
    // The record-phase bar rides the same gate: the comparison is two full
    // application runs, so shared single-core runners time it too noisily
    // for a hard assert.
    if enforce_bars && workers >= 4 {
        assert!(
            paper_record_speedup >= 1.3,
            "paper-scale batched record speed-up {paper_record_speedup:.2}x fell below \
             the 1.3x acceptance bar over the per-event record"
        );
    } else {
        println!(
            "batched-record bar (>=1.3x vs per-event record, measured \
             {paper_record_speedup:.2}x) {}: needs >=4 hardware threads and enforcement \
             enabled ({workers} worker(s))",
            if enforce_bars {
                "skipped"
            } else {
                "reported only"
            }
        );
    }
    dump_json(
        "micro_replay",
        total_ms,
        &[
            &table,
            &batched_table,
            &record_table,
            &streaming_table,
            &campaign_table,
            &store_table,
            &compression_table,
        ],
    );
}
