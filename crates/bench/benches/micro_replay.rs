//! Micro-benchmark of the record-once / replay-many pipeline: an 8-policy
//! LLC sweep on one (dataset, reordering, application) cell, direct path vs
//! record + replay.
//!
//! The direct path re-executes the application and re-simulates L1/L2 for
//! every policy; the replay path pays them once ([`Experiment::record`]) and
//! then drives only the LLC stage from the recorded post-L2 stream. The
//! sweep runs under two hierarchies:
//!
//! * the paper's Table VI geometry (`paper`), where the 32 KiB L1 filters
//!   most traffic and the pipeline's advantage is largest, and
//! * the reproduction's scaled-down geometry (`scaled`), whose deliberately
//!   tiny 4 KiB L1 passes an unusually large share of the stream through to
//!   the LLC — the worst case for replay.
//!
//! The acceptance bar for the pipeline is a ≥3x end-to-end speed-up on the
//! paper-scale sweep, with bit-identical statistics on every cell (asserted
//! here, not just eyeballed).

use grasp_analytics::apps::AppKind;
use grasp_bench::{banner, dataset, dump_json, harness_scale};
use grasp_cachesim::config::HierarchyConfig;
use grasp_core::datasets::DatasetKind;
use grasp_core::experiment::Experiment;
use grasp_core::policy::PolicyKind;
use grasp_core::report::Table;
use grasp_reorder::TechniqueKind;
use std::time::Instant;

const SWEEP: [PolicyKind; 8] = [
    PolicyKind::Lru,
    PolicyKind::Srrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(75),
    PolicyKind::Grasp,
];

fn main() {
    banner("micro: direct vs record/replay, 8-policy sweep on one cell");
    let scale = harness_scale();
    let ds = dataset(DatasetKind::Twitter, scale);

    let mut table = Table::new(
        "Record-once / replay-many vs direct (8-policy sweep, one cell)",
        &[
            "hierarchy",
            "direct ms",
            "replay ms",
            "speed-up",
            "trace records",
        ],
    );
    let mut total_ms = 0u128;
    let mut paper_speedup = 0.0;
    for (label, hierarchy) in [
        ("paper (Table VI)", HierarchyConfig::paper_scale()),
        ("scaled", scale.hierarchy()),
    ] {
        let exp = Experiment::new(ds.graph.clone(), AppKind::PageRank)
            .with_hierarchy(hierarchy)
            .with_reordering(TechniqueKind::Dbg);

        // Warm up allocators and the graph working set once.
        let _ = exp.run(PolicyKind::Lru);

        let started = Instant::now();
        let direct: Vec<_> = SWEEP.iter().map(|&p| exp.run(p)).collect();
        let direct_time = started.elapsed();

        let started = Instant::now();
        let recorded = exp.record();
        let replayed: Vec<_> = SWEEP.iter().map(|&p| recorded.replay(p)).collect();
        let replay_time = started.elapsed();

        for (a, b) in direct.iter().zip(&replayed) {
            assert_eq!(
                a.stats, b.stats,
                "{label}/{}: replay diverged from the direct path",
                a.policy
            );
        }

        let speedup = direct_time.as_secs_f64() / replay_time.as_secs_f64().max(1e-9);
        if label.starts_with("paper") {
            paper_speedup = speedup;
        }
        total_ms += (direct_time + replay_time).as_millis();
        table.push_row(vec![
            label.into(),
            format!("{:.1}", direct_time.as_secs_f64() * 1e3),
            format!("{:.1}", replay_time.as_secs_f64() * 1e3),
            format!("{speedup:.2}x"),
            recorded.trace().len().to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "stats bit-identical across all {} policies on both hierarchies",
        SWEEP.len()
    );
    assert!(
        paper_speedup >= 3.0,
        "paper-scale pipeline speed-up {paper_speedup:.2}x fell below the 3x acceptance bar"
    );
    dump_json("micro_replay", total_ms, &[&table]);
}
