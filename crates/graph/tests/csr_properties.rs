//! Property-based tests for the graph substrate.

use grasp_graph::generators::{ChungLu, GraphGenerator, Rmat, SmallWorld, Uniform};
use grasp_graph::types::Direction;
use grasp_graph::{Csr, EdgeList};
use proptest::prelude::*;

/// Strategy producing an arbitrary small edge list over 2..=64 vertices.
fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (2u64..=64).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=16);
        proptest::collection::vec(edge, 0..256).prop_map(move |pairs| {
            let mut el = EdgeList::new(n);
            for (s, d, w) in pairs {
                el.push_weighted(s, d, w).unwrap();
            }
            el
        })
    })
}

proptest! {
    /// Degree sums always equal edge count in both directions.
    #[test]
    fn degree_sums_match_edge_count(el in arb_edge_list()) {
        if el.vertex_count() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&el).unwrap();
        let out_sum: u64 = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: u64 = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
        prop_assert_eq!(g.edge_count(), el.edge_count() as u64);
    }

    /// Every edge of the input appears in both the out- and in-adjacency.
    #[test]
    fn edges_appear_in_both_directions(el in arb_edge_list()) {
        if el.vertex_count() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&el).unwrap();
        for e in el.iter() {
            prop_assert!(g.out_neighbors(e.src).contains(&e.dst));
            prop_assert!(g.in_neighbors(e.dst).contains(&e.src));
        }
    }

    /// Transposition is an involution and swaps in/out degrees.
    #[test]
    fn transpose_involution(el in arb_edge_list()) {
        if el.vertex_count() == 0 { return Ok(()); }
        let g = Csr::from_edge_list(&el).unwrap();
        let t = g.transpose();
        for v in g.vertices() {
            prop_assert_eq!(g.out_degree(v), t.in_degree(v));
            prop_assert_eq!(g.in_degree(v), t.out_degree(v));
        }
        prop_assert_eq!(t.transpose(), g);
    }

    /// Binary round trip preserves the edge list exactly.
    #[test]
    fn binary_io_round_trip(el in arb_edge_list()) {
        let bytes = grasp_graph::io::to_binary(&el);
        let parsed = grasp_graph::io::from_binary(&bytes).unwrap();
        prop_assert_eq!(parsed, el);
    }

    /// Text round trip preserves edge endpoints and weights.
    #[test]
    fn text_io_round_trip(el in arb_edge_list()) {
        let mut buf = Vec::new();
        grasp_graph::io::write_text_edge_list(&mut buf, &el).unwrap();
        let parsed = grasp_graph::io::read_text_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(parsed.edge_count(), el.edge_count());
        for (a, b) in parsed.iter().zip(el.iter()) {
            prop_assert_eq!(a, b);
        }
    }
}

#[test]
fn generators_cover_the_requested_scale() {
    let cases: Vec<(Box<dyn GraphGenerator>, usize)> = vec![
        (Box::new(Rmat::new(9, 8)), 512),
        (Box::new(Uniform::new(300, 4)), 300),
        (Box::new(ChungLu::new(300, 4, 2.2)), 300),
        (Box::new(SmallWorld::new(300, 4, 0.05)), 300),
    ];
    for (g, expected_vertices) in cases {
        let csr = g.generate(123);
        assert_eq!(csr.vertex_count(), expected_vertices, "{}", g.name());
        assert!(csr.edge_count() > 0);
    }
}

#[test]
fn skew_ordering_across_generators_matches_expectations() {
    // Skew (hot-edge coverage minus hot-vertex fraction) should be ordered:
    // R-MAT (high) > Chung-Lu gamma=2.2 (moderate) > uniform (none).
    use grasp_graph::degree::SkewReport;
    let rmat = Rmat::new(12, 16).generate(5);
    let cl = ChungLu::new(1 << 12, 16, 2.2).generate(5);
    let uni = Uniform::new(1 << 12, 16).generate(5);
    let s_rmat = SkewReport::for_in_edges(&rmat).skew_index();
    let s_cl = SkewReport::for_in_edges(&cl).skew_index();
    let s_uni = SkewReport::for_in_edges(&uni).skew_index();
    assert!(s_rmat > s_uni, "rmat {s_rmat} uni {s_uni}");
    assert!(s_cl > s_uni, "cl {s_cl} uni {s_uni}");
}

#[test]
fn in_and_out_skew_are_both_reported() {
    let g = Rmat::new(10, 8).generate(1);
    let in_edges = grasp_graph::SkewReport::for_in_edges(&g);
    let out_edges = grasp_graph::SkewReport::for_out_edges(&g);
    assert_eq!(in_edges.direction(), Direction::In);
    assert_eq!(out_edges.direction(), Direction::Out);
}
