//! Property-based and typed-error tests for on-disk binary CSR ingestion.
//!
//! The central property: for any edge list — including self-loops, duplicate
//! edges and isolated vertices — ingesting to the on-disk format and reading
//! it back through either backing (mmap view or in-memory decode) yields a
//! graph indistinguishable from `Csr::from_edge_list` on the original list.

use grasp_graph::ingest::{self, DiskCsrError, MappedCsr};
use grasp_graph::{Csr, EdgeList, GraphView};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A scratch directory unique to this process + test invocation.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "grasp-ingest-prop-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Arbitrary small edge lists biased toward the tricky shapes: self-loops,
/// duplicate edges, and vertex counts larger than any endpoint (isolated
/// vertices at the top of the ID range).
fn arb_edge_list() -> impl Strategy<Value = EdgeList> {
    (1u64..=48, 0u64..=8).prop_flat_map(|(n, spare)| {
        let edge = (0..n as u32, 0..n as u32, 1u32..=4);
        proptest::collection::vec(edge, 1..128).prop_map(move |pairs| {
            // `spare` extra vertices beyond the largest endpoint stay
            // isolated (degree 0 in both directions).
            let mut el = EdgeList::new(n + spare);
            for (s, d, w) in pairs {
                el.push_weighted(s, d, w).unwrap();
                if s == d {
                    // Duplicate some self-loops to stress duplicate handling.
                    el.push_weighted(s, d, w).unwrap();
                }
            }
            el
        })
    })
}

fn assert_views_equal(expected: &Csr, actual: &dyn GraphView) {
    assert_eq!(actual.vertex_count(), expected.vertex_count());
    assert_eq!(actual.edge_count(), expected.edge_count());
    for v in expected.vertices() {
        assert_eq!(actual.out_neighbors(v), expected.out_neighbors(v), "v={v}");
        assert_eq!(actual.in_neighbors(v), expected.in_neighbors(v), "v={v}");
        assert_eq!(actual.out_weights(v), expected.out_weights(v), "v={v}");
        assert_eq!(actual.in_weights(v), expected.in_weights(v), "v={v}");
        assert_eq!(actual.out_edge_offset(v), expected.out_edge_offset(v));
        assert_eq!(actual.in_edge_offset(v), expected.in_edge_offset(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// edge list → binary CSR on disk → mmap view == in-memory CSR, for any
    /// input shape and any ingest thread count.
    #[test]
    fn disk_round_trip_matches_in_memory(input in (arb_edge_list(), 1usize..=4)) {
        let (el, threads) = input;
        let expected = Csr::from_edge_list(&el).unwrap();
        let dir = scratch_dir("roundtrip");
        let report = ingest::ingest_edge_list(&el, &dir, threads).unwrap();
        prop_assert_eq!(report.vertex_count, expected.vertex_count() as u64);
        prop_assert_eq!(report.edge_count, expected.edge_count());

        // The mmap-backed view serves identical adjacency data...
        let mapped = MappedCsr::open(&dir).unwrap();
        mapped.verify().unwrap();
        assert_views_equal(&expected, &mapped);

        // ...and the eager in-memory decode reconstructs the same `Csr`.
        let loaded = ingest::load_csr(&dir).unwrap();
        prop_assert_eq!(&loaded, &expected);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The content hash identifies the graph: independent of ingest thread
    /// count, changed by any structural difference.
    #[test]
    fn content_hash_is_structural(el in arb_edge_list()) {
        let a = scratch_dir("hash-a");
        let b = scratch_dir("hash-b");
        let one = ingest::ingest_edge_list(&el, &a, 1).unwrap();
        let four = ingest::ingest_edge_list(&el, &b, 4).unwrap();
        prop_assert_eq!(one.content_hash, four.content_hash);

        // Appending one edge must change the hash.
        let mut more = el.clone();
        more.push(0, 0).unwrap();
        let c = scratch_dir("hash-c");
        let grown = ingest::ingest_edge_list(&more, &c, 2).unwrap();
        prop_assert!(one.content_hash != grown.content_hash);

        for dir in [a, b, c] {
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

fn sample_graph_dir(tag: &str) -> PathBuf {
    let mut el = EdgeList::new(6);
    for (s, d, w) in [(0, 1, 2), (1, 2, 3), (2, 0, 5), (3, 3, 1), (0, 1, 2)] {
        el.push_weighted(s, d, w).unwrap();
    }
    let dir = scratch_dir(tag);
    ingest::ingest_edge_list(&el, &dir, 2).unwrap();
    dir
}

#[test]
fn truncated_column_is_a_typed_error() {
    let dir = sample_graph_dir("truncate");
    let col = dir.join("out.targets");
    let len = std::fs::metadata(&col).unwrap().len();
    let bytes = std::fs::read(&col).unwrap();
    std::fs::write(&col, &bytes[..bytes.len() - 4]).unwrap();
    match MappedCsr::open(&dir) {
        Err(DiskCsrError::Truncated {
            file,
            expected,
            found,
        }) => {
            assert_eq!(file, "out.targets");
            assert_eq!(expected, len);
            assert_eq!(found, len - 4);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_header_is_a_typed_error() {
    let dir = sample_graph_dir("flip-header");
    let header = dir.join("graph.gcsr");
    let mut bytes = std::fs::read(&header).unwrap();
    bytes[20] ^= 0x01; // inside vertex_count — covered by the header checksum
    std::fs::write(&header, bytes).unwrap();
    match ingest::read_header(&dir) {
        Err(DiskCsrError::HeaderChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected HeaderChecksumMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_column_fails_verification_with_a_typed_error() {
    let dir = sample_graph_dir("flip-column");
    let col = dir.join("in.offsets");
    let mut bytes = std::fs::read(&col).unwrap();
    bytes[8] ^= 0x80;
    std::fs::write(&col, bytes).unwrap();
    // Sizes still match, so the mmap opens — but verification catches it.
    let mapped = MappedCsr::open(&dir).unwrap();
    match mapped.verify() {
        Err(DiskCsrError::ColumnChecksumMismatch {
            column,
            stored,
            computed,
        }) => {
            assert_eq!(column, "in.offsets");
            assert_ne!(stored, computed);
        }
        other => panic!("expected ColumnChecksumMismatch, got {other:?}"),
    }
    // The eager loader refuses outright.
    assert!(ingest::load_csr(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_column_is_a_typed_error() {
    let dir = sample_graph_dir("missing");
    std::fs::remove_file(dir.join("in.targets")).unwrap();
    match MappedCsr::open(&dir) {
        Err(DiskCsrError::Truncated { file, found, .. }) => {
            assert_eq!(file, "in.targets");
            assert_eq!(found, 0);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
