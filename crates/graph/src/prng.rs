//! Deterministic pseudo-random number generation.
//!
//! Every synthetic dataset, probabilistic replacement policy and property-based
//! workload in the workspace must be *exactly* reproducible from a seed so that
//! experiment tables can be regenerated bit-for-bit. This module provides two
//! small, well-known generators:
//!
//! * [`SplitMix64`] — used to expand a single `u64` seed into independent
//!   streams (and to seed [`Xoshiro256`]).
//! * [`Xoshiro256`] — xoshiro256** 1.0, the workhorse generator.
//!
//! Neither generator is cryptographically secure; they are meant purely for
//! simulation workloads.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used for seeding: a single `u64` can be expanded into as many
/// statistically independent 64-bit values as needed.
///
/// ```
/// use grasp_graph::prng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna).
///
/// The default generator for graph generation and probabilistic cache-policy
/// decisions. Construct it from a single seed with [`Xoshiro256::seed_from_u64`].
///
/// ```
/// use grasp_graph::prng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from_u64(1);
/// let x = rng.next_u64();
/// let y = rng.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator by expanding `seed` with [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Avoid the all-zero state, which is a fixed point of the generator.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's method: multiply a 64-bit random value by the bound and
        // take the high word, rejecting the small biased region.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Use the 53 high bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

impl Default for Xoshiro256 {
    fn default() -> Self {
        Self::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_by_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u32::MAX as u64] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        rng.next_below(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.0));
        }
    }

    #[test]
    fn next_bool_probability_roughly_matches() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn uniformity_of_next_below() {
        // A coarse chi-square-free sanity check: each bucket of 8 should get
        // roughly 1/8 of the draws.
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.next_below(8) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / draws as f64;
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }
}
