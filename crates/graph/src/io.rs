//! Graph input/output.
//!
//! Two formats are supported:
//!
//! * **Text edge list** — one `src dst [weight]` triple per line, `#`-prefixed
//!   comment lines ignored. This matches the format of SNAP and KONECT
//!   downloads, so real datasets can be dropped in if available.
//! * **Compact binary** — a little-endian binary dump (magic, vertex count,
//!   edge count, then `(u32 src, u32 dst, u32 weight)` triples) for fast
//!   round-tripping of generated datasets between bench runs.

use crate::edgelist::EdgeList;
use crate::types::{Edge, EdgeWeight, VertexId};
use crate::{GraphError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary edge-list format.
const BINARY_MAGIC: &[u8; 8] = b"GRASPEL1";

/// Parses a text edge list from a reader.
///
/// Lines starting with `#` or `%` are treated as comments; blank lines are
/// skipped. Each remaining line must contain `src dst` or `src dst weight`
/// separated by whitespace.
///
/// # Errors
///
/// Returns [`GraphError::Format`] on malformed lines and [`GraphError::Io`] on
/// read failures.
pub fn read_text_edge_list<R: Read>(reader: R) -> Result<EdgeList> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_vertex: u64 = 0;
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src: VertexId = parse_field(parts.next(), line_no, "src")?;
        let dst: VertexId = parse_field(parts.next(), line_no, "dst")?;
        let weight: EdgeWeight = match parts.next() {
            Some(text) => text.parse().map_err(|_| {
                GraphError::Format(format!("line {}: invalid weight '{text}'", line_no + 1))
            })?,
            None => 1,
        };
        max_vertex = max_vertex.max(u64::from(src)).max(u64::from(dst));
        edges.push(Edge::weighted(src, dst, weight));
    }
    let vertex_count = if edges.is_empty() { 0 } else { max_vertex + 1 };
    let mut list = EdgeList::with_capacity(vertex_count, edges.len());
    for e in edges {
        list.push_edge(e)?;
    }
    Ok(list)
}

fn parse_field(field: Option<&str>, line_no: usize, name: &str) -> Result<u32> {
    let text = field
        .ok_or_else(|| GraphError::Format(format!("line {}: missing {name} field", line_no + 1)))?;
    text.parse()
        .map_err(|_| GraphError::Format(format!("line {}: invalid {name} '{text}'", line_no + 1)))
}

/// Writes a text edge list to a writer (weights included only when ≠ 1).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_text_edge_list<W: Write>(writer: W, edges: &EdgeList) -> Result<()> {
    let mut writer = BufWriter::new(writer);
    writeln!(
        writer,
        "# grasp-graph edge list: {} vertices, {} edges",
        edges.vertex_count(),
        edges.edge_count()
    )?;
    for e in edges.iter() {
        if e.weight == 1 {
            writeln!(writer, "{} {}", e.src, e.dst)?;
        } else {
            writeln!(writer, "{} {} {}", e.src, e.dst, e.weight)?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Serializes an edge list into the compact binary format.
pub fn to_binary(edges: &EdgeList) -> Bytes {
    let mut buf = BytesMut::with_capacity(24 + edges.edge_count() * 12);
    buf.put_slice(BINARY_MAGIC);
    buf.put_u64_le(edges.vertex_count());
    buf.put_u64_le(edges.edge_count() as u64);
    for e in edges.iter() {
        buf.put_u32_le(e.src);
        buf.put_u32_le(e.dst);
        buf.put_u32_le(e.weight);
    }
    buf.freeze()
}

/// Deserializes an edge list from the compact binary format.
///
/// # Errors
///
/// Returns [`GraphError::Format`] if the magic bytes or lengths do not match.
pub fn from_binary(mut data: &[u8]) -> Result<EdgeList> {
    if data.len() < 24 {
        return Err(GraphError::Format("binary edge list too short".into()));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Format("bad magic bytes".into()));
    }
    let vertex_count = data.get_u64_le();
    let edge_count = data.get_u64_le() as usize;
    if data.remaining() < edge_count * 12 {
        return Err(GraphError::Format(format!(
            "expected {} edge bytes, found {}",
            edge_count * 12,
            data.remaining()
        )));
    }
    let mut list = EdgeList::with_capacity(vertex_count, edge_count);
    for _ in 0..edge_count {
        let src = data.get_u32_le();
        let dst = data.get_u32_le();
        let weight = data.get_u32_le();
        list.push_edge(Edge::weighted(src, dst, weight))?;
    }
    Ok(list)
}

/// Reads an edge list from a file, choosing the format by extension:
/// `.bin` is the binary format, anything else is text.
///
/// # Errors
///
/// Propagates I/O and format errors.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let path = path.as_ref();
    let data = std::fs::read(path)?;
    if path.extension().map(|e| e == "bin").unwrap_or(false) {
        from_binary(&data)
    } else {
        read_text_edge_list(&data[..])
    }
}

/// Writes an edge list to a file, choosing the format by extension:
/// `.bin` is the binary format, anything else is text.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> Result<()> {
    let path = path.as_ref();
    if path.extension().map(|e| e == "bin").unwrap_or(false) {
        std::fs::write(path, to_binary(edges))?;
        Ok(())
    } else {
        let file = std::fs::File::create(path)?;
        write_text_edge_list(file, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_edges() -> EdgeList {
        let mut el = EdgeList::new(5);
        el.push(0, 1).unwrap();
        el.push_weighted(1, 2, 7).unwrap();
        el.push(4, 0).unwrap();
        el
    }

    #[test]
    fn text_round_trip() {
        let edges = sample_edges();
        let mut buf = Vec::new();
        write_text_edge_list(&mut buf, &edges).unwrap();
        let parsed = read_text_edge_list(&buf[..]).unwrap();
        assert_eq!(parsed.edge_count(), 3);
        assert_eq!(parsed.edges()[1].weight, 7);
        assert_eq!(parsed.vertex_count(), 5);
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let text = "# comment\n% another\n\n0 1\n2 3 9\n";
        let parsed = read_text_edge_list(text.as_bytes()).unwrap();
        assert_eq!(parsed.edge_count(), 2);
        assert_eq!(parsed.edges()[1].weight, 9);
    }

    #[test]
    fn text_parser_reports_malformed_lines() {
        let missing = read_text_edge_list("0\n".as_bytes());
        assert!(matches!(missing, Err(GraphError::Format(_))));
        let junk = read_text_edge_list("a b\n".as_bytes());
        assert!(matches!(junk, Err(GraphError::Format(_))));
        let bad_weight = read_text_edge_list("0 1 x\n".as_bytes());
        assert!(matches!(bad_weight, Err(GraphError::Format(_))));
    }

    #[test]
    fn empty_text_gives_empty_list() {
        let parsed = read_text_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert!(parsed.is_empty());
        assert_eq!(parsed.vertex_count(), 0);
    }

    #[test]
    fn binary_round_trip() {
        let edges = sample_edges();
        let bytes = to_binary(&edges);
        let parsed = from_binary(&bytes).unwrap();
        assert_eq!(parsed, edges);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = to_binary(&sample_edges()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(from_binary(&bytes), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncated_data() {
        let bytes = to_binary(&sample_edges());
        assert!(matches!(
            from_binary(&bytes[..bytes.len() - 4]),
            Err(GraphError::Format(_))
        ));
        assert!(matches!(
            from_binary(&bytes[..10]),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn file_round_trip_both_formats() {
        let dir = std::env::temp_dir().join("grasp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = sample_edges();

        let text_path = dir.join("edges.txt");
        write_edge_list_file(&text_path, &edges).unwrap();
        let parsed = read_edge_list_file(&text_path).unwrap();
        assert_eq!(parsed.edge_count(), edges.edge_count());

        let bin_path = dir.join("edges.bin");
        write_edge_list_file(&bin_path, &edges).unwrap();
        let parsed = read_edge_list_file(&bin_path).unwrap();
        assert_eq!(parsed, edges);
    }
}
