//! Degree statistics and skew analysis.
//!
//! The paper classifies a vertex as **hot** when its degree is greater than or
//! equal to the average degree (Sec. II-A); Table I reports, per dataset and
//! per direction, the percentage of hot vertices and the percentage of edges
//! connected to them ("edge coverage"). [`DegreeStats`] computes those numbers
//! for one direction and [`SkewReport`] packages them for the Table I
//! reproduction.

use crate::types::{Direction, VertexId};
use crate::view::GraphView;
use serde::{Deserialize, Serialize};

/// Degree statistics of a graph in one direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    direction: Direction,
    vertex_count: usize,
    edge_count: u64,
    max_degree: u64,
    hot_vertices: usize,
    hot_edges: u64,
    histogram: Vec<(u64, usize)>,
}

impl DegreeStats {
    /// Computes statistics for the given direction.
    ///
    /// A vertex is hot when `degree >= average_degree` (the paper's
    /// definition); `hot_edges` counts edges attached to hot vertices in this
    /// direction.
    pub fn new(graph: &dyn GraphView, direction: Direction) -> Self {
        let vertex_count = graph.vertex_count();
        let edge_count = graph.edge_count();
        let avg = edge_count as f64 / vertex_count as f64;
        let mut max_degree = 0u64;
        let mut hot_vertices = 0usize;
        let mut hot_edges = 0u64;
        let mut hist = std::collections::BTreeMap::new();
        for v in graph.vertices() {
            let d = graph.degree(v, direction);
            max_degree = max_degree.max(d);
            if d as f64 >= avg {
                hot_vertices += 1;
                hot_edges += d;
            }
            *hist.entry(d).or_insert(0usize) += 1;
        }
        Self {
            direction,
            vertex_count,
            edge_count,
            max_degree,
            hot_vertices,
            hot_edges,
            histogram: hist.into_iter().collect(),
        }
    }

    /// Direction the statistics were computed for.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Number of vertices in the graph.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges in the graph.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Average degree.
    pub fn average_degree(&self) -> f64 {
        self.edge_count as f64 / self.vertex_count as f64
    }

    /// Maximum degree in this direction.
    pub fn max_degree(&self) -> u64 {
        self.max_degree
    }

    /// Number of hot vertices (`degree >= average`).
    pub fn hot_vertex_count(&self) -> usize {
        self.hot_vertices
    }

    /// Fraction of vertices that are hot, in `[0, 1]`.
    pub fn hot_vertex_fraction(&self) -> f64 {
        self.hot_vertices as f64 / self.vertex_count as f64
    }

    /// Fraction of edges attached to hot vertices, in `[0, 1]`.
    pub fn hot_edge_coverage(&self) -> f64 {
        if self.edge_count == 0 {
            0.0
        } else {
            self.hot_edges as f64 / self.edge_count as f64
        }
    }

    /// Degree histogram as `(degree, vertex count)` pairs sorted by degree.
    pub fn histogram(&self) -> &[(u64, usize)] {
        &self.histogram
    }

    /// Returns the hot vertices (IDs with `degree >= average`) of `graph` in
    /// `direction`, in arbitrary order.
    pub fn hot_vertices(graph: &dyn GraphView, direction: Direction) -> Vec<VertexId> {
        let avg = graph.edge_count() as f64 / graph.vertex_count() as f64;
        graph
            .vertices()
            .filter(|&v| graph.degree(v, direction) as f64 >= avg)
            .collect()
    }
}

/// A Table I-style skew report for one direction of one dataset.
///
/// ```
/// use grasp_graph::generators::{Rmat, GraphGenerator};
/// use grasp_graph::degree::SkewReport;
///
/// let g = Rmat::new(12, 16).generate(1);
/// let r = SkewReport::for_in_edges(&g);
/// // High-skew graphs: few hot vertices covering most edges.
/// assert!(r.hot_vertices_pct() < 50.0);
/// assert!(r.edge_coverage_pct() > 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewReport {
    direction: Direction,
    hot_vertices_pct: f64,
    edge_coverage_pct: f64,
    average_degree: f64,
    max_degree: u64,
}

impl SkewReport {
    /// Builds a report from already-computed statistics.
    pub fn from_stats(stats: &DegreeStats) -> Self {
        Self {
            direction: stats.direction(),
            hot_vertices_pct: stats.hot_vertex_fraction() * 100.0,
            edge_coverage_pct: stats.hot_edge_coverage() * 100.0,
            average_degree: stats.average_degree(),
            max_degree: stats.max_degree(),
        }
    }

    /// Skew of the in-edge (pull) direction — rows #2/#3 of Table I.
    pub fn for_in_edges(graph: &dyn GraphView) -> Self {
        Self::from_stats(&DegreeStats::new(graph, Direction::In))
    }

    /// Skew of the out-edge (push) direction — rows #4/#5 of Table I.
    pub fn for_out_edges(graph: &dyn GraphView) -> Self {
        Self::from_stats(&DegreeStats::new(graph, Direction::Out))
    }

    /// Direction this report describes.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Percentage of vertices with degree ≥ average (lower = more skew).
    pub fn hot_vertices_pct(&self) -> f64 {
        self.hot_vertices_pct
    }

    /// Percentage of edges attached to hot vertices (higher = more skew).
    pub fn edge_coverage_pct(&self) -> f64 {
        self.edge_coverage_pct
    }

    /// Average degree of the graph.
    pub fn average_degree(&self) -> f64 {
        self.average_degree
    }

    /// Maximum degree in this direction.
    pub fn max_degree(&self) -> u64 {
        self.max_degree
    }

    /// A scalar skew index in `[0, 1]`: edge coverage minus hot-vertex
    /// fraction (both as fractions). Near 0 for uniform graphs, approaching 1
    /// for extremely skewed graphs.
    pub fn skew_index(&self) -> f64 {
        ((self.edge_coverage_pct - self.hot_vertices_pct) / 100.0).max(0.0)
    }
}

impl std::fmt::Display for SkewReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} edges: hot vertices {:.1}%, edge coverage {:.1}% (avg degree {:.1}, max {})",
            self.direction,
            self.hot_vertices_pct,
            self.edge_coverage_pct,
            self.average_degree,
            self.max_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::generators::{GraphGenerator, Rmat, Uniform};

    fn chain_graph() -> Csr {
        // 0 -> 1 -> 2 -> 3: every vertex has degree <= 1; average is 0.75 so
        // every vertex with an edge is "hot".
        Csr::from_edges([(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn chain_graph_stats() {
        let g = chain_graph();
        let s = DegreeStats::new(&g, Direction::Out);
        assert_eq!(s.vertex_count(), 4);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.max_degree(), 1);
        assert_eq!(s.hot_vertex_count(), 3);
        assert!((s.hot_edge_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        // Vertex 0 points to everyone: one hot vertex covers all out-edges.
        let edges: Vec<(u32, u32)> = (1..100).map(|d| (0, d)).collect();
        let g = Csr::from_edges(edges).unwrap();
        let s = DegreeStats::new(&g, Direction::Out);
        assert_eq!(s.hot_vertex_count(), 1);
        assert!((s.hot_edge_coverage() - 1.0).abs() < 1e-12);
        let r = SkewReport::from_stats(&s);
        assert!(r.skew_index() > 0.9);
    }

    #[test]
    fn histogram_sums_to_vertex_count() {
        let g = Rmat::new(10, 8).generate(2);
        let s = DegreeStats::new(&g, Direction::In);
        let total: usize = s.histogram().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.vertex_count());
        // Histogram degrees are sorted ascending.
        for w in s.histogram().windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn hot_vertices_listing_matches_count() {
        let g = Rmat::new(10, 8).generate(2);
        let s = DegreeStats::new(&g, Direction::Out);
        let hot = DegreeStats::hot_vertices(&g, Direction::Out);
        assert_eq!(hot.len(), s.hot_vertex_count());
        let avg = s.average_degree();
        for v in hot {
            assert!(g.out_degree(v) as f64 >= avg);
        }
    }

    #[test]
    fn skew_report_table1_shape_for_rmat_vs_uniform() {
        // This is the qualitative claim of Table I: for high-skew graphs a
        // small percentage of hot vertices covers a large percentage of edges,
        // whereas uniform graphs show neither property.
        let skew = Rmat::new(13, 16).generate(7);
        let flat = Uniform::new(1 << 13, 16).generate(7);
        let skew_in = SkewReport::for_in_edges(&skew);
        let flat_in = SkewReport::for_in_edges(&flat);
        assert!(skew_in.hot_vertices_pct() < 40.0);
        assert!(skew_in.edge_coverage_pct() > 60.0);
        assert!(flat_in.hot_vertices_pct() > 40.0);
        assert!(skew_in.skew_index() > flat_in.skew_index());
    }

    #[test]
    fn display_contains_key_numbers() {
        let g = chain_graph();
        let r = SkewReport::for_out_edges(&g);
        let text = r.to_string();
        assert!(text.contains("out edges"));
        assert!(text.contains('%'));
    }
}
