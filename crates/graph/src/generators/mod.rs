//! Synthetic graph generators.
//!
//! The GRASP paper evaluates on large real-world datasets (LiveJournal, PLD,
//! Twitter, Kron, SD1-ARC, Friendster, Uniform — Table V). Those datasets are
//! tens of gigabytes and are not available in this environment, so the
//! reproduction substitutes synthetic graphs that reproduce the property GRASP
//! exploits — the skewed power-law degree distribution (Table I) — at a
//! reduced scale:
//!
//! * [`Rmat`] — recursive-matrix (Kronecker) generator; with the standard
//!   `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` parameters it produces Twitter-
//!   and Kron-like high-skew graphs.
//! * [`Uniform`] — Erdős–Rényi style uniform random graph; the `uni` no-skew
//!   adversarial dataset.
//! * [`ChungLu`] — configurable power-law exponent; used to produce the
//!   lower-skew `lj`/`pl`/`fr` stand-ins.
//! * [`SmallWorld`] — Watts–Strogatz-style ring-plus-rewiring generator with
//!   near-constant degree; an alternative low-skew adversarial input.
//!
//! All generators are deterministic given a seed.

mod chung_lu;
mod rmat;
mod smallworld;
mod uniform;

pub use chung_lu::ChungLu;
pub use rmat::Rmat;
pub use smallworld::SmallWorld;
pub use uniform::Uniform;

use crate::csr::Csr;
use crate::edgelist::EdgeList;

/// A synthetic graph generator.
///
/// Implementations are configured at construction time; [`generate`] is then
/// a pure function of the seed.
///
/// [`generate`]: GraphGenerator::generate
pub trait GraphGenerator: std::fmt::Debug {
    /// Produces the edge list for this generator with the given seed.
    fn edge_list(&self, seed: u64) -> EdgeList;

    /// Produces a CSR graph with the given seed.
    ///
    /// The default implementation builds the edge list, removes self-loops,
    /// deduplicates parallel edges and assembles the CSR.
    fn generate(&self, seed: u64) -> Csr {
        let mut edges = self.edge_list(seed);
        edges.remove_self_loops();
        edges.sort_and_dedup();
        Csr::from_edge_list(&edges).expect("generators always declare at least one vertex")
    }

    /// Human-readable generator name used in reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_are_deterministic() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(Rmat::new(8, 8)),
            Box::new(Uniform::new(256, 8)),
            Box::new(ChungLu::new(256, 8, 2.1)),
            Box::new(SmallWorld::new(256, 8, 0.1)),
        ];
        for g in &gens {
            let a = g.generate(17);
            let b = g.generate(17);
            assert_eq!(
                a.edge_count(),
                b.edge_count(),
                "generator {} not deterministic",
                g.name()
            );
            for v in a.vertices() {
                assert_eq!(a.out_neighbors(v), b.out_neighbors(v));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let g = Rmat::new(8, 8);
        let a = g.generate(1);
        let b = g.generate(2);
        // Edge sets should differ in at least one adjacency list.
        let differs = a
            .vertices()
            .any(|v| a.out_neighbors(v) != b.out_neighbors(v));
        assert!(differs);
    }

    #[test]
    fn generated_graphs_have_no_self_loops_or_duplicates() {
        let gens: Vec<Box<dyn GraphGenerator>> = vec![
            Box::new(Rmat::new(9, 8)),
            Box::new(Uniform::new(512, 8)),
            Box::new(ChungLu::new(512, 8, 2.0)),
            Box::new(SmallWorld::new(512, 6, 0.2)),
        ];
        for g in &gens {
            let csr = g.generate(3);
            for v in csr.vertices() {
                let ns = csr.out_neighbors(v);
                for w in ns.windows(2) {
                    assert!(
                        w[0] < w[1],
                        "duplicate or unsorted neighbour in {}",
                        g.name()
                    );
                }
                assert!(!ns.contains(&v), "self loop in {}", g.name());
            }
        }
    }
}
