//! Watts–Strogatz-style small-world generator.
//!
//! Produces a ring lattice where every vertex connects to its `k` nearest
//! neighbours, then rewires each edge with probability `p` to a uniformly
//! random endpoint. Degrees stay within a narrow band around `k`, so this is a
//! *low-skew* graph with strong community/locality structure — a useful
//! adversarial input (alongside [`super::Uniform`]) and a stand-in for
//! structure-rich datasets when evaluating reordering techniques that try to
//! preserve community structure (DBG vs. Sort, Sec. II-E).

use super::GraphGenerator;
use crate::edgelist::EdgeList;
use crate::prng::Xoshiro256;
use crate::types::{Edge, VertexId};

/// Watts–Strogatz small-world generator.
///
/// ```
/// use grasp_graph::generators::{SmallWorld, GraphGenerator};
/// let g = SmallWorld::new(500, 6, 0.05).generate(1);
/// assert_eq!(g.vertex_count(), 500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorld {
    vertices: u64,
    neighbors_each_side: u64,
    rewire_probability: f64,
}

impl SmallWorld {
    /// Creates a generator for `vertices` vertices where each vertex links to
    /// `degree` ring neighbours (`degree / 2` on each side) and each edge is
    /// rewired with probability `rewire_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `vertices < 4`, if `vertices` exceeds `u32::MAX`, if `degree`
    /// is zero or at least `vertices`, or if `rewire_probability` is outside
    /// `[0, 1]`.
    pub fn new(vertices: u64, degree: u64, rewire_probability: f64) -> Self {
        assert!(vertices >= 4, "vertices must be at least 4");
        assert!(
            vertices <= u64::from(u32::MAX),
            "vertices must fit in a u32"
        );
        assert!(
            degree > 0 && degree < vertices,
            "degree must be in 1..vertices"
        );
        assert!(
            (0.0..=1.0).contains(&rewire_probability),
            "rewire_probability must be in [0, 1]"
        );
        Self {
            vertices,
            neighbors_each_side: (degree / 2).max(1),
            rewire_probability,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u64 {
        self.vertices
    }

    /// Number of directed edges produced (`vertices * 2 * neighbors_each_side`).
    pub fn edge_count(&self) -> u64 {
        self.vertices * 2 * self.neighbors_each_side
    }
}

impl GraphGenerator for SmallWorld {
    fn edge_list(&self, seed: u64) -> EdgeList {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = self.vertices;
        let mut edges = EdgeList::with_capacity(n, self.edge_count() as usize);
        for v in 0..n {
            for offset in 1..=self.neighbors_each_side {
                for dst in [(v + offset) % n, (v + n - offset) % n] {
                    let dst = if rng.next_bool(self.rewire_probability) {
                        rng.next_below(n)
                    } else {
                        dst
                    };
                    if dst != v {
                        edges.push_unchecked(Edge::new(v as VertexId, dst as VertexId));
                    }
                }
            }
        }
        edges
    }

    fn name(&self) -> &'static str {
        "small-world"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::types::Direction;

    #[test]
    fn counts() {
        let g = SmallWorld::new(100, 6, 0.1);
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 600);
    }

    #[test]
    #[should_panic(expected = "rewire_probability must be in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = SmallWorld::new(100, 6, 1.5);
    }

    #[test]
    #[should_panic(expected = "degree must be in 1..vertices")]
    fn excessive_degree_panics() {
        let _ = SmallWorld::new(10, 10, 0.1);
    }

    #[test]
    fn zero_rewire_is_a_ring_lattice() {
        let g = SmallWorld::new(64, 4, 0.0).generate(1);
        // Every vertex points to its two neighbours on each side.
        assert_eq!(g.out_neighbors(10), &[8, 9, 11, 12]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 62, 63]);
    }

    #[test]
    fn degrees_are_nearly_uniform() {
        let g = SmallWorld::new(2000, 8, 0.1).generate(4);
        let stats = DegreeStats::new(&g, Direction::Out);
        assert!(stats.max_degree() <= 8);
        assert!(stats.hot_vertex_fraction() > 0.5, "low-skew expected");
    }
}
