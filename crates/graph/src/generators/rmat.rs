//! R-MAT (recursive matrix) / Kronecker graph generator.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos 2004) recursively partitions the
//! adjacency matrix into quadrants and drops each edge into a quadrant with
//! probabilities `(a, b, c, d)`. With the Graph500/Kron parameters
//! `(0.57, 0.19, 0.19, 0.05)` it produces the heavy-tailed power-law degree
//! distributions characteristic of the paper's `tw`, `kr` and `sd` datasets.

use super::GraphGenerator;
use crate::edgelist::EdgeList;
use crate::prng::Xoshiro256;
use crate::types::{Edge, VertexId};

/// R-MAT generator configuration.
///
/// ```
/// use grasp_graph::generators::{Rmat, GraphGenerator};
/// let g = Rmat::new(10, 16).generate(7);
/// assert_eq!(g.vertex_count(), 1024);
/// assert!(g.edge_count() > 10_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rmat {
    scale: u32,
    edge_factor: u64,
    a: f64,
    b: f64,
    c: f64,
    noise: f64,
}

impl Rmat {
    /// Creates an R-MAT generator for `2^scale` vertices and
    /// `edge_factor * 2^scale` edges with the standard Graph500 quadrant
    /// probabilities `(0.57, 0.19, 0.19, 0.05)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or greater than 31, or if `edge_factor` is 0.
    pub fn new(scale: u32, edge_factor: u64) -> Self {
        Self::with_probabilities(scale, edge_factor, 0.57, 0.19, 0.19)
    }

    /// Creates an R-MAT generator with explicit quadrant probabilities
    /// `a`, `b`, `c` (the fourth is `1 - a - b - c`).
    ///
    /// Larger `a` increases skew; `a = b = c = 0.25` degenerates to a uniform
    /// random graph.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or greater than 31, if `edge_factor` is 0, or if
    /// the probabilities are negative or sum to more than 1.
    pub fn with_probabilities(scale: u32, edge_factor: u64, a: f64, b: f64, c: f64) -> Self {
        assert!((1..=31).contains(&scale), "scale must be in 1..=31");
        assert!(edge_factor >= 1, "edge_factor must be at least 1");
        assert!(
            a >= 0.0 && b >= 0.0 && c >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(
            a + b + c <= 1.0 + 1e-9,
            "probabilities must sum to at most 1"
        );
        Self {
            scale,
            edge_factor,
            a,
            b,
            c,
            noise: 0.1,
        }
    }

    /// Sets the per-level probability noise (default `0.1`) that prevents the
    /// degree distribution from collapsing onto exact powers of two.
    #[must_use]
    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
        self.noise = noise;
        self
    }

    /// Number of vertices this generator produces (`2^scale`).
    pub fn vertex_count(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edge samples this generator draws.
    pub fn edge_count(&self) -> u64 {
        self.edge_factor * self.vertex_count()
    }

    fn sample_edge(&self, rng: &mut Xoshiro256) -> Edge {
        let mut src: u64 = 0;
        let mut dst: u64 = 0;
        for _ in 0..self.scale {
            // Perturb quadrant probabilities slightly per level (standard
            // Graph500 "noise" to smooth the distribution).
            let na = self.a * (1.0 + self.noise * (rng.next_f64() - 0.5));
            let nb = self.b * (1.0 + self.noise * (rng.next_f64() - 0.5));
            let nc = self.c * (1.0 + self.noise * (rng.next_f64() - 0.5));
            let nd = (1.0 - self.a - self.b - self.c) * (1.0 + self.noise * (rng.next_f64() - 0.5));
            let total = na + nb + nc + nd;
            let r = rng.next_f64() * total;
            src <<= 1;
            dst <<= 1;
            if r < na {
                // top-left quadrant: neither bit set
            } else if r < na + nb {
                dst |= 1;
            } else if r < na + nb + nc {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        Edge::new(src as VertexId, dst as VertexId)
    }
}

impl GraphGenerator for Rmat {
    fn edge_list(&self, seed: u64) -> EdgeList {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let n = self.vertex_count();
        let m = self.edge_count();
        let mut edges = EdgeList::with_capacity(n, m as usize);
        for _ in 0..m {
            edges.push_unchecked(self.sample_edge(&mut rng));
        }
        edges
    }

    fn name(&self) -> &'static str {
        "rmat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::types::Direction;

    #[test]
    fn vertex_and_edge_counts() {
        let r = Rmat::new(8, 16);
        assert_eq!(r.vertex_count(), 256);
        assert_eq!(r.edge_count(), 4096);
    }

    #[test]
    #[should_panic(expected = "scale must be in 1..=31")]
    fn zero_scale_panics() {
        let _ = Rmat::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "edge_factor must be at least 1")]
    fn zero_edge_factor_panics() {
        let _ = Rmat::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "probabilities must sum to at most 1")]
    fn invalid_probabilities_panic() {
        let _ = Rmat::with_probabilities(4, 4, 0.6, 0.3, 0.3);
    }

    #[test]
    fn produces_skewed_degree_distribution() {
        let g = Rmat::new(12, 16).generate(11);
        let stats = DegreeStats::new(&g, Direction::Out);
        // In a power-law graph the maximum degree is far above the average.
        assert!(
            stats.max_degree() as f64 > 10.0 * stats.average_degree(),
            "max {} avg {}",
            stats.max_degree(),
            stats.average_degree()
        );
        // And the hot vertices (deg >= avg) should be a minority that covers
        // a large majority of edges (cf. Table I).
        let hot_frac = stats.hot_vertex_fraction();
        let coverage = stats.hot_edge_coverage();
        assert!(hot_frac < 0.45, "hot fraction {hot_frac}");
        assert!(coverage > 0.55, "coverage {coverage}");
    }

    #[test]
    fn uniform_probabilities_reduce_skew() {
        let skewed = Rmat::new(11, 8).generate(5);
        let flat = Rmat::with_probabilities(11, 8, 0.25, 0.25, 0.25).generate(5);
        let s = DegreeStats::new(&skewed, Direction::Out);
        let f = DegreeStats::new(&flat, Direction::Out);
        assert!(s.max_degree() > f.max_degree());
        assert!(s.hot_vertex_fraction() < f.hot_vertex_fraction());
    }

    #[test]
    fn noise_setter_validates() {
        let r = Rmat::new(4, 2).with_noise(0.3);
        assert!((r.noise - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "noise must be in [0, 0.5]")]
    fn excessive_noise_panics() {
        let _ = Rmat::new(4, 2).with_noise(0.9);
    }
}
