//! Chung–Lu random graph generator with a configurable power-law exponent.
//!
//! The Chung–Lu model draws every edge endpoint from a fixed weight
//! distribution; with weights `w_i ∝ (i + 1)^(-1/(γ-1))` the expected degree
//! distribution follows a power law with exponent `γ`. The exponent lets us
//! tune how skewed a dataset is, which is how the reproduction builds
//! stand-ins for the *moderately* skewed datasets (`lj`, `pl`) and the
//! *low-skew* `fr` (Friendster) adversarial dataset without access to the real
//! graphs.

use super::GraphGenerator;
use crate::edgelist::EdgeList;
use crate::prng::Xoshiro256;
use crate::types::{Edge, VertexId};

/// Chung–Lu power-law generator.
///
/// ```
/// use grasp_graph::generators::{ChungLu, GraphGenerator};
/// // γ = 1.9: heavy skew. γ = 3.5: mild skew.
/// let heavy = ChungLu::new(2048, 16, 1.9).generate(1);
/// assert_eq!(heavy.vertex_count(), 2048);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLu {
    vertices: u64,
    average_degree: u64,
    exponent: f64,
}

impl ChungLu {
    /// Creates a generator for `vertices` vertices, `vertices * average_degree`
    /// edge samples, and power-law exponent `exponent` (typical natural graphs
    /// have `exponent` in `1.8..=2.5`; larger values mean less skew).
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero or exceeds `u32::MAX`, if `average_degree`
    /// is zero, or if `exponent <= 1`.
    pub fn new(vertices: u64, average_degree: u64, exponent: f64) -> Self {
        assert!(vertices > 0, "vertices must be non-zero");
        assert!(
            vertices <= u64::from(u32::MAX),
            "vertices must fit in a u32"
        );
        assert!(average_degree > 0, "average_degree must be non-zero");
        assert!(exponent > 1.0, "exponent must be greater than 1");
        Self {
            vertices,
            average_degree,
            exponent,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u64 {
        self.vertices
    }

    /// Number of edge samples.
    pub fn edge_count(&self) -> u64 {
        self.vertices * self.average_degree
    }

    /// Power-law exponent γ.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Builds the cumulative weight table used for endpoint sampling.
    fn cumulative_weights(&self) -> Vec<f64> {
        let n = self.vertices as usize;
        let alpha = 1.0 / (self.exponent - 1.0);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            // Weight of vertex i: (i+1)^(-alpha). Vertex 0 is the heaviest.
            let w = ((i + 1) as f64).powf(-alpha);
            total += w;
            cumulative.push(total);
        }
        // Normalize to [0, 1] for binary-search sampling.
        for c in &mut cumulative {
            *c /= total;
        }
        cumulative
    }

    fn sample_vertex(cumulative: &[f64], rng: &mut Xoshiro256) -> VertexId {
        let r = rng.next_f64();
        // partition_point returns the first index whose cumulative weight is
        // >= r, i.e. inverse-CDF sampling.
        let idx = cumulative.partition_point(|&c| c < r);
        idx.min(cumulative.len() - 1) as VertexId
    }
}

impl GraphGenerator for ChungLu {
    fn edge_list(&self, seed: u64) -> EdgeList {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let cumulative = self.cumulative_weights();
        let mut edges = EdgeList::with_capacity(self.vertices, self.edge_count() as usize);
        let mut scramble = Xoshiro256::seed_from_u64(seed ^ 0xD1CE_D1CE_D1CE_D1CE);
        // Random relabelling so that hot vertices are *not* contiguous in the
        // ID space: real datasets do not arrive pre-sorted by degree, and the
        // whole point of skew-aware reordering is to create that contiguity.
        let mut relabel: Vec<VertexId> = (0..self.vertices as VertexId).collect();
        scramble.shuffle(&mut relabel);
        for _ in 0..self.edge_count() {
            let src = relabel[Self::sample_vertex(&cumulative, &mut rng) as usize];
            let dst = relabel[Self::sample_vertex(&cumulative, &mut rng) as usize];
            edges.push_unchecked(Edge::new(src, dst));
        }
        edges
    }

    fn name(&self) -> &'static str {
        "chung-lu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::types::Direction;

    #[test]
    fn counts_and_accessors() {
        let g = ChungLu::new(100, 4, 2.2);
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 400);
        assert!((g.exponent() - 2.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exponent must be greater than 1")]
    fn invalid_exponent_panics() {
        let _ = ChungLu::new(10, 2, 1.0);
    }

    #[test]
    fn lower_exponent_means_more_skew() {
        let heavy = ChungLu::new(4096, 12, 1.9).generate(5);
        let mild = ChungLu::new(4096, 12, 3.5).generate(5);
        let h = DegreeStats::new(&heavy, Direction::Out);
        let m = DegreeStats::new(&mild, Direction::Out);
        assert!(
            h.hot_vertex_fraction() < m.hot_vertex_fraction(),
            "heavy {} mild {}",
            h.hot_vertex_fraction(),
            m.hot_vertex_fraction()
        );
        assert!(h.hot_edge_coverage() > m.hot_edge_coverage());
    }

    #[test]
    fn hot_vertices_are_scattered_in_id_space() {
        // The relabelling shuffle must prevent hot vertices from being the
        // lowest IDs (otherwise reordering would be a no-op).
        let g = ChungLu::new(2048, 16, 2.0).generate(9);
        let stats = DegreeStats::new(&g, Direction::Out);
        let avg = stats.average_degree();
        let hot_in_first_decile = (0..205u32)
            .filter(|&v| g.out_degree(v) as f64 >= avg)
            .count();
        let hot_total = g
            .vertices()
            .filter(|&v| g.out_degree(v) as f64 >= avg)
            .count();
        // If hot vertices were contiguous at the front, the first decile would
        // contain almost all of them.
        assert!(
            (hot_in_first_decile as f64) < 0.5 * hot_total as f64,
            "{hot_in_first_decile} of {hot_total} hot vertices in the first decile"
        );
    }

    #[test]
    fn sample_vertex_prefers_heavy_vertices() {
        let gen = ChungLu::new(1000, 4, 2.0);
        let cum = gen.cumulative_weights();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut first_decile = 0u32;
        let draws = 10_000;
        for _ in 0..draws {
            if ChungLu::sample_vertex(&cum, &mut rng) < 100 {
                first_decile += 1;
            }
        }
        // Under a power-law weighting the first 10% of (pre-shuffle) vertices
        // should receive far more than 10% of the samples.
        assert!(first_decile as f64 / draws as f64 > 0.3);
    }
}
