//! Uniform (Erdős–Rényi style) random graph generator.
//!
//! Stands in for the paper's `uni` dataset ("Uniform", generated with R-MAT
//! using equal quadrant probabilities): every edge endpoint is drawn uniformly
//! at random, so the degree distribution is binomial (no skew). This is the
//! adversarial no-skew input used in Fig. 9.

use super::GraphGenerator;
use crate::edgelist::EdgeList;
use crate::prng::Xoshiro256;
use crate::types::{Edge, VertexId};

/// Uniform random graph generator (`G(n, m)` model).
///
/// ```
/// use grasp_graph::generators::{Uniform, GraphGenerator};
/// let g = Uniform::new(1000, 10).generate(3);
/// assert_eq!(g.vertex_count(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Uniform {
    vertices: u64,
    average_degree: u64,
}

impl Uniform {
    /// Creates a generator for `vertices` vertices and
    /// `vertices * average_degree` edge samples.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero or exceeds `u32::MAX`, or if
    /// `average_degree` is zero.
    pub fn new(vertices: u64, average_degree: u64) -> Self {
        assert!(vertices > 0, "vertices must be non-zero");
        assert!(
            vertices <= u64::from(u32::MAX),
            "vertices must fit in a u32"
        );
        assert!(average_degree > 0, "average_degree must be non-zero");
        Self {
            vertices,
            average_degree,
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u64 {
        self.vertices
    }

    /// Number of edge samples.
    pub fn edge_count(&self) -> u64 {
        self.vertices * self.average_degree
    }
}

impl GraphGenerator for Uniform {
    fn edge_list(&self, seed: u64) -> EdgeList {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut edges = EdgeList::with_capacity(self.vertices, self.edge_count() as usize);
        for _ in 0..self.edge_count() {
            let src = rng.next_below(self.vertices) as VertexId;
            let dst = rng.next_below(self.vertices) as VertexId;
            edges.push_unchecked(Edge::new(src, dst));
        }
        edges
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeStats;
    use crate::types::Direction;

    #[test]
    fn counts() {
        let u = Uniform::new(100, 5);
        assert_eq!(u.vertex_count(), 100);
        assert_eq!(u.edge_count(), 500);
    }

    #[test]
    #[should_panic(expected = "vertices must be non-zero")]
    fn zero_vertices_panics() {
        let _ = Uniform::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "average_degree must be non-zero")]
    fn zero_degree_panics() {
        let _ = Uniform::new(10, 0);
    }

    #[test]
    fn degree_distribution_is_flat() {
        let g = Uniform::new(4096, 16).generate(9);
        let stats = DegreeStats::new(&g, Direction::Out);
        // Binomial distribution: the max degree stays within a small factor of
        // the mean, and roughly half the vertices are above average.
        assert!(
            (stats.max_degree() as f64) < 4.0 * stats.average_degree(),
            "max {} avg {}",
            stats.max_degree(),
            stats.average_degree()
        );
        assert!(stats.hot_vertex_fraction() > 0.3);
    }
}
