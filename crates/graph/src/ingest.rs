//! Real-graph ingestion: edge lists → on-disk binary CSR → mmap-backed views.
//!
//! Synthetic generators cover the paper's *shape* of skew; real web/social
//! graphs are where GRASP's claims actually live. This module provides the
//! out-of-core path for them:
//!
//! 1. **Chunked parallel CSR build** ([`build_csr_parallel`]) — partition the
//!    edge list, count degrees with per-chunk workers, prefix-sum, scatter
//!    into per-vertex-range partitions (the same worker-pool shape as the
//!    campaign scheduler), and sort adjacency lists through the *same* code
//!    path as [`Csr::from_edge_list`]. The result is bit-identical to the
//!    sequential builder (property-tested), so everything downstream — traces,
//!    cache stats, app outputs — is independent of how the graph was built.
//!
//! 2. **On-disk binary CSR** ([`write_disk_csr`]) — a directory of
//!    little-endian column files (`out.offsets`, `out.targets`, optional
//!    `out.weights`, and the `in.*` triple) plus a self-describing
//!    checksummed header (`graph.gcsr`) in the style of the trace persist
//!    layer: magic, version, FNV-1a checksums per column, a FNV-1a **content
//!    hash** identifying the graph, and ingest-time degree-skew statistics
//!    ([`GraphStats`]: max/mean degree, Gini coefficient, hot-vertex edge
//!    mass at the paper's 90/10 threshold).
//!
//! 3. **mmap-backed view** ([`MappedCsr`]) — opens the column files with
//!    `mmap(2)` (no external crates; a buffered in-memory fallback covers
//!    non-Unix or big-endian hosts) and implements [`GraphView`], so apps,
//!    reorder techniques and campaigns consume it exactly like an in-memory
//!    [`Csr`]. [`load_csr`] is the fully-in-memory backing over the same
//!    files; both backings produce bit-identical experiment results.
//!
//! Corruption is never silent: the header checksum covers every header
//! field, per-column checksums cover the payload, and structural validation
//! (monotone offsets, in-range targets) runs on [`verify_disk_csr`] /
//! [`load_csr`]. Failures surface as typed [`DiskCsrError`] values.
//!
//! ```text
//! twitter.gcsr/
//! ├── graph.gcsr      192-byte checksummed header (layout below)
//! ├── out.offsets     (V+1) × u64 LE
//! ├── out.targets     E × u32 LE
//! ├── out.weights     E × u32 LE — omitted when weights are uniform
//! ├── in.offsets      (V+1) × u64 LE
//! ├── in.targets      E × u32 LE
//! └── in.weights      E × u32 LE — omitted when weights are uniform
//! ```

use crate::csr::sort_adjacency;
use crate::edgelist::EdgeList;
use crate::types::{Direction, EdgeWeight, VertexId};
use crate::view::GraphView;
use crate::{Csr, GraphError};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every binary-CSR header.
pub const GCSR_MAGIC: [u8; 8] = *b"GRSPCSR\0";

/// Newest version of the on-disk binary CSR format. Bump on layout changes.
pub const GCSR_FORMAT_VERSION: u32 = 1;

/// Name of the header file inside a `.gcsr` directory.
pub const HEADER_FILE: &str = "graph.gcsr";

/// Header flag bit: edge weights are uniform and the weight columns are
/// omitted (the common unweighted case — every weight is 1).
const FLAG_UNIFORM_WEIGHTS: u32 = 1;

/// Total header size in bytes.
const HEADER_LEN: usize = 192;

/// Column file names, in header column-table order.
/// The column file names of a binary CSR directory, in header-table order.
pub const COLUMN_FILES: [&str; 6] = [
    "out.offsets",
    "out.targets",
    "out.weights",
    "in.offsets",
    "in.targets",
    "in.weights",
];

/// Environment variable overriding the ingest worker count.
pub const INGEST_THREADS_ENV_VAR: &str = "GRASP_INGEST_THREADS";

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fnv1a_of(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, bytes);
    h
}

/// Typed errors for the on-disk binary CSR format.
///
/// Every corruption mode has a distinct variant so tooling (and tests) can
/// tell "not a gcsr file" from "damaged gcsr file" from "I/O problem".
#[derive(Debug)]
pub enum DiskCsrError {
    /// The header does not start with [`GCSR_MAGIC`].
    BadMagic,
    /// The header names a format version this build cannot read.
    UnsupportedVersion(u32),
    /// A file is shorter (or longer) than the header says it should be.
    Truncated {
        /// Which file is the wrong size (header or a column file).
        file: &'static str,
        /// Expected size in bytes.
        expected: u64,
        /// Actual size in bytes.
        found: u64,
    },
    /// The header checksum does not match its contents.
    HeaderChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the header bytes.
        computed: u64,
    },
    /// A column file's contents do not match its checksum in the header.
    ColumnChecksumMismatch {
        /// Which column is damaged.
        column: &'static str,
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the column bytes.
        computed: u64,
    },
    /// The columns decode but violate a CSR structural invariant
    /// (non-monotone offsets, out-of-range target, ...).
    Corrupt(String),
    /// An I/O error occurred.
    Io(std::io::Error),
}

impl std::fmt::Display for DiskCsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskCsrError::BadMagic => write!(f, "not a binary CSR header (bad magic bytes)"),
            DiskCsrError::UnsupportedVersion(v) => write!(
                f,
                "unsupported binary CSR version {v} (this build reads versions \
                 1..={GCSR_FORMAT_VERSION})"
            ),
            DiskCsrError::Truncated {
                file,
                expected,
                found,
            } => write!(f, "{file}: expected {expected} bytes, found {found}"),
            DiskCsrError::HeaderChecksumMismatch { stored, computed } => write!(
                f,
                "header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            DiskCsrError::ColumnChecksumMismatch {
                column,
                stored,
                computed,
            } => write!(
                f,
                "column {column} checksum mismatch: stored {stored:#018x}, \
                 computed {computed:#018x}"
            ),
            DiskCsrError::Corrupt(msg) => write!(f, "corrupt binary CSR: {msg}"),
            DiskCsrError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DiskCsrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskCsrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskCsrError {
    fn from(e: std::io::Error) -> Self {
        DiskCsrError::Io(e)
    }
}

/// Degree-skew statistics computed once at ingest time and stored in the
/// header, so `xtask graph info` never has to touch the columns.
///
/// These are the numbers GRASP's premise is built on: power-law graphs
/// concentrate edge mass on a tiny hot vertex set (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Largest out-degree of any vertex.
    pub max_out_degree: u64,
    /// Largest in-degree of any vertex.
    pub max_in_degree: u64,
    /// Mean degree (`edges / vertices`).
    pub mean_degree: f64,
    /// Gini coefficient of the out-degree distribution in `[0, 1]`
    /// (0 = perfectly regular, → 1 = all edges on one vertex).
    pub gini: f64,
    /// Fraction of out-edges owned by the hottest 10% of vertices — the
    /// paper's 90/10 skew threshold (skewed graphs score ≥ 0.9 here).
    pub hot10_edge_fraction: f64,
}

impl GraphStats {
    /// Computes the statistics from any graph backing.
    pub fn compute(graph: &dyn GraphView) -> Self {
        let n = graph.vertex_count();
        let m = graph.edge_count();
        let mut out_degrees: Vec<u64> = Vec::with_capacity(n);
        let mut max_in = 0u64;
        for v in graph.vertices() {
            out_degrees.push(graph.out_degree(v));
            max_in = max_in.max(graph.in_degree(v));
        }
        let max_out = out_degrees.iter().copied().max().unwrap_or(0);
        // Sort ascending once; both Gini and the hot-10% mass read off it.
        out_degrees.sort_unstable();
        let gini = if m == 0 {
            0.0
        } else {
            // G = (2 * Σ_{i=1..n} i·d_(i)) / (n · Σd) − (n + 1) / n,
            // with d_(i) sorted ascending and i 1-based.
            let weighted: f64 = out_degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * m as f64) - (n as f64 + 1.0) / n as f64
        };
        let hot10_edge_fraction = if m == 0 {
            0.0
        } else {
            let hot_count = n.div_ceil(10);
            let hot_mass: u64 = out_degrees.iter().rev().take(hot_count).sum();
            hot_mass as f64 / m as f64
        };
        Self {
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            gini,
            hot10_edge_fraction,
        }
    }
}

/// Byte length and FNV-1a checksum of one column file, as recorded in the
/// header's column table. Omitted columns record `(0, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnMeta {
    /// Size of the column file in bytes.
    pub byte_len: u64,
    /// FNV-1a checksum over the column file's bytes.
    pub checksum: u64,
}

/// Decoded `graph.gcsr` header.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskCsrHeader {
    /// Format version (currently always [`GCSR_FORMAT_VERSION`]).
    pub version: u32,
    /// Number of vertices.
    pub vertex_count: u64,
    /// Number of directed edges.
    pub edge_count: u64,
    /// `Some(w)` when all edge weights equal `w` and the weight columns are
    /// omitted; `None` when explicit weight columns are present.
    pub uniform_weight: Option<EdgeWeight>,
    /// FNV-1a content hash identifying the graph (see [`write_disk_csr`]).
    pub content_hash: u64,
    /// Ingest-time degree-skew statistics.
    pub stats: GraphStats,
    /// Per-column byte lengths and checksums, in [`COLUMN_FILES`] order.
    pub columns: [ColumnMeta; 6],
}

impl DiskCsrHeader {
    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..8].copy_from_slice(&GCSR_MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        let flags = if self.uniform_weight.is_some() {
            FLAG_UNIFORM_WEIGHTS
        } else {
            0
        };
        buf[12..16].copy_from_slice(&flags.to_le_bytes());
        buf[16..24].copy_from_slice(&self.vertex_count.to_le_bytes());
        buf[24..32].copy_from_slice(&self.edge_count.to_le_bytes());
        buf[32..36].copy_from_slice(&self.uniform_weight.unwrap_or(0).to_le_bytes());
        // buf[36..40] reserved, zero.
        buf[40..48].copy_from_slice(&self.content_hash.to_le_bytes());
        buf[48..56].copy_from_slice(&self.stats.max_out_degree.to_le_bytes());
        buf[56..64].copy_from_slice(&self.stats.max_in_degree.to_le_bytes());
        buf[64..72].copy_from_slice(&self.stats.mean_degree.to_le_bytes());
        buf[72..80].copy_from_slice(&self.stats.gini.to_le_bytes());
        buf[80..88].copy_from_slice(&self.stats.hot10_edge_fraction.to_le_bytes());
        let mut at = 88;
        for col in &self.columns {
            buf[at..at + 8].copy_from_slice(&col.byte_len.to_le_bytes());
            buf[at + 8..at + 16].copy_from_slice(&col.checksum.to_le_bytes());
            at += 16;
        }
        debug_assert_eq!(at, HEADER_LEN - 8);
        let checksum = fnv1a_of(&buf[0..HEADER_LEN - 8]);
        buf[HEADER_LEN - 8..].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8]) -> Result<Self, DiskCsrError> {
        if buf.len() != HEADER_LEN {
            return Err(DiskCsrError::Truncated {
                file: HEADER_FILE,
                expected: HEADER_LEN as u64,
                found: buf.len() as u64,
            });
        }
        if buf[0..8] != GCSR_MAGIC {
            return Err(DiskCsrError::BadMagic);
        }
        let stored = u64::from_le_bytes(buf[HEADER_LEN - 8..].try_into().expect("8 bytes"));
        let computed = fnv1a_of(&buf[0..HEADER_LEN - 8]);
        if stored != computed {
            return Err(DiskCsrError::HeaderChecksumMismatch { stored, computed });
        }
        let u32_at = |at: usize| u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
        let f64_at = |at: usize| f64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"));
        let version = u32_at(8);
        if version == 0 || version > GCSR_FORMAT_VERSION {
            return Err(DiskCsrError::UnsupportedVersion(version));
        }
        let flags = u32_at(12);
        let uniform_weight = if flags & FLAG_UNIFORM_WEIGHTS != 0 {
            Some(u32_at(32))
        } else {
            None
        };
        let mut columns = [ColumnMeta::default(); 6];
        for (i, col) in columns.iter_mut().enumerate() {
            col.byte_len = u64_at(88 + i * 16);
            col.checksum = u64_at(96 + i * 16);
        }
        Ok(Self {
            version,
            vertex_count: u64_at(16),
            edge_count: u64_at(24),
            uniform_weight,
            content_hash: u64_at(40),
            stats: GraphStats {
                max_out_degree: u64_at(48),
                max_in_degree: u64_at(56),
                mean_degree: f64_at(64),
                gini: f64_at(72),
                hot10_edge_fraction: f64_at(80),
            },
            columns,
        })
    }
}

/// Summary returned by the ingestion entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestReport {
    /// Directory the binary CSR was written to.
    pub path: PathBuf,
    /// Number of vertices.
    pub vertex_count: u64,
    /// Number of directed edges.
    pub edge_count: u64,
    /// FNV-1a content hash identifying the graph.
    pub content_hash: u64,
    /// `Some(w)` when the weight columns were omitted as uniform.
    pub uniform_weight: Option<EdgeWeight>,
    /// Degree-skew statistics computed during ingest.
    pub stats: GraphStats,
    /// Total bytes written (header + columns).
    pub bytes_written: u64,
}

/// Default ingest worker count: `GRASP_INGEST_THREADS` if set, else the
/// available parallelism capped at 8 (the scatter phase re-scans the edge
/// list once per worker, so very wide pools stop paying off).
pub fn default_ingest_threads() -> usize {
    if let Ok(text) = std::env::var(INGEST_THREADS_ENV_VAR) {
        if let Ok(n) = text.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Builds a [`Csr`] from an edge list using a chunked parallel pipeline:
/// per-chunk degree counting, prefix-sum, per-vertex-range scatter, and the
/// canonical adjacency sort.
///
/// The output is **bit-identical** to [`Csr::from_edge_list`] for every
/// input (property-tested): the scatter preserves edge-list order per owner
/// and the adjacency sort is the same code path, so the two builders differ
/// only in wall time.
///
/// # Errors
///
/// Same contract as [`Csr::from_edge_list`]: [`GraphError::EmptyGraph`] for
/// zero vertices, [`GraphError::VertexOutOfBounds`] for stray endpoints.
pub fn build_csr_parallel(edges: &EdgeList, threads: usize) -> crate::Result<Csr> {
    if threads <= 1 {
        return Csr::from_edge_list(edges);
    }
    let vertex_count = edges.vertex_count();
    if vertex_count == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let vertex_count = usize::try_from(vertex_count)
        .map_err(|_| GraphError::Format("vertex count exceeds usize".into()))?;
    let edge_slice = edges.edges();

    // Phase 1: parallel degree counting for both directions in one pass.
    let out_counts: Vec<AtomicU64> = (0..vertex_count).map(|_| AtomicU64::new(0)).collect();
    let in_counts: Vec<AtomicU64> = (0..vertex_count).map(|_| AtomicU64::new(0)).collect();
    let first_error: Mutex<Option<GraphError>> = Mutex::new(None);
    let chunk_len = edge_slice.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for chunk in edge_slice.chunks(chunk_len) {
            let (out_counts, in_counts, first_error) = (&out_counts, &in_counts, &first_error);
            scope.spawn(move || {
                for e in chunk {
                    for v in [e.src, e.dst] {
                        if v as usize >= vertex_count {
                            let mut slot = first_error.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(GraphError::VertexOutOfBounds {
                                    vertex: u64::from(v),
                                    vertex_count: vertex_count as u64,
                                });
                            }
                            return;
                        }
                    }
                    out_counts[e.src as usize].fetch_add(1, Ordering::Relaxed);
                    in_counts[e.dst as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner().unwrap() {
        return Err(e);
    }

    let build_direction = |counts: &[AtomicU64], use_src_as_owner: bool| {
        // Phase 2: sequential prefix sum into the offsets column.
        let mut offsets = vec![0u64; vertex_count + 1];
        for v in 0..vertex_count {
            offsets[v + 1] = offsets[v] + counts[v].load(Ordering::Relaxed);
        }
        let edge_total = offsets[vertex_count] as usize;
        let mut targets = vec![0 as VertexId; edge_total];
        let mut weights = vec![0 as EdgeWeight; edge_total];

        // Phase 3: pick contiguous vertex ranges with balanced edge mass, so
        // power-law hubs don't serialize one worker.
        let mut bounds = vec![0usize];
        for w in 1..threads {
            let target_mass = (edge_total as u64).saturating_mul(w as u64) / threads as u64;
            let v = offsets.partition_point(|&o| o < target_mass);
            let v = v.clamp(*bounds.last().unwrap(), vertex_count);
            bounds.push(v);
        }
        bounds.push(vertex_count);

        // Phase 4: scatter + sort. Each worker owns a contiguous vertex range
        // and therefore a contiguous, disjoint span of the edge columns, so
        // the columns are split with `split_at_mut` — no synchronization in
        // the hot loop. Scanning the full edge list per worker keeps the
        // per-owner scatter order identical to the sequential builder's.
        std::thread::scope(|scope| {
            let mut t_rest: &mut [VertexId] = &mut targets;
            let mut w_rest: &mut [EdgeWeight] = &mut weights;
            let mut consumed = 0usize;
            for win in bounds.windows(2) {
                let (lo_v, hi_v) = (win[0], win[1]);
                let span = (offsets[hi_v] - offsets[lo_v]) as usize;
                let (t_mine, t_next) = std::mem::take(&mut t_rest).split_at_mut(span);
                let (w_mine, w_next) = std::mem::take(&mut w_rest).split_at_mut(span);
                t_rest = t_next;
                w_rest = w_next;
                let base = consumed as u64;
                consumed += span;
                let offsets = &offsets;
                scope.spawn(move || {
                    if lo_v == hi_v {
                        return;
                    }
                    let mut cursor: Vec<u64> = offsets[lo_v..hi_v].to_vec();
                    for e in edge_slice {
                        let (owner, other) = if use_src_as_owner {
                            (e.src, e.dst)
                        } else {
                            (e.dst, e.src)
                        };
                        let owner = owner as usize;
                        if owner < lo_v || owner >= hi_v {
                            continue;
                        }
                        let idx = (cursor[owner - lo_v] - base) as usize;
                        t_mine[idx] = other;
                        w_mine[idx] = e.weight;
                        cursor[owner - lo_v] += 1;
                    }
                    for v in lo_v..hi_v {
                        let a = (offsets[v] - base) as usize;
                        let b = (offsets[v + 1] - base) as usize;
                        sort_adjacency(&mut t_mine[a..b], &mut w_mine[a..b]);
                    }
                });
            }
        });
        (offsets, targets, weights)
    };

    let (out_offsets, out_targets, out_weights) = build_direction(&out_counts, true);
    let (in_offsets, in_targets, in_weights) = build_direction(&in_counts, false);
    Csr::from_raw_columns(
        vertex_count,
        edge_slice.len() as u64,
        out_offsets,
        out_targets,
        out_weights,
        in_offsets,
        in_targets,
        in_weights,
    )
}

fn u64s_to_le_bytes(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 8);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

fn u32s_to_le_bytes(values: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 4);
    for v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Writes `graph` as an on-disk binary CSR directory at `dir`.
///
/// The **content hash** stored in the header (and returned in the report) is
/// FNV-1a over `vertex_count`, `edge_count`, the uniform-weight flag/value
/// and every present column's little-endian bytes, in file order. Two
/// ingests of the same logical graph therefore produce the same hash — it is
/// what the dataset catalog and trace-store key use to identify the graph.
///
/// When every edge weight is the same value, the weight columns are omitted
/// and the value is recorded in the header instead (`uniform_weight`) — for
/// unweighted graphs this cuts the edge payload by a third.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on filesystem failures.
pub fn write_disk_csr(graph: &Csr, dir: &Path) -> crate::Result<IngestReport> {
    std::fs::create_dir_all(dir)?;
    let (out_offsets, out_targets, out_weights) = graph.raw_columns(Direction::Out);
    let (in_offsets, in_targets, in_weights) = graph.raw_columns(Direction::In);
    let uniform_weight = match out_weights.first() {
        None => Some(1),
        Some(&w) if out_weights.iter().all(|&x| x == w) => Some(w),
        Some(_) => None,
    };

    let column_bytes: [Option<Vec<u8>>; 6] = [
        Some(u64s_to_le_bytes(out_offsets)),
        Some(u32s_to_le_bytes(out_targets)),
        uniform_weight
            .is_none()
            .then(|| u32s_to_le_bytes(out_weights)),
        Some(u64s_to_le_bytes(in_offsets)),
        Some(u32s_to_le_bytes(in_targets)),
        uniform_weight
            .is_none()
            .then(|| u32s_to_le_bytes(in_weights)),
    ];

    let mut content_hash = FNV_OFFSET;
    fnv1a(
        &mut content_hash,
        &(graph.vertex_count() as u64).to_le_bytes(),
    );
    fnv1a(&mut content_hash, &graph.edge_count().to_le_bytes());
    match uniform_weight {
        Some(w) => {
            fnv1a(&mut content_hash, &[1]);
            fnv1a(&mut content_hash, &w.to_le_bytes());
        }
        None => fnv1a(&mut content_hash, &[0]),
    }
    let mut columns = [ColumnMeta::default(); 6];
    let mut bytes_written = HEADER_LEN as u64;
    for (i, bytes) in column_bytes.iter().enumerate() {
        if let Some(bytes) = bytes {
            fnv1a(&mut content_hash, bytes);
            columns[i] = ColumnMeta {
                byte_len: bytes.len() as u64,
                checksum: fnv1a_of(bytes),
            };
            bytes_written += bytes.len() as u64;
        }
    }

    for (i, bytes) in column_bytes.iter().enumerate() {
        let path = dir.join(COLUMN_FILES[i]);
        match bytes {
            Some(bytes) => std::fs::write(&path, bytes)?,
            // Stale weight columns from a previous non-uniform write would
            // make the directory ambiguous; remove them.
            None => match std::fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            },
        }
    }

    let stats = GraphStats::compute(graph);
    let header = DiskCsrHeader {
        version: GCSR_FORMAT_VERSION,
        vertex_count: graph.vertex_count() as u64,
        edge_count: graph.edge_count(),
        uniform_weight,
        content_hash,
        stats,
        columns,
    };
    // Header last, via tmp + rename: a crash mid-write leaves a directory
    // without a valid header, which open() rejects loudly, never a directory
    // that silently mixes old and new columns.
    let tmp = dir.join(format!("{HEADER_FILE}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&header.encode())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(HEADER_FILE))?;

    Ok(IngestReport {
        path: dir.to_path_buf(),
        vertex_count: graph.vertex_count() as u64,
        edge_count: graph.edge_count(),
        content_hash,
        uniform_weight,
        stats,
        bytes_written,
    })
}

/// Ingests an [`EdgeList`]: parallel CSR build + [`write_disk_csr`].
///
/// # Errors
///
/// Propagates build and I/O errors.
pub fn ingest_edge_list(
    edges: &EdgeList,
    dir: &Path,
    threads: usize,
) -> crate::Result<IngestReport> {
    let graph = build_csr_parallel(edges, threads)?;
    write_disk_csr(&graph, dir)
}

/// Ingests an edge-list file (text or `.bin`, see [`crate::io`]) into an
/// on-disk binary CSR directory.
///
/// # Errors
///
/// Propagates parse, build and I/O errors.
pub fn ingest_file(src: &Path, dir: &Path, threads: usize) -> crate::Result<IngestReport> {
    let edges = crate::io::read_edge_list_file(src)?;
    ingest_edge_list(&edges, dir, threads)
}

/// Reads and validates just the header of a binary CSR directory.
///
/// # Errors
///
/// Returns a typed [`DiskCsrError`] on any header problem.
pub fn read_header(dir: &Path) -> Result<DiskCsrHeader, DiskCsrError> {
    let bytes = std::fs::read(dir.join(HEADER_FILE))?;
    DiskCsrHeader::decode(&bytes)
}

// ---------------------------------------------------------------------------
// Column buffers: mmap on little-endian Unix, owned decode elsewhere.
// ---------------------------------------------------------------------------

#[cfg(all(unix, target_endian = "little"))]
mod mmap_sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// A read-only `mmap(2)` region over one column file. The base address is
/// page-aligned, and each column lives in its own file, so reinterpreting
/// the bytes as `u64`/`u32` slices is always correctly aligned.
#[cfg(all(unix, target_endian = "little"))]
struct MmapRegion {
    ptr: *mut u8,
    len: usize,
}

#[cfg(all(unix, target_endian = "little"))]
// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never written through,
// so sharing the pointer across threads is sound.
unsafe impl Send for MmapRegion {}
#[cfg(all(unix, target_endian = "little"))]
unsafe impl Sync for MmapRegion {}

#[cfg(all(unix, target_endian = "little"))]
impl MmapRegion {
    fn map(file: &std::fs::File, len: usize) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        debug_assert!(len > 0, "zero-length mappings are invalid");
        // SAFETY: fd is a valid open file descriptor and len > 0; the result
        // is checked against MAP_FAILED before use.
        let ptr = unsafe {
            mmap_sys::mmap(
                std::ptr::null_mut(),
                len,
                mmap_sys::PROT_READ,
                mmap_sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == mmap_sys::map_failed() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self {
            ptr: ptr as *mut u8,
            len,
        })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live read-only mapping owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

#[cfg(all(unix, target_endian = "little"))]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap and are unmapped once.
        unsafe {
            mmap_sys::munmap(self.ptr as *mut std::os::raw::c_void, self.len);
        }
    }
}

/// One on-disk column of `u64` values: mmap-backed where possible, owned
/// (decoded) otherwise.
enum U64Column {
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(MmapRegion),
    Owned(Vec<u64>),
}

/// One on-disk column of `u32` values.
enum U32Column {
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(MmapRegion),
    Owned(Vec<u32>),
}

fn open_column(
    dir: &Path,
    index: usize,
    expected_len: u64,
) -> Result<Option<std::fs::File>, DiskCsrError> {
    let name = COLUMN_FILES[index];
    let path = dir.join(name);
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound && expected_len == 0 => return Ok(None),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(DiskCsrError::Truncated {
                file: name,
                expected: expected_len,
                found: 0,
            })
        }
        Err(e) => return Err(e.into()),
    };
    let found = file.metadata()?.len();
    if found != expected_len {
        return Err(DiskCsrError::Truncated {
            file: name,
            expected: expected_len,
            found,
        });
    }
    if expected_len == 0 {
        return Ok(None);
    }
    Ok(Some(file))
}

impl U64Column {
    fn open(dir: &Path, index: usize, expected_len: u64) -> Result<Self, DiskCsrError> {
        let Some(file) = open_column(dir, index, expected_len)? else {
            return Ok(U64Column::Owned(Vec::new()));
        };
        #[cfg(all(unix, target_endian = "little"))]
        {
            Ok(U64Column::Mapped(MmapRegion::map(
                &file,
                expected_len as usize,
            )?))
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            let mut bytes = Vec::new();
            use std::io::Read;
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Ok(U64Column::Owned(
                bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            ))
        }
    }

    fn as_slice(&self) -> &[u64] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            // SAFETY: the mapping is page-aligned and its length is a
            // multiple of 8 (validated against the header at open time).
            U64Column::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.ptr as *const u64, m.len / 8)
            },
            U64Column::Owned(v) => v,
        }
    }

    fn checksum(&self) -> u64 {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            U64Column::Mapped(m) => fnv1a_of(m.bytes()),
            U64Column::Owned(v) => {
                let mut h = FNV_OFFSET;
                for x in v {
                    fnv1a(&mut h, &x.to_le_bytes());
                }
                h
            }
        }
    }
}

impl U32Column {
    fn open(dir: &Path, index: usize, expected_len: u64) -> Result<Self, DiskCsrError> {
        let Some(file) = open_column(dir, index, expected_len)? else {
            return Ok(U32Column::Owned(Vec::new()));
        };
        #[cfg(all(unix, target_endian = "little"))]
        {
            Ok(U32Column::Mapped(MmapRegion::map(
                &file,
                expected_len as usize,
            )?))
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            let mut bytes = Vec::new();
            use std::io::Read;
            let mut file = file;
            file.read_to_end(&mut bytes)?;
            Ok(U32Column::Owned(
                bytes
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            ))
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            // SAFETY: page-aligned mapping, length validated as 4-multiple.
            U32Column::Mapped(m) => unsafe {
                std::slice::from_raw_parts(m.ptr as *const u32, m.len / 4)
            },
            U32Column::Owned(v) => v,
        }
    }

    fn checksum(&self) -> u64 {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            U32Column::Mapped(m) => fnv1a_of(m.bytes()),
            U32Column::Owned(v) => {
                let mut h = FNV_OFFSET;
                for x in v {
                    fnv1a(&mut h, &x.to_le_bytes());
                }
                h
            }
        }
    }
}

/// An mmap-backed binary CSR graph: the out-of-core counterpart of [`Csr`].
///
/// Opening is cheap — the header is checksum-verified and every column file's
/// size is checked, but the column *contents* are only faulted in as the
/// computation touches them. Run [`MappedCsr::verify`] (or
/// [`verify_disk_csr`]) for a full checksum + structural pass.
///
/// Implements [`GraphView`], so it drops into every app, reorder technique
/// and campaign exactly like an in-memory CSR, with bit-identical results.
pub struct MappedCsr {
    dir: PathBuf,
    header: DiskCsrHeader,
    vertex_count: usize,
    out_offsets: U64Column,
    out_targets: U32Column,
    out_weights: Option<U32Column>,
    in_offsets: U64Column,
    in_targets: U32Column,
    in_weights: Option<U32Column>,
    /// Shared weight slice served for every vertex when weights are uniform:
    /// `uniform_weights[..degree(v)]`. Sized to the maximum degree.
    uniform_weights: Vec<EdgeWeight>,
}

impl std::fmt::Debug for MappedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCsr")
            .field("dir", &self.dir)
            .field("vertex_count", &self.header.vertex_count)
            .field("edge_count", &self.header.edge_count)
            .field(
                "content_hash",
                &format_args!("{:#018x}", self.header.content_hash),
            )
            .finish_non_exhaustive()
    }
}

fn expected_column_lens(header: &DiskCsrHeader) -> Result<[u64; 6], DiskCsrError> {
    let v = header.vertex_count;
    let e = header.edge_count;
    let weights_len = if header.uniform_weight.is_some() {
        0
    } else {
        e * 4
    };
    let expected = [
        (v + 1) * 8,
        e * 4,
        weights_len,
        (v + 1) * 8,
        e * 4,
        weights_len,
    ];
    for (i, (&want, col)) in expected.iter().zip(&header.columns).enumerate() {
        if col.byte_len != want {
            return Err(DiskCsrError::Corrupt(format!(
                "header column table disagrees with counts: {} records {} bytes, \
                 counts imply {want}",
                COLUMN_FILES[i], col.byte_len
            )));
        }
    }
    Ok(expected)
}

impl MappedCsr {
    /// Opens a binary CSR directory written by [`write_disk_csr`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`DiskCsrError`] when the header is missing, damaged
    /// or version-incompatible, or any column file has the wrong size.
    pub fn open(dir: &Path) -> Result<Self, DiskCsrError> {
        let header = read_header(dir)?;
        if header.vertex_count == 0 {
            return Err(DiskCsrError::Corrupt("zero vertex count".into()));
        }
        let vertex_count = usize::try_from(header.vertex_count)
            .map_err(|_| DiskCsrError::Corrupt("vertex count exceeds usize".into()))?;
        let lens = expected_column_lens(&header)?;
        let out_offsets = U64Column::open(dir, 0, lens[0])?;
        let out_targets = U32Column::open(dir, 1, lens[1])?;
        let out_weights = if header.uniform_weight.is_none() {
            Some(U32Column::open(dir, 2, lens[2])?)
        } else {
            None
        };
        let in_offsets = U64Column::open(dir, 3, lens[3])?;
        let in_targets = U32Column::open(dir, 4, lens[4])?;
        let in_weights = if header.uniform_weight.is_none() {
            Some(U32Column::open(dir, 5, lens[5])?)
        } else {
            None
        };
        let uniform_weights = match header.uniform_weight {
            Some(w) => {
                let max_degree = header.stats.max_out_degree.max(header.stats.max_in_degree);
                let max_degree = usize::try_from(max_degree)
                    .map_err(|_| DiskCsrError::Corrupt("max degree exceeds usize".into()))?;
                if max_degree as u64 > header.edge_count {
                    return Err(DiskCsrError::Corrupt(
                        "header max degree exceeds edge count".into(),
                    ));
                }
                vec![w; max_degree]
            }
            None => Vec::new(),
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            header,
            vertex_count,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
            in_weights,
            uniform_weights,
        })
    }

    /// The decoded header (stats, content hash, column table).
    pub fn header(&self) -> &DiskCsrHeader {
        &self.header
    }

    /// The FNV-1a content hash identifying this graph.
    pub fn content_hash(&self) -> u64 {
        self.header.content_hash
    }

    /// Ingest-time degree-skew statistics.
    pub fn stats(&self) -> GraphStats {
        self.header.stats
    }

    /// Directory this graph was opened from.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Full integrity pass: every column checksum plus the CSR structural
    /// invariants (monotone offsets spanning `0..=edge_count`, in-range
    /// targets). Reads every byte of every column.
    ///
    /// # Errors
    ///
    /// Returns the first typed [`DiskCsrError`] found.
    pub fn verify(&self) -> Result<(), DiskCsrError> {
        let checks: [(usize, u64); 6] = [
            (0, self.out_offsets.checksum()),
            (1, self.out_targets.checksum()),
            (2, self.out_weights.as_ref().map_or(0, |c| c.checksum())),
            (3, self.in_offsets.checksum()),
            (4, self.in_targets.checksum()),
            (5, self.in_weights.as_ref().map_or(0, |c| c.checksum())),
        ];
        for (i, computed) in checks {
            if self.header.columns[i].byte_len == 0 {
                continue;
            }
            let stored = self.header.columns[i].checksum;
            if stored != computed {
                return Err(DiskCsrError::ColumnChecksumMismatch {
                    column: COLUMN_FILES[i],
                    stored,
                    computed,
                });
            }
        }
        for (name, offsets, targets) in [
            (
                "out",
                self.out_offsets.as_slice(),
                self.out_targets.as_slice(),
            ),
            ("in", self.in_offsets.as_slice(), self.in_targets.as_slice()),
        ] {
            if offsets[0] != 0 || offsets[self.vertex_count] != self.header.edge_count {
                return Err(DiskCsrError::Corrupt(format!(
                    "{name} offsets must span 0..={}",
                    self.header.edge_count
                )));
            }
            if offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(DiskCsrError::Corrupt(format!(
                    "{name} offsets are not monotone"
                )));
            }
            if let Some(&bad) = targets.iter().find(|&&t| t as usize >= self.vertex_count) {
                return Err(DiskCsrError::Corrupt(format!(
                    "{name} target {bad} out of range for {} vertices",
                    self.vertex_count
                )));
            }
        }
        Ok(())
    }

    #[inline]
    fn slice_bounds(offsets: &[u64], v: VertexId) -> (usize, usize) {
        (
            offsets[v as usize] as usize,
            offsets[v as usize + 1] as usize,
        )
    }
}

impl GraphView for MappedCsr {
    fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    fn edge_count(&self) -> u64 {
        self.header.edge_count
    }

    fn out_degree(&self, v: VertexId) -> u64 {
        let o = self.out_offsets.as_slice();
        o[v as usize + 1] - o[v as usize]
    }

    fn in_degree(&self, v: VertexId) -> u64 {
        let o = self.in_offsets.as_slice();
        o[v as usize + 1] - o[v as usize]
    }

    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = Self::slice_bounds(self.out_offsets.as_slice(), v);
        &self.out_targets.as_slice()[lo..hi]
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (lo, hi) = Self::slice_bounds(self.in_offsets.as_slice(), v);
        &self.in_targets.as_slice()[lo..hi]
    }

    fn out_weights(&self, v: VertexId) -> &[EdgeWeight] {
        match &self.out_weights {
            Some(col) => {
                let (lo, hi) = Self::slice_bounds(self.out_offsets.as_slice(), v);
                &col.as_slice()[lo..hi]
            }
            None => &self.uniform_weights[..self.out_degree(v) as usize],
        }
    }

    fn in_weights(&self, v: VertexId) -> &[EdgeWeight] {
        match &self.in_weights {
            Some(col) => {
                let (lo, hi) = Self::slice_bounds(self.in_offsets.as_slice(), v);
                &col.as_slice()[lo..hi]
            }
            None => &self.uniform_weights[..self.in_degree(v) as usize],
        }
    }

    fn out_edge_offset(&self, v: VertexId) -> u64 {
        self.out_offsets.as_slice()[v as usize]
    }

    fn in_edge_offset(&self, v: VertexId) -> u64 {
        self.in_offsets.as_slice()[v as usize]
    }
}

/// Loads a binary CSR directory fully into memory as a [`Csr`] — the
/// in-memory backing over the same files as [`MappedCsr::open`].
///
/// Column checksums and structural invariants are verified during the load
/// (the data is being read end-to-end anyway). Uniform weights are
/// materialized, so the result compares equal (`==`) to the [`Csr`] the
/// directory was written from.
///
/// # Errors
///
/// Returns a typed [`DiskCsrError`] on any corruption.
pub fn load_csr(dir: &Path) -> Result<Csr, DiskCsrError> {
    let mapped = MappedCsr::open(dir)?;
    mapped.verify()?;
    let edge_count = mapped.header.edge_count as usize;
    let materialize_weights = |col: &Option<U32Column>, w: Option<EdgeWeight>| match col {
        Some(col) => col.as_slice().to_vec(),
        None => vec![w.unwrap_or(1); edge_count],
    };
    let out_weights = materialize_weights(&mapped.out_weights, mapped.header.uniform_weight);
    let in_weights = materialize_weights(&mapped.in_weights, mapped.header.uniform_weight);
    Csr::from_raw_columns(
        mapped.vertex_count,
        mapped.header.edge_count,
        mapped.out_offsets.as_slice().to_vec(),
        mapped.out_targets.as_slice().to_vec(),
        out_weights,
        mapped.in_offsets.as_slice().to_vec(),
        mapped.in_targets.as_slice().to_vec(),
        in_weights,
    )
    .map_err(|e| DiskCsrError::Corrupt(e.to_string()))
}

/// Standalone full verification of a binary CSR directory: header checksum,
/// column sizes, column checksums, structural invariants.
///
/// # Errors
///
/// Returns the first typed [`DiskCsrError`] found.
pub fn verify_disk_csr(dir: &Path) -> Result<DiskCsrHeader, DiskCsrError> {
    let mapped = MappedCsr::open(dir)?;
    mapped.verify()?;
    Ok(mapped.header.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{GraphGenerator, Rmat};
    use crate::types::Edge;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grasp_ingest_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn skewed_edge_list() -> EdgeList {
        let mut el = EdgeList::new(64);
        // A hub-heavy little graph with self-loops and duplicate edges.
        for i in 0..64u32 {
            el.push(i % 8, (i * 7) % 64).unwrap();
            el.push(0, i).unwrap();
        }
        el.push(5, 5).unwrap();
        el.push(0, 1).unwrap();
        el.push(0, 1).unwrap();
        el
    }

    fn graphs_bit_identical(a: &dyn GraphView, b: &dyn GraphView) -> bool {
        if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
            return false;
        }
        a.vertices().all(|v| {
            a.out_neighbors(v) == b.out_neighbors(v)
                && a.in_neighbors(v) == b.in_neighbors(v)
                && a.out_weights(v) == b.out_weights(v)
                && a.in_weights(v) == b.in_weights(v)
                && a.out_edge_offset(v) == b.out_edge_offset(v)
                && a.in_edge_offset(v) == b.in_edge_offset(v)
        })
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let el = skewed_edge_list();
        let seq = Csr::from_edge_list(&el).unwrap();
        for threads in [2, 3, 8] {
            let par = build_csr_parallel(&el, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_handles_sparse_id_space() {
        // from_iter derives vertex_count = max endpoint + 1, leaving a large
        // tail of isolated vertices — both builders must agree.
        let sparse: EdgeList = [Edge::new(0, 1), Edge::new(9, 0), Edge::new(40, 40)]
            .into_iter()
            .collect();
        assert_eq!(
            build_csr_parallel(&sparse, 4).unwrap(),
            Csr::from_edge_list(&sparse).unwrap()
        );
    }

    #[test]
    fn empty_vertex_set_is_rejected() {
        let el = EdgeList::new(0);
        assert!(matches!(
            build_csr_parallel(&el, 4),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn round_trip_mapped_and_in_memory() {
        let dir = temp_dir("round_trip");
        let el = skewed_edge_list();
        let report = ingest_edge_list(&el, &dir, 4).unwrap();
        assert_eq!(report.uniform_weight, Some(1));

        let reference = Csr::from_edge_list(&el).unwrap();
        let mapped = MappedCsr::open(&dir).unwrap();
        assert!(graphs_bit_identical(&reference, &mapped));
        assert_eq!(mapped.content_hash(), report.content_hash);
        mapped.verify().unwrap();

        let loaded = load_csr(&dir).unwrap();
        assert_eq!(loaded, reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn weighted_graphs_keep_explicit_columns() {
        let dir = temp_dir("weighted");
        let mut el = EdgeList::new(8);
        for i in 0..8u32 {
            el.push_weighted(i, (i + 1) % 8, i + 1).unwrap();
        }
        let report = ingest_edge_list(&el, &dir, 2).unwrap();
        assert_eq!(report.uniform_weight, None);
        assert!(dir.join("out.weights").exists());

        let reference = Csr::from_edge_list(&el).unwrap();
        let mapped = MappedCsr::open(&dir).unwrap();
        assert!(graphs_bit_identical(&reference, &mapped));
        assert_eq!(load_csr(&dir).unwrap(), reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn edgeless_graph_round_trips() {
        let dir = temp_dir("edgeless");
        let el = EdgeList::new(5);
        ingest_edge_list(&el, &dir, 2).unwrap();
        let mapped = MappedCsr::open(&dir).unwrap();
        assert_eq!(mapped.vertex_count(), 5);
        assert_eq!(mapped.edge_count(), 0);
        assert_eq!(mapped.out_neighbors(4), &[] as &[VertexId]);
        mapped.verify().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        let dir_a = temp_dir("hash_a");
        let dir_b = temp_dir("hash_b");
        let el = skewed_edge_list();
        let a = ingest_edge_list(&el, &dir_a, 1).unwrap();
        let b = ingest_edge_list(&el, &dir_b, 8).unwrap();
        assert_eq!(
            a.content_hash, b.content_hash,
            "hash must not depend on threads"
        );

        let mut other = skewed_edge_list();
        other.push(63, 62).unwrap();
        let c = ingest_edge_list(&other, &dir_b, 4).unwrap();
        assert_ne!(a.content_hash, c.content_hash);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn stats_capture_skew() {
        let graph = Rmat::new(8, 8).generate(7);
        let stats = GraphStats::compute(&graph);
        assert!(stats.max_out_degree >= 1);
        assert!((stats.mean_degree - graph.average_degree()).abs() < 1e-12);
        assert!(
            stats.gini > 0.3,
            "R-MAT should be skewed, gini={}",
            stats.gini
        );
        assert!(stats.hot10_edge_fraction > 0.3);
        assert!(stats.hot10_edge_fraction <= 1.0);

        // A ring is perfectly regular: gini 0, hot-10% mass exactly 10%.
        let ring = Csr::from_edges((0..10u32).map(|v| (v, (v + 1) % 10))).unwrap();
        let ring_stats = GraphStats::compute(&ring);
        assert!(ring_stats.gini.abs() < 1e-12);
        assert!((ring_stats.hot10_edge_fraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn truncated_column_is_typed() {
        let dir = temp_dir("truncated");
        ingest_edge_list(&skewed_edge_list(), &dir, 2).unwrap();
        let path = dir.join("out.targets");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            MappedCsr::open(&dir),
            Err(DiskCsrError::Truncated {
                file: "out.targets",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_column_is_typed() {
        let dir = temp_dir("missing");
        ingest_edge_list(&skewed_edge_list(), &dir, 2).unwrap();
        std::fs::remove_file(dir.join("in.offsets")).unwrap();
        assert!(matches!(
            MappedCsr::open(&dir),
            Err(DiskCsrError::Truncated {
                file: "in.offsets",
                found: 0,
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_header_is_typed() {
        let dir = temp_dir("hdr_flip");
        ingest_edge_list(&skewed_edge_list(), &dir, 2).unwrap();
        let path = dir.join(HEADER_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            MappedCsr::open(&dir),
            Err(DiskCsrError::HeaderChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let dir = temp_dir("magic");
        ingest_edge_list(&skewed_edge_list(), &dir, 2).unwrap();
        let path = dir.join(HEADER_FILE);
        let good = std::fs::read(&path).unwrap();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(MappedCsr::open(&dir), Err(DiskCsrError::BadMagic)));

        // A future version with a correct checksum must be refused.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&(GCSR_FORMAT_VERSION + 1).to_le_bytes());
        let checksum = fnv1a_of(&future[0..HEADER_LEN - 8]);
        future[HEADER_LEN - 8..].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            MappedCsr::open(&dir),
            Err(DiskCsrError::UnsupportedVersion(v)) if v == GCSR_FORMAT_VERSION + 1
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flipped_column_fails_verify_and_load() {
        let dir = temp_dir("col_flip");
        ingest_edge_list(&skewed_edge_list(), &dir, 2).unwrap();
        let path = dir.join("in.targets");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mapped = MappedCsr::open(&dir).unwrap();
        assert!(matches!(
            mapped.verify(),
            Err(DiskCsrError::ColumnChecksumMismatch {
                column: "in.targets",
                ..
            })
        ));
        assert!(load_csr(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rmat_round_trip_through_files() {
        let dir = temp_dir("rmat");
        let graph = Rmat::new(9, 8).generate(3);
        let report = write_disk_csr(&graph, &dir).unwrap();
        assert_eq!(report.edge_count, graph.edge_count());

        let mapped = MappedCsr::open(&dir).unwrap();
        assert!(graphs_bit_identical(&graph, &mapped));
        assert_eq!(load_csr(&dir).unwrap(), graph);
        // Skew stats in the header match a fresh computation.
        assert_eq!(mapped.stats(), GraphStats::compute(&graph));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_file_text_and_binary() {
        let dir = temp_dir("files");
        let el = skewed_edge_list();
        let txt = dir.join("edges.txt");
        crate::io::write_edge_list_file(&txt, &el).unwrap();
        let out_a = dir.join("a.gcsr");
        let a = ingest_file(&txt, &out_a, 2).unwrap();

        let bin = dir.join("edges.bin");
        crate::io::write_edge_list_file(&bin, &el).unwrap();
        let out_b = dir.join("b.gcsr");
        let b = ingest_file(&bin, &out_b, 2).unwrap();

        assert_eq!(a.content_hash, b.content_hash);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
