//! Object-safe graph trait shared by every graph backing.
//!
//! The analytics apps, reorder techniques and the experiment orchestration in
//! `grasp-core` consume graphs through [`GraphView`] rather than the concrete
//! [`crate::Csr`] type. That makes the *backing* of the adjacency data an
//! implementation detail: the in-memory [`crate::Csr`] and the mmap-backed
//! [`crate::ingest::MappedCsr`] both implement the trait and produce
//! bit-identical traversal behaviour.
//!
//! The trait is deliberately object-safe (`&dyn GraphView`,
//! `Arc<dyn GraphView>`): every method returns a concrete type, and the
//! direction-dispatching conveniences are provided methods layered on the
//! per-direction required methods. Dynamic dispatch is not a performance
//! concern here — the apps make O(V) trait calls per iteration and then
//! iterate the returned adjacency slices without further calls.

use crate::types::{Direction, EdgeWeight, VertexId};

/// A read-only CSR-shaped graph: dense vertex IDs `0..vertex_count`, sorted
/// adjacency slices in both directions, parallel weight slices.
///
/// Implementations must uphold the CSR invariants the engine relies on:
///
/// * `out_neighbors(v)` / `in_neighbors(v)` are sorted ascending,
/// * `out_weights(v).len() == out_neighbors(v).len()` (same for in-),
/// * `out_edge_offset(v+1) - out_edge_offset(v) == out_degree(v)` wherever
///   `v + 1 < vertex_count`, and the degree sums equal `edge_count`.
pub trait GraphView: std::fmt::Debug + Send + Sync {
    /// Number of vertices.
    fn vertex_count(&self) -> usize;

    /// Number of directed edges.
    fn edge_count(&self) -> u64;

    /// Out-degree of `v`.
    fn out_degree(&self, v: VertexId) -> u64;

    /// In-degree of `v`.
    fn in_degree(&self, v: VertexId) -> u64;

    /// Out-neighbours of `v` (vertices `v` points to), sorted ascending.
    fn out_neighbors(&self, v: VertexId) -> &[VertexId];

    /// In-neighbours of `v` (vertices pointing to `v`), sorted ascending.
    fn in_neighbors(&self, v: VertexId) -> &[VertexId];

    /// Weights parallel to [`GraphView::out_neighbors`].
    fn out_weights(&self, v: VertexId) -> &[EdgeWeight];

    /// Weights parallel to [`GraphView::in_neighbors`].
    fn in_weights(&self, v: VertexId) -> &[EdgeWeight];

    /// Offset of vertex `v`'s first edge in the out edge array (the value the
    /// *Vertex Array* holds in the CSR encoding).
    fn out_edge_offset(&self, v: VertexId) -> u64;

    /// Offset of vertex `v`'s first edge in the in edge array.
    fn in_edge_offset(&self, v: VertexId) -> u64;

    /// Degree of `v` in the requested direction.
    fn degree(&self, v: VertexId, dir: Direction) -> u64 {
        match dir {
            Direction::Out => self.out_degree(v),
            Direction::In => self.in_degree(v),
        }
    }

    /// Neighbours of `v` in the requested direction.
    fn neighbors(&self, v: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Out => self.out_neighbors(v),
            Direction::In => self.in_neighbors(v),
        }
    }

    /// Weights parallel to [`GraphView::neighbors`].
    fn weights(&self, v: VertexId, dir: Direction) -> &[EdgeWeight] {
        match dir {
            Direction::Out => self.out_weights(v),
            Direction::In => self.in_weights(v),
        }
    }

    /// Offset of vertex `v`'s first edge in the edge array for `dir`.
    fn edge_offset(&self, v: VertexId, dir: Direction) -> u64 {
        match dir {
            Direction::Out => self.out_edge_offset(v),
            Direction::In => self.in_edge_offset(v),
        }
    }

    /// All vertex IDs as a range (object-safe: `Range<VertexId>` is concrete).
    fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.vertex_count() as VertexId
    }

    /// Average degree (`edges / vertices`).
    fn average_degree(&self) -> f64 {
        self.edge_count() as f64 / self.vertex_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Csr;

    fn paper_example() -> Csr {
        Csr::from_edges([
            (3, 0),
            (2, 1),
            (0, 2),
            (5, 2),
            (1, 3),
            (5, 3),
            (4, 3),
            (5, 4),
            (2, 5),
        ])
        .unwrap()
    }

    #[test]
    fn trait_is_object_safe_and_matches_inherent_methods() {
        let g = paper_example();
        let view: &dyn GraphView = &g;
        assert_eq!(view.vertex_count(), g.vertex_count());
        assert_eq!(view.edge_count(), g.edge_count());
        for v in view.vertices() {
            assert_eq!(view.out_neighbors(v), g.out_neighbors(v));
            assert_eq!(view.in_neighbors(v), g.in_neighbors(v));
            assert_eq!(view.out_weights(v), g.out_weights(v));
            assert_eq!(view.in_weights(v), g.in_weights(v));
            assert_eq!(view.out_degree(v), g.out_degree(v));
            assert_eq!(view.in_degree(v), g.in_degree(v));
            for dir in [Direction::Out, Direction::In] {
                assert_eq!(view.edge_offset(v, dir), g.edge_offset(v, dir));
                assert_eq!(view.neighbors(v, dir), g.neighbors(v, dir));
                assert_eq!(view.degree(v, dir), g.degree(v, dir));
                assert_eq!(view.weights(v, dir), g.weights(v, dir));
            }
        }
        assert!((view.average_degree() - g.average_degree()).abs() < 1e-12);
    }

    #[test]
    fn arc_coercion_works() {
        let g: std::sync::Arc<dyn GraphView> = std::sync::Arc::new(paper_example());
        assert_eq!(g.vertex_count(), 6);
    }
}
