//! # grasp-graph — graph substrate for the GRASP reproduction
//!
//! This crate provides everything the GRASP (HPCA'20) reproduction needs to
//! *represent*, *generate* and *characterize* graphs:
//!
//! * [`Csr`] — a Compressed Sparse Row graph representation with optional
//!   edge weights, in-/out-edge views and transposition, mirroring the format
//!   used by shared-memory frameworks such as Ligra (Sec. II-B of the paper).
//! * [`EdgeList`] — a mutable edge-list staging container used by builders,
//!   generators and I/O.
//! * [`generators`] — synthetic graph generators standing in for the paper's
//!   datasets (Table V): R-MAT/Kronecker power-law graphs, uniform
//!   Erdős–Rényi graphs, Chung-Lu graphs with a configurable skew exponent
//!   and a Watts–Strogatz-style low-skew generator.
//! * [`degree`] — degree statistics and the hot-vertex / edge-coverage skew
//!   analysis of Table I.
//! * [`io`] — plain-text edge-list and compact binary save/load.
//! * [`prng`] — deterministic pseudo-random number generators (SplitMix64,
//!   Xoshiro256**) so every synthetic dataset and probabilistic policy in the
//!   workspace is exactly reproducible.
//!
//! ## Quick example
//!
//! ```
//! use grasp_graph::generators::{Rmat, GraphGenerator};
//! use grasp_graph::degree::SkewReport;
//!
//! // A small Twitter-like power-law graph.
//! let graph = Rmat::new(10, 16).generate(42);
//! assert_eq!(graph.vertex_count(), 1 << 10);
//!
//! // Hot vertices (degree >= average) cover the vast majority of edges.
//! let skew = SkewReport::for_out_edges(&graph);
//! assert!(skew.edge_coverage_pct() > 50.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csr;
pub mod degree;
pub mod edgelist;
pub mod generators;
pub mod ingest;
pub mod io;
pub mod prng;
pub mod types;
pub mod view;

pub use csr::{Csr, CsrBuilder};
pub use degree::{DegreeStats, SkewReport};
pub use edgelist::EdgeList;
pub use ingest::{DiskCsrError, GraphStats, MappedCsr};
pub use types::{EdgeWeight, VertexId};
pub use view::GraphView;

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// An edge references a vertex that is outside of the declared vertex range.
    VertexOutOfBounds {
        /// The offending vertex identifier.
        vertex: u64,
        /// Number of vertices in the graph.
        vertex_count: u64,
    },
    /// The graph is empty but the operation requires at least one vertex.
    EmptyGraph,
    /// An I/O error occurred while reading or writing a graph.
    Io(std::io::Error),
    /// The on-disk representation is malformed.
    Format(String),
    /// A typed on-disk binary-CSR error (see [`ingest::DiskCsrError`]).
    DiskCsr(ingest::DiskCsrError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} is out of bounds for a graph with {vertex_count} vertices"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Format(msg) => write!(f, "malformed graph data: {msg}"),
            GraphError::DiskCsr(e) => write!(f, "binary CSR error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::DiskCsr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ingest::DiskCsrError> for GraphError {
    fn from(e: ingest::DiskCsrError) -> Self {
        GraphError::DiskCsr(e)
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 12,
            vertex_count: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("12"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
