//! Compressed Sparse Row (CSR) graph representation.
//!
//! CSR encodes a graph with two arrays per direction (Sec. II-B of the
//! paper): the *Vertex Array* (called `offsets` here) stores, for every
//! vertex, the index of its first edge in the *Edge Array* (`targets`), which
//! stores neighbour IDs grouped by owning vertex. [`Csr`] keeps **both**
//! directions so that pull- and push-based computations, as well as
//! direction-switching frameworks, can be expressed without re-building the
//! graph.

use crate::edgelist::EdgeList;
use crate::types::{Direction, Edge, EdgeWeight, VertexId};
use crate::view::GraphView;
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// One direction (out- or in-edges) of a CSR graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct CsrDirection {
    /// `offsets[v]..offsets[v+1]` is the slice of `targets` owned by `v`.
    pub offsets: Vec<u64>,
    /// Neighbour vertex IDs.
    pub targets: Vec<VertexId>,
    /// Edge weights, parallel to `targets`.
    pub weights: Vec<EdgeWeight>,
}

impl CsrDirection {
    fn from_edges(vertex_count: usize, edges: &[Edge], use_src_as_owner: bool) -> Self {
        let mut degrees = vec![0u64; vertex_count];
        for e in edges {
            let owner = if use_src_as_owner { e.src } else { e.dst };
            degrees[owner as usize] += 1;
        }
        let mut offsets = vec![0u64; vertex_count + 1];
        for v in 0..vertex_count {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let edge_total = offsets[vertex_count] as usize;
        let mut targets = vec![0 as VertexId; edge_total];
        let mut weights = vec![0 as EdgeWeight; edge_total];
        let mut cursor = offsets.clone();
        for e in edges {
            let (owner, other) = if use_src_as_owner {
                (e.src, e.dst)
            } else {
                (e.dst, e.src)
            };
            let idx = cursor[owner as usize] as usize;
            targets[idx] = other;
            weights[idx] = e.weight;
            cursor[owner as usize] += 1;
        }
        // Sort each adjacency list for deterministic traversal order and
        // better binary-search behaviour.
        let mut dir = Self {
            offsets,
            targets,
            weights,
        };
        dir.sort_adjacency_lists(vertex_count);
        dir
    }

    fn sort_adjacency_lists(&mut self, vertex_count: usize) {
        for v in 0..vertex_count {
            let lo = self.offsets[v] as usize;
            let hi = self.offsets[v + 1] as usize;
            sort_adjacency(&mut self.targets[lo..hi], &mut self.weights[lo..hi]);
        }
    }

    #[inline]
    fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    #[inline]
    fn neighbor_weights(&self, v: VertexId) -> &[EdgeWeight] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }
}

/// Sorts one adjacency list (parallel target/weight slices) by target.
///
/// This is the single canonical adjacency ordering used by every CSR builder
/// in the crate — [`Csr::from_edge_list`] and the chunked parallel builder in
/// [`crate::ingest`] both funnel through it, which is what makes their
/// outputs bit-identical for the same scatter order.
pub(crate) fn sort_adjacency(targets: &mut [VertexId], weights: &mut [EdgeWeight]) {
    if targets.len() > 1 {
        let mut pairs: Vec<(VertexId, EdgeWeight)> = targets
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        pairs.sort_unstable_by_key(|&(t, _)| t);
        for (k, (t, w)) in pairs.into_iter().enumerate() {
            targets[k] = t;
            weights[k] = w;
        }
    }
}

/// A directed graph in Compressed Sparse Row form, storing both out- and
/// in-edges.
///
/// ```
/// use grasp_graph::{Csr, EdgeList};
///
/// let mut edges = EdgeList::new(6);
/// // The example graph of Fig. 1(a) in the paper.
/// for (s, d) in [(3, 0), (2, 1), (0, 2), (5, 2), (1, 3), (5, 3), (4, 3), (5, 4), (2, 5)] {
///     edges.push(s, d).unwrap();
/// }
/// let g = Csr::from_edge_list(&edges).unwrap();
/// assert_eq!(g.vertex_count(), 6);
/// assert_eq!(g.edge_count(), 9);
/// assert_eq!(g.in_degree(3), 3);
/// assert_eq!(g.out_degree(5), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    vertex_count: usize,
    edge_count: u64,
    out: CsrDirection,
    inc: CsrDirection,
}

impl Csr {
    /// Builds a CSR graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if an edge endpoint exceeds
    /// the edge list's declared vertex count (only possible through
    /// unchecked construction paths) and [`GraphError::EmptyGraph`] if the
    /// vertex count is zero.
    pub fn from_edge_list(edges: &EdgeList) -> Result<Self> {
        let vertex_count = edges.vertex_count();
        if vertex_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let vertex_count_usize = usize::try_from(vertex_count)
            .map_err(|_| GraphError::Format("vertex count exceeds usize".into()))?;
        for e in edges.iter() {
            for v in [e.src, e.dst] {
                if u64::from(v) >= vertex_count {
                    return Err(GraphError::VertexOutOfBounds {
                        vertex: u64::from(v),
                        vertex_count,
                    });
                }
            }
        }
        let out = CsrDirection::from_edges(vertex_count_usize, edges.edges(), true);
        let inc = CsrDirection::from_edges(vertex_count_usize, edges.edges(), false);
        Ok(Self {
            vertex_count: vertex_count_usize,
            edge_count: edges.edge_count() as u64,
            out,
            inc,
        })
    }

    /// Builds a CSR graph directly from `(src, dst)` pairs.
    ///
    /// The vertex count is `max(endpoint) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if the iterator is empty.
    pub fn from_edges<I>(edges: I) -> Result<Self>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let list: EdgeList = edges.into_iter().map(|(s, d)| Edge::new(s, d)).collect();
        Self::from_edge_list(&list)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Iterator over all vertex IDs.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count as VertexId
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u64 {
        self.inc.degree(v)
    }

    /// Degree of `v` in the requested direction.
    #[inline]
    pub fn degree(&self, v: VertexId, dir: Direction) -> u64 {
        match dir {
            Direction::Out => self.out_degree(v),
            Direction::In => self.in_degree(v),
        }
    }

    /// Out-neighbours of `v` (vertices `v` points to).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// In-neighbours of `v` (vertices pointing to `v`).
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inc.neighbors(v)
    }

    /// Neighbours of `v` in the requested direction.
    #[inline]
    pub fn neighbors(&self, v: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Out => self.out_neighbors(v),
            Direction::In => self.in_neighbors(v),
        }
    }

    /// Weights parallel to [`Csr::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: VertexId) -> &[EdgeWeight] {
        self.out.neighbor_weights(v)
    }

    /// Weights parallel to [`Csr::in_neighbors`].
    #[inline]
    pub fn in_weights(&self, v: VertexId) -> &[EdgeWeight] {
        self.inc.neighbor_weights(v)
    }

    /// Weights parallel to [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, v: VertexId, dir: Direction) -> &[EdgeWeight] {
        match dir {
            Direction::Out => self.out_weights(v),
            Direction::In => self.in_weights(v),
        }
    }

    /// Offset of vertex `v`'s first edge in the edge array for `dir`.
    ///
    /// This is the value the *Vertex Array* holds in the CSR encoding and is
    /// used by the analytics engine to model Vertex Array memory accesses.
    #[inline]
    pub fn edge_offset(&self, v: VertexId, dir: Direction) -> u64 {
        match dir {
            Direction::Out => self.out.offsets[v as usize],
            Direction::In => self.inc.offsets[v as usize],
        }
    }

    /// Returns an iterator over all edges as `(src, dst, weight)` triples in
    /// out-CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, EdgeWeight)> + '_ {
        self.vertices().flat_map(move |v| {
            self.out_neighbors(v)
                .iter()
                .zip(self.out_weights(v))
                .map(move |(&d, &w)| (v, d, w))
        })
    }

    /// Returns the transposed graph (every edge reversed).
    pub fn transpose(&self) -> Self {
        Self {
            vertex_count: self.vertex_count,
            edge_count: self.edge_count,
            out: self.inc.clone(),
            inc: self.out.clone(),
        }
    }

    /// Average degree (`edges / vertices`).
    ///
    /// # Panics
    ///
    /// Never panics; an empty graph cannot be constructed.
    pub fn average_degree(&self) -> f64 {
        self.edge_count as f64 / self.vertex_count as f64
    }

    /// Returns `true` if an edge `src -> dst` exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.out_neighbors(src).binary_search(&dst).is_ok()
    }

    /// Raw CSR column arrays for `dir`: `(offsets, targets, weights)`.
    ///
    /// `offsets` has `vertex_count + 1` entries; `targets` and `weights` have
    /// `edge_count` entries each. This is the exact layout the on-disk binary
    /// CSR ([`crate::ingest`]) persists per direction.
    pub fn raw_columns(&self, dir: Direction) -> (&[u64], &[VertexId], &[EdgeWeight]) {
        let d = match dir {
            Direction::Out => &self.out,
            Direction::In => &self.inc,
        };
        (&d.offsets, &d.targets, &d.weights)
    }

    /// Reassembles a CSR graph from raw column arrays (the inverse of
    /// [`Csr::raw_columns`]), validating the CSR invariants.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] for a zero vertex count and
    /// [`GraphError::Format`] when column lengths disagree, offsets are not
    /// monotone, do not start at 0 / end at `edge_count`, or a target is out
    /// of range.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_columns(
        vertex_count: usize,
        edge_count: u64,
        out_offsets: Vec<u64>,
        out_targets: Vec<VertexId>,
        out_weights: Vec<EdgeWeight>,
        in_offsets: Vec<u64>,
        in_targets: Vec<VertexId>,
        in_weights: Vec<EdgeWeight>,
    ) -> Result<Self> {
        if vertex_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let out = CsrDirection {
            offsets: out_offsets,
            targets: out_targets,
            weights: out_weights,
        };
        let inc = CsrDirection {
            offsets: in_offsets,
            targets: in_targets,
            weights: in_weights,
        };
        for (name, d) in [("out", &out), ("in", &inc)] {
            if d.offsets.len() != vertex_count + 1 {
                return Err(GraphError::Format(format!(
                    "{name} offsets column has {} entries, expected {}",
                    d.offsets.len(),
                    vertex_count + 1
                )));
            }
            if d.targets.len() as u64 != edge_count || d.weights.len() as u64 != edge_count {
                return Err(GraphError::Format(format!(
                    "{name} edge columns have {}/{} entries, expected {edge_count}",
                    d.targets.len(),
                    d.weights.len()
                )));
            }
            if d.offsets[0] != 0 || d.offsets[vertex_count] != edge_count {
                return Err(GraphError::Format(format!(
                    "{name} offsets must span 0..={edge_count}"
                )));
            }
            if d.offsets.windows(2).any(|w| w[0] > w[1]) {
                return Err(GraphError::Format(format!(
                    "{name} offsets are not monotone"
                )));
            }
            if let Some(&bad) = d.targets.iter().find(|&&t| t as usize >= vertex_count) {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u64::from(bad),
                    vertex_count: vertex_count as u64,
                });
            }
        }
        Ok(Self {
            vertex_count,
            edge_count,
            out,
            inc,
        })
    }
}

impl GraphView for Csr {
    fn vertex_count(&self) -> usize {
        Csr::vertex_count(self)
    }

    fn edge_count(&self) -> u64 {
        Csr::edge_count(self)
    }

    fn out_degree(&self, v: VertexId) -> u64 {
        Csr::out_degree(self, v)
    }

    fn in_degree(&self, v: VertexId) -> u64 {
        Csr::in_degree(self, v)
    }

    fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        Csr::out_neighbors(self, v)
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        Csr::in_neighbors(self, v)
    }

    fn out_weights(&self, v: VertexId) -> &[EdgeWeight] {
        Csr::out_weights(self, v)
    }

    fn in_weights(&self, v: VertexId) -> &[EdgeWeight] {
        Csr::in_weights(self, v)
    }

    fn out_edge_offset(&self, v: VertexId) -> u64 {
        self.out.offsets[v as usize]
    }

    fn in_edge_offset(&self, v: VertexId) -> u64 {
        self.inc.offsets[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example graph of Fig. 1(a): edges are (src -> dst).
    fn paper_example() -> Csr {
        Csr::from_edges([
            (3, 0),
            (2, 1),
            (0, 2),
            (5, 2),
            (1, 3),
            (5, 3),
            (4, 3),
            (5, 4),
            (2, 5),
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_degrees() {
        let g = paper_example();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 9);
        // In-degrees follow the Vertex Array of Fig. 1(b): 1,1,2,3,1,1.
        let in_degrees: Vec<u64> = g.vertices().map(|v| g.in_degree(v)).collect();
        assert_eq!(in_degrees, vec![1, 1, 2, 3, 1, 1]);
        // Out-degrees: vertex 5 is the hub with 3 out-edges.
        assert_eq!(g.out_degree(5), 3);
        assert_eq!(g.out_degree(2), 2);
    }

    #[test]
    fn in_neighbors_match_paper_edge_array() {
        let g = paper_example();
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_neighbors(1), &[2]);
        assert_eq!(g.in_neighbors(2), &[0, 5]);
        assert_eq!(g.in_neighbors(3), &[1, 4, 5]);
        assert_eq!(g.in_neighbors(4), &[5]);
        assert_eq!(g.in_neighbors(5), &[2]);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let el = EdgeList::new(0);
        assert!(matches!(
            Csr::from_edge_list(&el),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn isolated_vertices_are_preserved() {
        let mut el = EdgeList::new(10);
        el.push(0, 1).unwrap();
        let g = Csr::from_edge_list(&el).unwrap();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.out_degree(9), 0);
        assert_eq!(g.out_neighbors(9), &[] as &[VertexId]);
    }

    #[test]
    fn transpose_swaps_directions() {
        let g = paper_example();
        let t = g.transpose();
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), t.in_neighbors(v));
            assert_eq!(g.in_neighbors(v), t.out_neighbors(v));
        }
        assert_eq!(g.edge_count(), t.edge_count());
    }

    #[test]
    fn edge_iterator_covers_every_edge() {
        let g = paper_example();
        let edges: Vec<(u32, u32, u32)> = g.edges().collect();
        assert_eq!(edges.len() as u64, g.edge_count());
        assert!(edges.contains(&(5, 3, 1)));
        assert!(edges.contains(&(3, 0, 1)));
    }

    #[test]
    fn has_edge_uses_sorted_adjacency() {
        let g = paper_example();
        assert!(g.has_edge(5, 2));
        assert!(g.has_edge(5, 3));
        assert!(g.has_edge(5, 4));
        assert!(!g.has_edge(5, 0));
        assert!(!g.has_edge(0, 5));
    }

    #[test]
    fn weights_round_trip() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 10).unwrap();
        el.push_weighted(0, 2, 20).unwrap();
        el.push_weighted(1, 2, 30).unwrap();
        let g = Csr::from_edge_list(&el).unwrap();
        assert_eq!(g.out_weights(0), &[10, 20]);
        assert_eq!(g.in_weights(2), &[20, 30]);
    }

    #[test]
    fn average_degree() {
        let g = paper_example();
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degree_sum_equals_edge_count() {
        let g = paper_example();
        let out_sum: u64 = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: u64 = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.edge_count());
        assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn direction_selector_is_consistent() {
        let g = paper_example();
        for v in g.vertices() {
            assert_eq!(g.neighbors(v, Direction::Out), g.out_neighbors(v));
            assert_eq!(g.neighbors(v, Direction::In), g.in_neighbors(v));
            assert_eq!(g.degree(v, Direction::Out), g.out_degree(v));
            assert_eq!(g.degree(v, Direction::In), g.in_degree(v));
            assert_eq!(g.weights(v, Direction::Out), g.out_weights(v));
            assert_eq!(g.weights(v, Direction::In), g.in_weights(v));
        }
    }

    #[test]
    fn edge_offsets_are_monotone() {
        let g = paper_example();
        for dir in [Direction::Out, Direction::In] {
            let mut prev = 0;
            for v in g.vertices() {
                let off = g.edge_offset(v, dir);
                assert!(off >= prev);
                prev = off;
            }
        }
    }
}

/// A builder for incrementally assembling a CSR graph.
///
/// This is a thin convenience wrapper around [`EdgeList`] that exists so that
/// downstream code can build graphs without importing both types.
///
/// ```
/// use grasp_graph::CsrBuilder;
/// let g = CsrBuilder::new(3)
///     .edge(0, 1)
///     .edge(1, 2)
///     .weighted_edge(2, 0, 5)
///     .build()
///     .unwrap();
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Debug, Default)]
pub struct CsrBuilder {
    edges: EdgeList,
    saw_error: Option<GraphError>,
}

impl CsrBuilder {
    /// Creates a builder for a graph over `vertex_count` vertices.
    pub fn new(vertex_count: u64) -> Self {
        Self {
            edges: EdgeList::new(vertex_count),
            saw_error: None,
        }
    }

    /// Adds an unweighted edge. Out-of-bounds endpoints are reported by
    /// [`CsrBuilder::build`].
    #[must_use]
    pub fn edge(mut self, src: VertexId, dst: VertexId) -> Self {
        if self.saw_error.is_none() {
            if let Err(e) = self.edges.push(src, dst) {
                self.saw_error = Some(e);
            }
        }
        self
    }

    /// Adds a weighted edge. Out-of-bounds endpoints are reported by
    /// [`CsrBuilder::build`].
    #[must_use]
    pub fn weighted_edge(mut self, src: VertexId, dst: VertexId, weight: EdgeWeight) -> Self {
        if self.saw_error.is_none() {
            if let Err(e) = self.edges.push_weighted(src, dst, weight) {
                self.saw_error = Some(e);
            }
        }
        self
    }

    /// Adds all edges from an iterator of `(src, dst)` pairs.
    #[must_use]
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, iter: I) -> Self {
        for (s, d) in iter {
            self = self.edge(s, d);
        }
        self
    }

    /// Finalizes the builder into a [`Csr`].
    ///
    /// # Errors
    ///
    /// Returns the first error encountered while adding edges, or any error
    /// from [`Csr::from_edge_list`].
    pub fn build(self) -> Result<Csr> {
        if let Some(e) = self.saw_error {
            return Err(e);
        }
        Csr::from_edge_list(&self.edges)
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_constructs_graph() {
        let g = CsrBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn builder_reports_out_of_bounds() {
        let res = CsrBuilder::new(2).edge(0, 5).build();
        assert!(matches!(
            res,
            Err(GraphError::VertexOutOfBounds { vertex: 5, .. })
        ));
    }

    #[test]
    fn builder_reports_first_error_only() {
        let res = CsrBuilder::new(2).edge(0, 5).edge(9, 9).build();
        assert!(matches!(
            res,
            Err(GraphError::VertexOutOfBounds { vertex: 5, .. })
        ));
    }
}
