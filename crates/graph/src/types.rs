//! Core value types shared across the graph substrate.

use serde::{Deserialize, Serialize};

/// Identifier of a vertex.
///
/// Vertices are dense integers in `0..vertex_count`, exactly as in the CSR
/// representation used by shared-memory graph frameworks. The type is a plain
/// `u32` alias rather than a newtype because vertex identifiers are used in
/// extremely hot inner loops (billions of accesses per experiment) and index
/// arithmetic on them is pervasive.
pub type VertexId = u32;

/// Edge weight used by weighted applications (SSSP).
pub type EdgeWeight = u32;

/// A directed edge `(src, dst)` with an optional weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight; `1` for unweighted graphs.
    pub weight: EdgeWeight,
}

impl Edge {
    /// Creates an unweighted edge (weight 1).
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Self {
            src,
            dst,
            weight: 1,
        }
    }

    /// Creates a weighted edge.
    pub fn weighted(src: VertexId, dst: VertexId, weight: EdgeWeight) -> Self {
        Self { src, dst, weight }
    }

    /// Returns the edge with source and destination swapped.
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

impl From<(VertexId, VertexId)> for Edge {
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge::new(src, dst)
    }
}

impl From<(VertexId, VertexId, EdgeWeight)> for Edge {
    fn from((src, dst, weight): (VertexId, VertexId, EdgeWeight)) -> Self {
        Edge::weighted(src, dst, weight)
    }
}

/// Direction of traversal with respect to the stored edges.
///
/// Pull-based computations traverse **in**-edges (a vertex pulls updates from
/// its in-neighbours); push-based computations traverse **out**-edges (a
/// vertex pushes updates to its out-neighbours). See Sec. II-B of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Traverse out-edges (push).
    Out,
    /// Traverse in-edges (pull).
    In,
}

impl Direction {
    /// Returns the opposite direction.
    pub fn reversed(self) -> Self {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Out => write!(f, "out"),
            Direction::In => write!(f, "in"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::new(1, 2);
        assert_eq!(e.weight, 1);
        let w = Edge::weighted(1, 2, 9);
        assert_eq!(w.weight, 9);
    }

    #[test]
    fn edge_reversed_swaps_endpoints() {
        let e = Edge::weighted(3, 7, 5).reversed();
        assert_eq!((e.src, e.dst, e.weight), (7, 3, 5));
    }

    #[test]
    fn edge_from_tuples() {
        let e: Edge = (1u32, 2u32).into();
        assert_eq!(e, Edge::new(1, 2));
        let w: Edge = (1u32, 2u32, 4u32).into();
        assert_eq!(w, Edge::weighted(1, 2, 4));
    }

    #[test]
    fn direction_reversed_round_trips() {
        assert_eq!(Direction::Out.reversed(), Direction::In);
        assert_eq!(Direction::In.reversed().reversed(), Direction::In);
    }

    #[test]
    fn direction_display() {
        assert_eq!(Direction::Out.to_string(), "out");
        assert_eq!(Direction::In.to_string(), "in");
    }
}
