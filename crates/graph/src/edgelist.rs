//! Mutable edge-list staging container.
//!
//! Generators and I/O produce an [`EdgeList`]; the [`crate::Csr`] builder
//! consumes it. The edge list keeps track of the declared vertex count so that
//! isolated (degree-zero) vertices at the tail of the ID space are preserved —
//! power-law graphs have many of them and they matter for footprint
//! calculations.

use crate::types::{Edge, EdgeWeight, VertexId};
use crate::{GraphError, Result};

/// A list of directed edges together with a vertex count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    vertex_count: u64,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `vertex_count` vertices.
    pub fn new(vertex_count: u64) -> Self {
        Self {
            vertex_count,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list with pre-allocated capacity for `edge_capacity` edges.
    pub fn with_capacity(vertex_count: u64, edge_capacity: usize) -> Self {
        Self {
            vertex_count,
            edges: Vec::with_capacity(edge_capacity),
        }
    }

    /// Number of vertices (including isolated vertices).
    pub fn vertex_count(&self) -> u64 {
        self.vertex_count
    }

    /// Number of edges currently in the list.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrowed view of the edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds an unweighted edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if either endpoint is outside
    /// the declared vertex range.
    pub fn push(&mut self, src: VertexId, dst: VertexId) -> Result<()> {
        self.push_edge(Edge::new(src, dst))
    }

    /// Adds a weighted edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if either endpoint is outside
    /// the declared vertex range.
    pub fn push_weighted(
        &mut self,
        src: VertexId,
        dst: VertexId,
        weight: EdgeWeight,
    ) -> Result<()> {
        self.push_edge(Edge::weighted(src, dst, weight))
    }

    /// Adds an [`Edge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] if either endpoint is outside
    /// the declared vertex range.
    pub fn push_edge(&mut self, edge: Edge) -> Result<()> {
        for v in [edge.src, edge.dst] {
            if u64::from(v) >= self.vertex_count {
                return Err(GraphError::VertexOutOfBounds {
                    vertex: u64::from(v),
                    vertex_count: self.vertex_count,
                });
            }
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Adds an edge without bounds checking; used by generators that construct
    /// endpoints from the vertex count and therefore cannot go out of range.
    pub(crate) fn push_unchecked(&mut self, edge: Edge) {
        debug_assert!(u64::from(edge.src) < self.vertex_count);
        debug_assert!(u64::from(edge.dst) < self.vertex_count);
        self.edges.push(edge);
    }

    /// Removes self-loops (`src == dst`).
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|e| e.src != e.dst);
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates
    /// (keeping the first occurrence's weight).
    pub fn sort_and_dedup(&mut self) {
        self.edges.sort_unstable_by_key(|e| (e.src, e.dst));
        self.edges.dedup_by_key(|e| (e.src, e.dst));
    }

    /// Adds the reverse of every edge, making the graph symmetric
    /// (an undirected graph encoded as two directed edges).
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self
            .edges
            .iter()
            .filter(|e| e.src != e.dst)
            .map(|e| e.reversed())
            .collect();
        self.edges.extend(reversed);
        self.sort_and_dedup();
    }

    /// Consumes the list and returns the edges.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Iterates over the edges.
    pub fn iter(&self) -> std::slice::Iter<'_, Edge> {
        self.edges.iter()
    }
}

impl FromIterator<Edge> for EdgeList {
    /// Builds an edge list from an edge iterator; the vertex count is set to
    /// `max(endpoint) + 1`.
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        let vertex_count = edges
            .iter()
            .map(|e| u64::from(e.src.max(e.dst)) + 1)
            .max()
            .unwrap_or(0);
        Self {
            vertex_count,
            edges,
        }
    }
}

impl Extend<Edge> for EdgeList {
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for e in iter {
            let needed = u64::from(e.src.max(e.dst)) + 1;
            if needed > self.vertex_count {
                self.vertex_count = needed;
            }
            self.edges.push(e);
        }
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

impl IntoIterator for EdgeList {
    type Item = Edge;
    type IntoIter = std::vec::IntoIter<Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_respects_bounds() {
        let mut el = EdgeList::new(4);
        assert!(el.push(0, 3).is_ok());
        assert!(matches!(
            el.push(0, 4),
            Err(GraphError::VertexOutOfBounds { vertex: 4, .. })
        ));
        assert!(matches!(
            el.push(9, 1),
            Err(GraphError::VertexOutOfBounds { vertex: 9, .. })
        ));
        assert_eq!(el.edge_count(), 1);
    }

    #[test]
    fn sort_and_dedup_removes_duplicates() {
        let mut el = EdgeList::new(5);
        el.push(2, 1).unwrap();
        el.push(0, 1).unwrap();
        el.push(2, 1).unwrap();
        el.push(0, 1).unwrap();
        el.sort_and_dedup();
        assert_eq!(el.edge_count(), 2);
        assert_eq!(el.edges()[0], Edge::new(0, 1));
        assert_eq!(el.edges()[1], Edge::new(2, 1));
    }

    #[test]
    fn remove_self_loops() {
        let mut el = EdgeList::new(3);
        el.push(0, 0).unwrap();
        el.push(0, 1).unwrap();
        el.push(2, 2).unwrap();
        el.remove_self_loops();
        assert_eq!(el.edge_count(), 1);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut el = EdgeList::new(3);
        el.push(0, 1).unwrap();
        el.push(1, 2).unwrap();
        el.symmetrize();
        let pairs: Vec<(u32, u32)> = el.iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn symmetrize_is_idempotent() {
        let mut el = EdgeList::new(3);
        el.push(0, 1).unwrap();
        el.symmetrize();
        let once = el.clone();
        el.symmetrize();
        assert_eq!(el, once);
    }

    #[test]
    fn from_iterator_derives_vertex_count() {
        let el: EdgeList = [Edge::new(0, 5), Edge::new(2, 3)].into_iter().collect();
        assert_eq!(el.vertex_count(), 6);
        assert_eq!(el.edge_count(), 2);
    }

    #[test]
    fn from_empty_iterator() {
        let el: EdgeList = std::iter::empty::<Edge>().collect();
        assert_eq!(el.vertex_count(), 0);
        assert!(el.is_empty());
    }

    #[test]
    fn extend_grows_vertex_count() {
        let mut el = EdgeList::new(2);
        el.extend([Edge::new(0, 1), Edge::new(4, 2)]);
        assert_eq!(el.vertex_count(), 5);
        assert_eq!(el.edge_count(), 2);
    }

    #[test]
    fn weighted_edges_keep_weight() {
        let mut el = EdgeList::new(3);
        el.push_weighted(0, 1, 7).unwrap();
        assert_eq!(el.edges()[0].weight, 7);
    }

    #[test]
    fn into_iterator_yields_all_edges() {
        let mut el = EdgeList::new(3);
        el.push(0, 1).unwrap();
        el.push(1, 2).unwrap();
        let owned: Vec<Edge> = el.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        let borrowed: Vec<&Edge> = (&el).into_iter().collect();
        assert_eq!(borrowed.len(), 2);
    }
}
