//! Engine helpers: CSR structural arrays and push/pull direction selection.
//!
//! The applications model every structural access themselves (they own the
//! traversal loops), but the bookkeeping they share lives here: allocating the
//! CSR Vertex/Edge arrays and the frontier bitmap in the simulated address
//! space, and Ligra's push/pull direction-switching heuristic.

use crate::frontier::Frontier;
use crate::layout::ArrayHandle;
use crate::mem::MemoryModel;
use crate::sites;
use crate::workspace::Workspace;
use grasp_cachesim::request::RegionLabel;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// Handles of the structural arrays of a CSR graph placed in the simulated
/// address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrArrays {
    /// The Vertex Array (per-vertex offsets, 8 bytes each).
    pub vertex_array: ArrayHandle,
    /// The Edge Array (neighbour IDs, 4 bytes each for unweighted graphs,
    /// 8 bytes when weights are carried).
    pub edge_array: ArrayHandle,
    /// The frontier membership bitmap (1 byte per vertex).
    pub frontier_bitmap: ArrayHandle,
}

impl CsrArrays {
    /// Allocates the structural arrays for `graph`.
    ///
    /// The frontier is modelled with 8-byte elements rather than Ligra's
    /// 1-byte booleans: because the reproduction scales the vertex count down
    /// by ~1000x but keeps the cache-block size fixed, a byte-per-vertex
    /// frontier would suddenly fit in the scaled LLC, which never happens at
    /// paper scale (62 MB frontier vs a 16 MB LLC). Widening the element
    /// keeps the frontier : LLC footprint ratio in the paper's regime (see
    /// DESIGN.md, substitutions).
    pub fn allocate<M: MemoryModel>(
        ws: &mut Workspace<M>,
        graph: &dyn GraphView,
        weighted: bool,
    ) -> Self {
        let n = graph.vertex_count() as u64;
        let m = graph.edge_count();
        let edge_bytes = if weighted { 8 } else { 4 };
        Self {
            vertex_array: ws.allocate("vertex_array", RegionLabel::VertexArray, n + 1, 8),
            edge_array: ws.allocate("edge_array", RegionLabel::EdgeArray, m.max(1), edge_bytes),
            frontier_bitmap: ws.allocate("frontier", RegionLabel::Frontier, n, 8),
        }
    }

    /// Models the Vertex Array read for vertex `v` (the offset lookup at the
    /// start of processing a vertex).
    #[inline]
    pub fn read_vertex<M: MemoryModel>(&self, ws: &mut Workspace<M>, v: VertexId) {
        ws.read(self.vertex_array, u64::from(v), sites::VERTEX_ARRAY);
    }

    /// Models the Edge Array read for global edge index `edge_idx`.
    #[inline]
    pub fn read_edge<M: MemoryModel>(&self, ws: &mut Workspace<M>, edge_idx: u64) {
        ws.read(self.edge_array, edge_idx, sites::EDGE_ARRAY);
    }

    /// Models a frontier-bitmap read for vertex `v`.
    #[inline]
    pub fn read_frontier<M: MemoryModel>(&self, ws: &mut Workspace<M>, v: VertexId) {
        ws.read(self.frontier_bitmap, u64::from(v), sites::FRONTIER);
    }

    /// Models a frontier-bitmap write for vertex `v`.
    #[inline]
    pub fn write_frontier<M: MemoryModel>(&self, ws: &mut Workspace<M>, v: VertexId) {
        ws.write(self.frontier_bitmap, u64::from(v), sites::FRONTIER);
    }

    /// Activates `v` for the next round: models the frontier-bitmap write
    /// and records the membership in `next`. One call site for the
    /// (write, add) pair every application emits, so each app contributes
    /// the identical access sequence to the record batch.
    #[inline]
    pub fn activate<M: MemoryModel>(
        &self,
        ws: &mut Workspace<M>,
        next: &mut Frontier,
        v: VertexId,
    ) {
        self.write_frontier(ws, v);
        next.add(v);
    }
}

/// Ligra's direction-switching heuristic: traverse in the pull (dense)
/// direction when the frontier's outgoing work exceeds `edges / 20`,
/// otherwise push (sparse).
pub fn choose_direction(graph: &dyn GraphView, frontier: &Frontier) -> Direction {
    let threshold = graph.edge_count() / 20;
    if frontier.out_degree_sum(graph) + frontier.len() as u64 > threshold {
        Direction::In // dense: every vertex pulls from its in-neighbours
    } else {
        Direction::Out // sparse: frontier vertices push to their out-neighbours
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn arrays_are_allocated_with_the_right_sizes() {
        let g = Rmat::new(8, 4).generate(1);
        let mut ws = Workspace::new(NativeMemory::new());
        let arrays = CsrArrays::allocate(&mut ws, &g, false);
        let space = ws.address_space();
        assert_eq!(
            space.region(arrays.vertex_array).elements,
            g.vertex_count() as u64 + 1
        );
        assert_eq!(space.region(arrays.edge_array).elements, g.edge_count());
        assert_eq!(space.region(arrays.edge_array).element_bytes, 4);
        assert_eq!(space.region(arrays.frontier_bitmap).element_bytes, 8);
    }

    #[test]
    fn weighted_edge_array_is_wider() {
        let g = Rmat::new(6, 4).generate(1);
        let mut ws = Workspace::new(NativeMemory::new());
        let arrays = CsrArrays::allocate(&mut ws, &g, true);
        assert_eq!(
            ws.address_space().region(arrays.edge_array).element_bytes,
            8
        );
    }

    #[test]
    fn structural_reads_are_reported() {
        let g = Rmat::new(6, 4).generate(1);
        let mut ws = Workspace::new(NativeMemory::new());
        let arrays = CsrArrays::allocate(&mut ws, &g, false);
        arrays.read_vertex(&mut ws, 0);
        arrays.read_edge(&mut ws, 0);
        arrays.read_frontier(&mut ws, 0);
        arrays.write_frontier(&mut ws, 0);
        assert_eq!(ws.access_count(), 4);
    }

    #[test]
    fn activate_writes_the_bitmap_and_joins_the_frontier() {
        let g = Rmat::new(6, 4).generate(1);
        let mut ws = Workspace::new(NativeMemory::new());
        let arrays = CsrArrays::allocate(&mut ws, &g, false);
        let mut next = Frontier::empty(g.vertex_count());
        arrays.activate(&mut ws, &mut next, 3);
        arrays.activate(&mut ws, &mut next, 3);
        // Re-activation models the store again (the program performs it)
        // even though membership dedups.
        assert_eq!(ws.access_count(), 2);
        assert_eq!(next.len(), 1);
        assert!(next.contains(3));
    }

    #[test]
    fn direction_switching_follows_frontier_size() {
        let g = Rmat::new(10, 8).generate(3);
        let small = Frontier::single(g.vertex_count(), 0);
        let large = Frontier::full(g.vertex_count());
        assert_eq!(choose_direction(&g, &small), Direction::Out);
        assert_eq!(choose_direction(&g, &large), Direction::In);
    }
}
