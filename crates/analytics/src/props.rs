//! Property Arrays: per-vertex application state with a modelled memory
//! layout.
//!
//! An application may keep several per-vertex quantities (e.g. PageRank keeps
//! the previous and the current rank). The paper's data-structure optimization
//! (Sec. IV-A, Table IV) *merges* such arrays so that all fields of one vertex
//! share a cache block; [`PropertyLayout`] selects between the merged and the
//! separate layout so the Table IV experiment can quantify the difference.

use crate::layout::ArrayHandle;
use crate::mem::MemoryModel;
use crate::workspace::Workspace;
use grasp_cachesim::request::{AccessSite, RegionLabel};
use serde::{Deserialize, Serialize};

/// How multiple per-vertex fields are laid out in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PropertyLayout {
    /// One array per field (the original Ligra layout).
    Separate,
    /// A single array of structs: all fields of a vertex are adjacent
    /// (the optimized layout of Table IV).
    #[default]
    Merged,
}

/// Identifier of one field within a [`PropertySet`].
pub type FieldId = usize;

/// A set of per-vertex property fields allocated in a workspace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertySet {
    layout: PropertyLayout,
    vertex_count: u64,
    field_bytes: Vec<u64>,
    field_offsets: Vec<u64>,
    /// Merged: exactly one handle. Separate: one handle per field.
    handles: Vec<ArrayHandle>,
}

impl PropertySet {
    /// Allocates a property set with the given per-field element sizes.
    ///
    /// # Panics
    ///
    /// Panics if `fields` is empty or any field size is zero.
    pub fn allocate<M: MemoryModel>(
        ws: &mut Workspace<M>,
        name: &str,
        vertex_count: u64,
        fields: &[u64],
        layout: PropertyLayout,
    ) -> Self {
        assert!(
            !fields.is_empty(),
            "a property set needs at least one field"
        );
        assert!(
            fields.iter().all(|&b| b > 0),
            "field sizes must be non-zero"
        );
        let mut field_offsets = Vec::with_capacity(fields.len());
        let mut running = 0u64;
        for &bytes in fields {
            field_offsets.push(running);
            running += bytes;
        }
        let handles = match layout {
            PropertyLayout::Merged => {
                vec![ws.allocate(name, RegionLabel::Property, vertex_count, running)]
            }
            PropertyLayout::Separate => fields
                .iter()
                .enumerate()
                .map(|(i, &bytes)| {
                    ws.allocate(
                        &format!("{name}.{i}"),
                        RegionLabel::Property,
                        vertex_count,
                        bytes,
                    )
                })
                .collect(),
        };
        Self {
            layout,
            vertex_count,
            field_bytes: fields.to_vec(),
            field_offsets,
            handles,
        }
    }

    /// The layout this set was allocated with.
    pub fn layout(&self) -> PropertyLayout {
        self.layout
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.field_bytes.len()
    }

    /// Number of vertices covered.
    pub fn vertex_count(&self) -> u64 {
        self.vertex_count
    }

    /// The array handles backing this set (one for merged, one per field for
    /// separate). These are the arrays whose bounds get programmed into the
    /// Address Bound Registers.
    pub fn handles(&self) -> &[ArrayHandle] {
        &self.handles
    }

    /// Models a read of `field` for vertex `v`.
    #[inline]
    pub fn read<M: MemoryModel>(
        &self,
        ws: &mut Workspace<M>,
        field: FieldId,
        v: u64,
        site: AccessSite,
    ) {
        match self.layout {
            PropertyLayout::Merged => {
                ws.read_field(self.handles[0], v, self.field_offsets[field], site)
            }
            PropertyLayout::Separate => ws.read(self.handles[field], v, site),
        }
    }

    /// Models a write of `field` for vertex `v`.
    #[inline]
    pub fn write<M: MemoryModel>(
        &self,
        ws: &mut Workspace<M>,
        field: FieldId,
        v: u64,
        site: AccessSite,
    ) {
        match self.layout {
            PropertyLayout::Merged => {
                ws.write_field(self.handles[0], v, self.field_offsets[field], site)
            }
            PropertyLayout::Separate => ws.write(self.handles[field], v, site),
        }
    }

    /// Programs the GRASP Address Bound Registers with this set's bounds.
    pub fn program_abrs<M: MemoryModel>(&self, ws: &mut Workspace<M>) {
        ws.program_property_bounds(&self.handles.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;

    #[test]
    fn merged_layout_uses_one_region() {
        let mut ws = Workspace::new(NativeMemory::new());
        let props = PropertySet::allocate(&mut ws, "pr", 100, &[8, 8], PropertyLayout::Merged);
        assert_eq!(props.handles().len(), 1);
        assert_eq!(props.field_count(), 2);
        let region = ws.address_space().region(props.handles()[0]);
        assert_eq!(region.element_bytes, 16);
        assert_eq!(region.elements, 100);
    }

    #[test]
    fn separate_layout_uses_one_region_per_field() {
        let mut ws = Workspace::new(NativeMemory::new());
        let props = PropertySet::allocate(&mut ws, "pr", 100, &[8, 8], PropertyLayout::Separate);
        assert_eq!(props.handles().len(), 2);
        for &h in props.handles() {
            assert_eq!(ws.address_space().region(h).element_bytes, 8);
        }
    }

    #[test]
    fn merged_fields_of_a_vertex_share_a_cache_block() {
        let mut ws = Workspace::new(NativeMemory::new());
        let props = PropertySet::allocate(&mut ws, "x", 64, &[8, 8], PropertyLayout::Merged);
        let space = ws.address_space();
        let base = space.bounds(props.handles()[0]).0;
        // Vertex 3, field 0 and field 1: addresses 16*3 and 16*3+8 — same 64B block.
        let a = base + 3 * 16;
        let b = base + 3 * 16 + 8;
        assert_eq!(a / 64, b / 64);
    }

    #[test]
    fn separate_fields_of_a_vertex_live_in_different_regions() {
        let mut ws = Workspace::new(NativeMemory::new());
        let props = PropertySet::allocate(&mut ws, "x", 64, &[8, 8], PropertyLayout::Separate);
        let space = ws.address_space();
        let (a_start, a_end) = space.bounds(props.handles()[0]);
        let (b_start, b_end) = space.bounds(props.handles()[1]);
        assert!(a_end <= b_start || b_end <= a_start);
    }

    #[test]
    fn reads_and_writes_are_reported() {
        let mut ws = Workspace::new(NativeMemory::new());
        let props = PropertySet::allocate(&mut ws, "x", 10, &[8, 4], PropertyLayout::Merged);
        props.read(&mut ws, 0, 3, 1);
        props.write(&mut ws, 1, 3, 1);
        assert_eq!(ws.access_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_field_list_panics() {
        let mut ws = Workspace::new(NativeMemory::new());
        let _ = PropertySet::allocate(&mut ws, "bad", 10, &[], PropertyLayout::Merged);
    }
}
