//! Simulated virtual address-space layout.
//!
//! Every array an application works with — the CSR Vertex and Edge arrays,
//! Property Arrays, frontier bitmaps — is *placed* at a virtual address so
//! that the cache simulator sees a realistic address stream and GRASP's
//! Address Bound Registers can be programmed with real bounds.

use grasp_cachesim::addr::Address;
use grasp_cachesim::request::RegionLabel;
use serde::{Deserialize, Serialize};

/// Handle to an array placed in the address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayHandle(usize);

/// Metadata of one placed array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayRegion {
    /// Human-readable name ("rank", "edge_array", ...).
    pub name: String,
    /// Region label attached to every access to this array.
    pub label: RegionLabel,
    /// Base virtual address.
    pub base: Address,
    /// Size of one element in bytes.
    pub element_bytes: u64,
    /// Number of elements.
    pub elements: u64,
}

impl ArrayRegion {
    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.element_bytes * self.elements
    }

    /// End address (exclusive).
    pub fn end(&self) -> Address {
        self.base + self.size_bytes()
    }
}

/// Base address of the first allocation. Chosen away from zero so address
/// zero never aliases with real data.
const HEAP_BASE: Address = 0x1000_0000;

/// Alignment of every allocation (page-sized, so distinct arrays never share
/// a cache block).
const ALLOC_ALIGN: u64 = 4096;

/// A simple bump allocator over a simulated virtual address space.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressSpace {
    regions: Vec<ArrayRegion>,
    next_free: Address,
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> Self {
        Self {
            regions: Vec::new(),
            next_free: HEAP_BASE,
        }
    }

    /// Allocates an array of `elements` elements of `element_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `element_bytes` is zero.
    pub fn allocate(
        &mut self,
        name: &str,
        label: RegionLabel,
        elements: u64,
        element_bytes: u64,
    ) -> ArrayHandle {
        assert!(element_bytes > 0, "element size must be non-zero");
        let base = self.next_free;
        let size = elements * element_bytes;
        let aligned = size.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        self.next_free += aligned.max(ALLOC_ALIGN);
        self.regions.push(ArrayRegion {
            name: name.to_owned(),
            label,
            base,
            element_bytes,
            elements,
        });
        ArrayHandle(self.regions.len() - 1)
    }

    /// Metadata of an allocated array.
    pub fn region(&self, handle: ArrayHandle) -> &ArrayRegion {
        &self.regions[handle.0]
    }

    /// All allocated regions in allocation order.
    pub fn regions(&self) -> &[ArrayRegion] {
        &self.regions
    }

    /// Address of element `index` of the array (optionally offset by
    /// `byte_offset` within the element).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` is out of bounds.
    #[inline]
    pub fn addr_of(&self, handle: ArrayHandle, index: u64) -> Address {
        let region = &self.regions[handle.0];
        debug_assert!(index < region.elements, "index {index} out of bounds");
        region.base + index * region.element_bytes
    }

    /// Address of a byte inside element `index`.
    #[inline]
    pub fn addr_of_field(&self, handle: ArrayHandle, index: u64, byte_offset: u64) -> Address {
        let region = &self.regions[handle.0];
        debug_assert!(byte_offset < region.element_bytes);
        region.base + index * region.element_bytes + byte_offset
    }

    /// `(start, end)` bounds of an array — what gets written into an ABR pair.
    pub fn bounds(&self, handle: ArrayHandle) -> (Address, Address) {
        let region = &self.regions[handle.0];
        (region.base, region.end())
    }

    /// Total allocated bytes (footprint of the simulated application).
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.allocate("a", RegionLabel::Property, 1000, 8);
        let b = space.allocate("b", RegionLabel::EdgeArray, 5000, 4);
        let (a_start, a_end) = space.bounds(a);
        let (b_start, b_end) = space.bounds(b);
        assert!(a_end <= b_start || b_end <= a_start, "regions overlap");
        assert!(a_start >= HEAP_BASE);
    }

    #[test]
    fn addresses_are_contiguous_within_an_array() {
        let mut space = AddressSpace::new();
        let a = space.allocate("ranks", RegionLabel::Property, 100, 8);
        assert_eq!(space.addr_of(a, 0) + 8, space.addr_of(a, 1));
        assert_eq!(space.addr_of(a, 99), space.bounds(a).0 + 99 * 8);
        assert_eq!(space.addr_of_field(a, 3, 4), space.addr_of(a, 3) + 4);
    }

    #[test]
    fn bounds_cover_exactly_the_array() {
        let mut space = AddressSpace::new();
        let a = space.allocate("x", RegionLabel::Property, 10, 16);
        let (start, end) = space.bounds(a);
        assert_eq!(end - start, 160);
        assert_eq!(space.region(a).size_bytes(), 160);
        assert_eq!(space.region(a).name, "x");
    }

    #[test]
    fn footprint_accumulates() {
        let mut space = AddressSpace::new();
        space.allocate("a", RegionLabel::Property, 10, 8);
        space.allocate("b", RegionLabel::Frontier, 100, 1);
        assert_eq!(space.footprint_bytes(), 180);
        assert_eq!(space.regions().len(), 2);
    }

    #[test]
    fn allocations_are_page_aligned() {
        let mut space = AddressSpace::new();
        let a = space.allocate("a", RegionLabel::Property, 3, 8);
        let b = space.allocate("b", RegionLabel::Property, 3, 8);
        assert_eq!(space.bounds(a).0 % ALLOC_ALIGN, 0);
        assert_eq!(space.bounds(b).0 % ALLOC_ALIGN, 0);
    }

    #[test]
    #[should_panic(expected = "element size must be non-zero")]
    fn zero_element_size_panics() {
        let mut space = AddressSpace::new();
        space.allocate("bad", RegionLabel::Other, 10, 0);
    }
}
