//! The graph-analytic applications of Table III.
//!
//! | Application | Computation | Per-vertex properties |
//! |---|---|---|
//! | [`pagerank`] (PR) | iterative pull-based rank propagation | rank, next rank |
//! | [`pagerank_delta`] (PRD) | PR restricted to vertices with enough accumulated change | rank, delta, next delta |
//! | [`bc`] (BC) | forward BFS counting shortest paths + backward dependency accumulation | path counts, dependencies |
//! | [`sssp`] (SSSP) | Bellman-Ford from a root over a weighted graph (push-based) | distances |
//! | [`radii`] (Radii) | multiple simultaneous BFS via bit masks | visited masks, radii |
//!
//! Every application allocates its Property Arrays through
//! [`crate::props::PropertySet`], programs the GRASP Address Bound Registers
//! with their bounds, and reports every memory access it performs to the
//! workspace's memory model.

pub mod bc;
pub mod bfs;
pub mod pagerank;
pub mod pagerank_delta;
pub mod radii;
pub mod sssp;

use crate::mem::MemoryModel;
use crate::props::PropertyLayout;
use crate::workspace::Workspace;
use grasp_graph::types::VertexId;
use grasp_graph::GraphView;
use serde::{Deserialize, Serialize};

/// Configuration shared by every application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppConfig {
    /// Maximum number of iterations (PR/PRD/Radii) or traversal rounds
    /// (BC/SSSP) to execute. The paper's simulated region of interest covers
    /// the dominant iterations only; the bench harness uses small values.
    pub max_iterations: usize,
    /// Root vertex for root-dependent applications (BC, SSSP).
    pub root: VertexId,
    /// Number of simultaneous BFS sources for Radii estimation.
    pub sample_roots: usize,
    /// PageRank damping factor.
    pub damping: f64,
    /// Convergence / activation threshold for PR and PRD.
    pub epsilon: f64,
    /// Property Array layout (merged vs separate; Table IV).
    pub layout: PropertyLayout,
}

impl Default for AppConfig {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            root: 0,
            sample_roots: 8,
            damping: 0.85,
            epsilon: 1e-7,
            layout: PropertyLayout::Merged,
        }
    }
}

impl AppConfig {
    /// Overrides the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations;
        self
    }

    /// Overrides the root vertex.
    #[must_use]
    pub fn with_root(mut self, root: VertexId) -> Self {
        self.root = root;
        self
    }

    /// Overrides the property layout.
    #[must_use]
    pub fn with_layout(mut self, layout: PropertyLayout) -> Self {
        self.layout = layout;
        self
    }
}

/// The output of one application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// Primary per-vertex output (ranks, distances, dependency scores, radii).
    pub values: Vec<f64>,
    /// Number of iterations / rounds actually executed.
    pub iterations: usize,
    /// Number of edges traversed across all iterations.
    pub edges_processed: u64,
}

impl AppResult {
    /// A rough instruction-count estimate used by the timing model: graph
    /// kernels execute a handful of instructions per traversed edge.
    pub fn instruction_estimate(&self) -> u64 {
        self.edges_processed * 8 + self.values.len() as u64 * 4
    }
}

/// The five applications evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Betweenness Centrality.
    Bc,
    /// Single-Source Shortest Paths (Bellman-Ford).
    Sssp,
    /// PageRank.
    PageRank,
    /// PageRank-Delta.
    PageRankDelta,
    /// Radii estimation (multi-source BFS).
    Radii,
}

impl AppKind {
    /// All applications in the order used by the paper's figures
    /// (BC, SSSP, PR, PRD, Radii).
    pub const ALL: [AppKind; 5] = [
        AppKind::Bc,
        AppKind::Sssp,
        AppKind::PageRank,
        AppKind::PageRankDelta,
        AppKind::Radii,
    ];

    /// Short label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Bc => "BC",
            AppKind::Sssp => "SSSP",
            AppKind::PageRank => "PR",
            AppKind::PageRankDelta => "PRD",
            AppKind::Radii => "Radii",
        }
    }

    /// Parses a display label ([`AppKind::label`]) back to the kind.
    pub fn from_label(label: &str) -> Option<Self> {
        AppKind::ALL.into_iter().find(|app| app.label() == label)
    }

    /// Whether the application traverses a weighted graph.
    pub fn is_weighted(self) -> bool {
        matches!(self, AppKind::Sssp)
    }

    /// Which degree direction determines vertex hotness for this application:
    /// pull-based applications reuse elements proportionally to out-degree,
    /// push-based ones to in-degree (Sec. II-C).
    pub fn hotness_direction(self) -> grasp_graph::types::Direction {
        match self {
            // SSSP is push-based throughout; everything else is dominated by
            // pull iterations (Sec. IV-C).
            AppKind::Sssp => grasp_graph::types::Direction::In,
            _ => grasp_graph::types::Direction::Out,
        }
    }

    /// Runs the application on `graph`.
    pub fn run<M: MemoryModel>(
        self,
        graph: &dyn GraphView,
        ws: &mut Workspace<M>,
        config: &AppConfig,
    ) -> AppResult {
        match self {
            AppKind::Bc => bc::run(graph, ws, config),
            AppKind::Sssp => sssp::run(graph, ws, config),
            AppKind::PageRank => pagerank::run(graph, ws, config),
            AppKind::PageRankDelta => pagerank_delta::run(graph, ws, config),
            AppKind::Radii => radii::run(graph, ws, config),
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<&str> = AppKind::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["BC", "SSSP", "PR", "PRD", "Radii"]);
        assert_eq!(AppKind::PageRank.to_string(), "PR");
    }

    #[test]
    fn all_apps_run_on_a_small_graph() {
        let g = Rmat::new(7, 6).generate(5);
        let config = AppConfig::default().with_max_iterations(5);
        for app in AppKind::ALL {
            let mut ws = Workspace::new(NativeMemory::new());
            let result = app.run(&g, &mut ws, &config);
            assert_eq!(result.values.len(), g.vertex_count(), "{app}");
            assert!(result.iterations > 0, "{app}");
            assert!(result.edges_processed > 0, "{app}");
            assert!(ws.access_count() > 0, "{app}");
            assert!(result.instruction_estimate() > result.edges_processed);
        }
    }

    #[test]
    fn config_builders() {
        let c = AppConfig::default()
            .with_max_iterations(3)
            .with_root(7)
            .with_layout(PropertyLayout::Separate);
        assert_eq!(c.max_iterations, 3);
        assert_eq!(c.root, 7);
        assert_eq!(c.layout, PropertyLayout::Separate);
    }

    #[test]
    fn weighted_and_direction_metadata() {
        assert!(AppKind::Sssp.is_weighted());
        assert!(!AppKind::PageRank.is_weighted());
        assert_eq!(
            AppKind::Sssp.hotness_direction(),
            grasp_graph::types::Direction::In
        );
        assert_eq!(
            AppKind::PageRank.hotness_direction(),
            grasp_graph::types::Direction::Out
        );
    }
}
