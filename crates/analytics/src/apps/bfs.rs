//! Breadth-first search kernel.
//!
//! BFS is not evaluated as a standalone application in the paper, but it is
//! the kernel inside Betweenness Centrality and Radii estimation, and a
//! convenient reference for correctness tests. The traversal uses Ligra-style
//! push/pull direction switching and models its memory accesses like the
//! other applications.

use crate::engine::{choose_direction, CsrArrays};
use crate::frontier::Frontier;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// Field index of the BFS level (distance from the root).
const FIELD_LEVEL: usize = 0;

/// The output of a BFS traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsOutput {
    /// Distance (in hops) from the root, `u32::MAX` when unreachable.
    pub level: Vec<u32>,
    /// The frontier of every level, in order (level 0 is just the root).
    pub levels: Vec<Frontier>,
    /// Number of edges traversed.
    pub edges_processed: u64,
}

/// Runs BFS over the out-edges of `graph` starting at `root`, modelling the
/// memory accesses through `ws`.
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    arrays: &CsrArrays,
    props: &PropertySet,
    root: VertexId,
    max_rounds: usize,
) -> BfsOutput {
    let n = graph.vertex_count();
    let mut level = vec![u32::MAX; n];
    level[root as usize] = 0;
    let mut frontier = Frontier::single(n, root);
    let mut levels = vec![frontier.clone()];
    let mut edges_processed = 0u64;

    // Round-robin a single spare frontier instead of reallocating the
    // membership bitmap every round.
    let mut next = Frontier::empty(n);
    for round in 0..max_rounds {
        if frontier.is_empty() {
            break;
        }
        next.clear();
        match choose_direction(graph, &frontier) {
            Direction::Out => {
                // Push: frontier vertices explore their out-neighbours.
                for &u in frontier.iter() {
                    arrays.read_vertex(ws, u);
                    let edge_base = graph.edge_offset(u, Direction::Out);
                    for (k, &v) in graph.out_neighbors(u).iter().enumerate() {
                        arrays.read_edge(ws, edge_base + k as u64);
                        props.read(ws, FIELD_LEVEL, u64::from(v), sites::PROPERTY_GATHER);
                        edges_processed += 1;
                        if level[v as usize] == u32::MAX {
                            level[v as usize] = round as u32 + 1;
                            props.write(ws, FIELD_LEVEL, u64::from(v), sites::PROPERTY_GATHER);
                            arrays.activate(ws, &mut next, v);
                        }
                    }
                }
            }
            Direction::In => {
                // Pull: unvisited vertices look for a visited in-neighbour.
                for v in graph.vertices() {
                    if level[v as usize] != u32::MAX {
                        continue;
                    }
                    arrays.read_vertex(ws, v);
                    let edge_base = graph.edge_offset(v, Direction::In);
                    for (k, &u) in graph.in_neighbors(v).iter().enumerate() {
                        arrays.read_edge(ws, edge_base + k as u64);
                        arrays.read_frontier(ws, u);
                        props.read(ws, FIELD_LEVEL, u64::from(u), sites::PROPERTY_GATHER);
                        edges_processed += 1;
                        if frontier.contains(u) {
                            level[v as usize] = round as u32 + 1;
                            props.write(ws, FIELD_LEVEL, u64::from(v), sites::PROPERTY_LOCAL);
                            arrays.activate(ws, &mut next, v);
                            break;
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        std::mem::swap(&mut frontier, &mut next);
        levels.push(frontier.clone());
    }

    BfsOutput {
        level,
        levels,
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use crate::props::PropertyLayout;
    use grasp_graph::generators::{GraphGenerator, Rmat, SmallWorld};
    use grasp_graph::Csr;

    fn bfs_native(graph: &dyn GraphView, root: VertexId) -> BfsOutput {
        let mut ws = Workspace::new(NativeMemory::new());
        let arrays = CsrArrays::allocate(&mut ws, graph, false);
        let props = PropertySet::allocate(
            &mut ws,
            "bfs",
            graph.vertex_count() as u64,
            &[8],
            PropertyLayout::Merged,
        );
        run(graph, &mut ws, &arrays, &props, root, graph.vertex_count())
    }

    /// Reference BFS distances via a simple queue.
    fn reference_bfs(graph: &dyn GraphView, root: VertexId) -> Vec<u32> {
        let mut level = vec![u32::MAX; graph.vertex_count()];
        level[root as usize] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in graph.out_neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        level
    }

    #[test]
    fn matches_reference_bfs_on_random_graphs() {
        for seed in [1, 2, 3] {
            let g = Rmat::new(8, 6).generate(seed);
            let ours = bfs_native(&g, 0);
            let reference = reference_bfs(&g, 0);
            assert_eq!(ours.level, reference, "seed {seed}");
        }
    }

    #[test]
    fn matches_reference_on_structured_graphs() {
        let g = SmallWorld::new(300, 4, 0.05).generate(9);
        let ours = bfs_native(&g, 17);
        assert_eq!(ours.level, reference_bfs(&g, 17));
    }

    #[test]
    fn levels_partition_the_reachable_vertices() {
        let g = Rmat::new(8, 6).generate(4);
        let out = bfs_native(&g, 0);
        let mut seen = std::collections::HashSet::new();
        for (depth, frontier) in out.levels.iter().enumerate() {
            for &v in frontier {
                assert_eq!(out.level[v as usize], depth as u32);
                assert!(seen.insert(v), "vertex {v} appears in two levels");
            }
        }
        let reachable = out.level.iter().filter(|&&l| l != u32::MAX).count();
        assert_eq!(seen.len(), reachable);
    }

    #[test]
    fn unreachable_vertices_stay_at_max() {
        // Two disconnected edges: 0->1 and 2->3.
        let g = Csr::from_edges([(0, 1), (2, 3)]).unwrap();
        let out = bfs_native(&g, 0);
        assert_eq!(out.level[0], 0);
        assert_eq!(out.level[1], 1);
        assert_eq!(out.level[2], u32::MAX);
        assert_eq!(out.level[3], u32::MAX);
    }
}
