//! PageRank (pull-based).
//!
//! Every iteration, each vertex pulls the rank contribution of its
//! in-neighbours: `rank'[v] = (1-d)/n + d * Σ rank[u] / out_degree(u)`.
//! Following the Ligra implementation used in the paper, the contribution
//! `rank[u] / out_degree(u)` is pre-divided at the end of each iteration so
//! the inner loop performs exactly one irregular Property Array read per edge
//! — the access pattern Fig. 1 analyses.

use super::{AppConfig, AppResult};
use crate::engine::CsrArrays;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// Field index of the pre-divided contribution (`rank / out_degree`).
const FIELD_CONTRIB: usize = 0;
/// Field index of the rank being accumulated this iteration.
const FIELD_NEXT: usize = 1;

/// Runs PageRank and returns the per-vertex ranks.
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    config: &AppConfig,
) -> AppResult {
    let n = graph.vertex_count();
    let arrays = CsrArrays::allocate(ws, graph, false);
    let props = PropertySet::allocate(ws, "pagerank", n as u64, &[8, 8], config.layout);
    props.program_abrs(ws);

    let damping = config.damping;
    let base = (1.0 - damping) / n as f64;
    let mut rank = vec![1.0 / n as f64; n];
    // Pre-divided contributions for the pull loop.
    let mut contrib: Vec<f64> = (0..n)
        .map(|v| {
            let d = graph.out_degree(v as u32).max(1) as f64;
            rank[v] / d
        })
        .collect();

    let mut edges_processed = 0u64;
    let mut iterations = 0usize;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut delta_sum = 0.0f64;
        for v in graph.vertices() {
            arrays.read_vertex(ws, v);
            let edge_base = graph.edge_offset(v, Direction::In);
            let mut acc = 0.0f64;
            for (k, &u) in graph.in_neighbors(v).iter().enumerate() {
                arrays.read_edge(ws, edge_base + k as u64);
                // The irregular gather: contribution of the in-neighbour.
                props.read(ws, FIELD_CONTRIB, u64::from(u), sites::PROPERTY_GATHER);
                acc += contrib[u as usize];
                edges_processed += 1;
            }
            let new_rank = base + damping * acc;
            props.write(ws, FIELD_NEXT, u64::from(v), sites::PROPERTY_LOCAL);
            delta_sum += (new_rank - rank[v as usize]).abs();
            rank[v as usize] = new_rank;
        }
        // Refresh the pre-divided contributions (sequential pass).
        for v in graph.vertices() {
            props.read(ws, FIELD_NEXT, u64::from(v), sites::PROPERTY_LOCAL);
            props.write(ws, FIELD_CONTRIB, u64::from(v), sites::PROPERTY_LOCAL);
            let d = graph.out_degree(v).max(1) as f64;
            contrib[v as usize] = rank[v as usize] / d;
        }
        if delta_sum < config.epsilon {
            break;
        }
    }

    AppResult {
        app: "PR",
        values: rank,
        iterations,
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use crate::props::PropertyLayout;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::Csr;

    fn run_native(graph: &dyn GraphView, config: &AppConfig) -> AppResult {
        let mut ws = Workspace::new(NativeMemory::new());
        run(graph, &mut ws, config)
    }

    /// Straightforward reference PageRank for validation.
    fn reference_pagerank(graph: &dyn GraphView, damping: f64, iterations: usize) -> Vec<f64> {
        let n = graph.vertex_count();
        let mut rank = vec![1.0 / n as f64; n];
        for _ in 0..iterations {
            let mut next = vec![(1.0 - damping) / n as f64; n];
            for u in graph.vertices() {
                let d = graph.out_degree(u).max(1) as f64;
                let share = damping * rank[u as usize] / d;
                for &v in graph.out_neighbors(u) {
                    next[v as usize] += share;
                }
            }
            rank = next;
        }
        rank
    }

    #[test]
    fn matches_reference_implementation() {
        let g = Rmat::new(7, 6).generate(9);
        let config = AppConfig {
            max_iterations: 15,
            epsilon: 0.0, // force a fixed number of iterations
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        let reference = reference_pagerank(&g, config.damping, 15);
        for (a, b) in result.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ranks_form_a_probability_like_distribution() {
        let g = Rmat::new(8, 8).generate(2);
        let result = run_native(&g, &AppConfig::default());
        let sum: f64 = result.values.iter().sum();
        // With dangling vertices the sum is <= 1 but must stay positive and
        // bounded.
        assert!(sum > 0.1 && sum <= 1.0 + 1e-6, "sum {sum}");
        assert!(result.values.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn high_in_degree_vertices_rank_higher() {
        // A star pointing at vertex 0 from everyone else.
        let edges: Vec<(u32, u32)> = (1..50).map(|s| (s, 0)).collect();
        let g = Csr::from_edges(edges).unwrap();
        let result = run_native(&g, &AppConfig::default());
        let max = result
            .values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((result.values[0] - max).abs() < 1e-12);
    }

    #[test]
    fn converges_before_the_iteration_cap() {
        let g = Rmat::new(7, 6).generate(3);
        let config = AppConfig {
            max_iterations: 500,
            epsilon: 1e-6,
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        assert!(result.iterations < 500);
    }

    #[test]
    fn layout_choice_does_not_change_results() {
        let g = Rmat::new(7, 6).generate(3);
        let merged = run_native(
            &g,
            &AppConfig::default().with_layout(PropertyLayout::Merged),
        );
        let separate = run_native(
            &g,
            &AppConfig::default().with_layout(PropertyLayout::Separate),
        );
        assert_eq!(merged.values, separate.values);
    }

    #[test]
    fn memory_accesses_scale_with_edges() {
        let g = Rmat::new(8, 8).generate(4);
        let mut ws = Workspace::new(NativeMemory::new());
        let config = AppConfig::default().with_max_iterations(2);
        let result = run(&g, &mut ws, &config);
        // At least one edge-array read and one gather per processed edge.
        assert!(ws.access_count() >= 2 * result.edges_processed);
    }
}
