//! PageRank-Delta (pull-push hybrid).
//!
//! PageRank-Delta only processes vertices that have accumulated enough change
//! ("delta") in their rank since they last propagated it. The evaluation uses
//! the pull-push variant (Sec. IV-A): dense iterations pull deltas from active
//! in-neighbours; once the active set becomes small, the computation
//! effectively stops changing most ranks.

use super::{AppConfig, AppResult};
use crate::engine::{choose_direction, CsrArrays};
use crate::frontier::Frontier;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// Field index of the accumulated rank.
const FIELD_RANK: usize = 0;
/// Field index of the delta being propagated this iteration.
const FIELD_DELTA: usize = 1;
/// Field index of the delta accumulated for the next iteration.
const FIELD_NEXT_DELTA: usize = 2;

/// Runs PageRank-Delta and returns the per-vertex ranks.
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    config: &AppConfig,
) -> AppResult {
    let n = graph.vertex_count();
    let arrays = CsrArrays::allocate(ws, graph, false);
    let props = PropertySet::allocate(ws, "pagerank_delta", n as u64, &[8, 8, 8], config.layout);
    props.program_abrs(ws);

    let damping = config.damping;
    let activation = config.epsilon.max(1e-9);
    let mut rank = vec![(1.0 - damping) / n as f64; n];
    // Initial delta: the base rank each vertex still has to propagate,
    // pre-divided by out-degree for the pull loop.
    let mut delta: Vec<f64> = (0..n)
        .map(|v| rank[v] / graph.out_degree(v as u32).max(1) as f64)
        .collect();
    let mut frontier = Frontier::full(n);
    let mut next_frontier = Frontier::empty(n);

    let mut edges_processed = 0u64;
    let mut iterations = 0usize;

    for _ in 0..config.max_iterations {
        if frontier.is_empty() {
            break;
        }
        iterations += 1;
        let mut next_delta = vec![0.0f64; n];
        let direction = choose_direction(graph, &frontier);

        match direction {
            Direction::In => {
                // Dense pull: every vertex scans its in-neighbours and picks up
                // deltas from the active ones.
                for v in graph.vertices() {
                    arrays.read_vertex(ws, v);
                    let edge_base = graph.edge_offset(v, Direction::In);
                    let mut acc = 0.0f64;
                    for (k, &u) in graph.in_neighbors(v).iter().enumerate() {
                        arrays.read_edge(ws, edge_base + k as u64);
                        arrays.read_frontier(ws, u);
                        if frontier.contains(u) {
                            props.read(ws, FIELD_DELTA, u64::from(u), sites::PROPERTY_GATHER);
                            acc += delta[u as usize];
                        }
                        edges_processed += 1;
                    }
                    if acc != 0.0 {
                        props.write(ws, FIELD_NEXT_DELTA, u64::from(v), sites::PROPERTY_LOCAL);
                        next_delta[v as usize] = damping * acc;
                    }
                }
            }
            Direction::Out => {
                // Sparse push: active vertices push their delta to out-neighbours.
                for &u in frontier.iter() {
                    arrays.read_vertex(ws, u);
                    props.read(ws, FIELD_DELTA, u64::from(u), sites::PROPERTY_LOCAL);
                    let edge_base = graph.edge_offset(u, Direction::Out);
                    for (k, &v) in graph.out_neighbors(u).iter().enumerate() {
                        arrays.read_edge(ws, edge_base + k as u64);
                        props.read(ws, FIELD_NEXT_DELTA, u64::from(v), sites::PROPERTY_GATHER);
                        props.write(ws, FIELD_NEXT_DELTA, u64::from(v), sites::PROPERTY_GATHER);
                        next_delta[v as usize] += damping * delta[u as usize];
                        edges_processed += 1;
                    }
                }
            }
        }

        // Apply deltas, build the next frontier and pre-divide for the next
        // pull iteration.
        next_frontier.clear();
        for v in graph.vertices() {
            let nd = next_delta[v as usize];
            if nd.abs() > 0.0 {
                props.read(ws, FIELD_RANK, u64::from(v), sites::PROPERTY_LOCAL);
                props.write(ws, FIELD_RANK, u64::from(v), sites::PROPERTY_LOCAL);
                rank[v as usize] += nd;
            }
            if nd.abs() > activation * rank[v as usize] {
                arrays.activate(ws, &mut next_frontier, v);
                props.write(ws, FIELD_DELTA, u64::from(v), sites::PROPERTY_LOCAL);
            }
            delta[v as usize] = nd / graph.out_degree(v).max(1) as f64;
        }
        std::mem::swap(&mut frontier, &mut next_frontier);
    }

    AppResult {
        app: "PRD",
        values: rank,
        iterations,
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::Csr;

    fn run_native(graph: &dyn GraphView, config: &AppConfig) -> AppResult {
        let mut ws = Workspace::new(NativeMemory::new());
        run(graph, &mut ws, config)
    }

    #[test]
    fn ranks_stay_positive_and_bounded() {
        let g = Rmat::new(8, 8).generate(6);
        let result = run_native(&g, &AppConfig::default().with_max_iterations(30));
        assert!(result.values.iter().all(|&r| r >= 0.0));
        let sum: f64 = result.values.iter().sum();
        assert!(sum > 0.1 && sum <= 1.0 + 1e-6, "sum {sum}");
    }

    #[test]
    fn agrees_with_pagerank_on_ordering() {
        // PRD approximates PR: the top-ranked vertex should match on a graph
        // with a clear hub.
        let edges: Vec<(u32, u32)> = (1..60).map(|s| (s, 0)).chain([(0, 1)]).collect();
        let g = Csr::from_edges(edges).unwrap();
        let config = AppConfig {
            max_iterations: 50,
            epsilon: 1e-4,
            ..AppConfig::default()
        };
        let prd = run_native(&g, &config);
        let pr = {
            let mut ws = Workspace::new(NativeMemory::new());
            super::super::pagerank::run(&g, &mut ws, &config)
        };
        let top_prd =
            (0..g.vertex_count()).max_by(|&a, &b| prd.values[a].total_cmp(&prd.values[b]));
        let top_pr = (0..g.vertex_count()).max_by(|&a, &b| pr.values[a].total_cmp(&pr.values[b]));
        assert_eq!(top_prd, top_pr);
        assert_eq!(top_pr, Some(0));
    }

    #[test]
    fn active_set_shrinks_until_convergence() {
        let g = Rmat::new(8, 8).generate(1);
        let config = AppConfig {
            max_iterations: 200,
            epsilon: 1e-3,
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        assert!(
            result.iterations < 200,
            "PRD should converge (ran {} iterations)",
            result.iterations
        );
    }

    #[test]
    fn processes_fewer_edges_than_pagerank_for_the_same_budget() {
        let g = Rmat::new(9, 8).generate(2);
        let config = AppConfig {
            max_iterations: 12,
            epsilon: 1e-3,
            ..AppConfig::default()
        };
        let prd = run_native(&g, &config);
        let pr = {
            let mut ws = Workspace::new(NativeMemory::new());
            super::super::pagerank::run(
                &g,
                &mut ws,
                &AppConfig {
                    epsilon: 0.0,
                    ..config
                },
            )
        };
        assert!(
            prd.edges_processed <= pr.edges_processed,
            "prd {} pr {}",
            prd.edges_processed,
            pr.edges_processed
        );
    }
}
