//! Single-Source Shortest Paths (Bellman-Ford, push-based).
//!
//! SSSP propagates tentative distances from the root over the weighted
//! out-edges of the frontier. It is the one evaluated application that is
//! push-based throughout (Sec. IV-C), so vertex hotness follows the in-degree
//! distribution.

use super::{AppConfig, AppResult};
use crate::engine::CsrArrays;
use crate::frontier::Frontier;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// Field index of the tentative distances.
const FIELD_DIST: usize = 0;

/// Runs Bellman-Ford SSSP from `config.root` and returns per-vertex distances
/// (`f64::INFINITY` for unreachable vertices).
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    config: &AppConfig,
) -> AppResult {
    let n = graph.vertex_count();
    let root = config.root % n as u32;
    let arrays = CsrArrays::allocate(ws, graph, true);
    let props = PropertySet::allocate(ws, "sssp", n as u64, &[8], config.layout);
    props.program_abrs(ws);

    let mut dist = vec![u64::MAX; n];
    dist[root as usize] = 0;
    let mut frontier = Frontier::single(n, root);
    let mut edges_processed = 0u64;
    let mut iterations = 0usize;
    // Bellman-Ford terminates after at most |V| - 1 relaxation rounds.
    let round_cap = config.max_iterations.max(1).min(n);

    let mut next = Frontier::empty(n);
    for _ in 0..round_cap {
        if frontier.is_empty() {
            break;
        }
        iterations += 1;
        next.clear();
        for &u in frontier.iter() {
            arrays.read_vertex(ws, u);
            props.read(ws, FIELD_DIST, u64::from(u), sites::PROPERTY_LOCAL);
            let du = dist[u as usize];
            let edge_base = graph.edge_offset(u, Direction::Out);
            for (k, (&v, &w)) in graph
                .out_neighbors(u)
                .iter()
                .zip(graph.out_weights(u))
                .enumerate()
            {
                arrays.read_edge(ws, edge_base + k as u64);
                props.read(ws, FIELD_DIST, u64::from(v), sites::PROPERTY_GATHER);
                edges_processed += 1;
                let candidate = du.saturating_add(u64::from(w));
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate;
                    props.write(ws, FIELD_DIST, u64::from(v), sites::PROPERTY_GATHER);
                    arrays.activate(ws, &mut next, v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }

    let values = dist
        .iter()
        .map(|&d| {
            if d == u64::MAX {
                f64::INFINITY
            } else {
                d as f64
            }
        })
        .collect();
    AppResult {
        app: "SSSP",
        values,
        iterations,
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::prng::Xoshiro256;
    use grasp_graph::Csr;
    use grasp_graph::{CsrBuilder, EdgeList};

    fn run_native(graph: &dyn GraphView, root: u32, rounds: usize) -> AppResult {
        let mut ws = Workspace::new(NativeMemory::new());
        run(
            graph,
            &mut ws,
            &AppConfig::default()
                .with_root(root)
                .with_max_iterations(rounds),
        )
    }

    /// Reference Dijkstra for validation.
    fn reference_sssp(graph: &dyn GraphView, root: u32) -> Vec<f64> {
        let n = graph.vertex_count();
        let mut dist = vec![f64::INFINITY; n];
        dist[root as usize] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, root)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if (d as f64) > dist[u as usize] {
                continue;
            }
            for (&v, &w) in graph.out_neighbors(u).iter().zip(graph.out_weights(u)) {
                let nd = d + u64::from(w);
                if (nd as f64) < dist[v as usize] {
                    dist[v as usize] = nd as f64;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
        dist
    }

    #[test]
    fn matches_dijkstra_on_a_small_weighted_graph() {
        let g = CsrBuilder::new(5)
            .weighted_edge(0, 1, 10)
            .weighted_edge(0, 2, 3)
            .weighted_edge(2, 1, 4)
            .weighted_edge(1, 3, 2)
            .weighted_edge(2, 3, 8)
            .weighted_edge(3, 4, 7)
            .build()
            .unwrap();
        let result = run_native(&g, 0, 10);
        assert_eq!(result.values, vec![0.0, 7.0, 3.0, 9.0, 16.0]);
    }

    #[test]
    fn matches_dijkstra_on_random_weighted_graphs() {
        // Build a random weighted graph from an R-MAT skeleton.
        let skeleton = Rmat::new(8, 6).generate(3);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut edges = EdgeList::new(skeleton.vertex_count() as u64);
        for (s, d, _) in skeleton.edges() {
            edges
                .push_weighted(s, d, 1 + rng.next_below(32) as u32)
                .unwrap();
        }
        let g = Csr::from_edge_list(&edges).unwrap();
        let ours = run_native(&g, 0, g.vertex_count());
        let reference = reference_sssp(&g, 0);
        assert_eq!(ours.values, reference);
    }

    #[test]
    fn unreachable_vertices_are_infinite() {
        let g = Csr::from_edges([(0, 1), (2, 3)]).unwrap();
        let result = run_native(&g, 0, 10);
        assert!(result.values[2].is_infinite());
        assert!(result.values[3].is_infinite());
    }

    #[test]
    fn frontier_driven_execution_terminates_early() {
        let g = Rmat::new(8, 6).generate(2);
        let result = run_native(&g, 0, g.vertex_count());
        assert!(result.iterations < g.vertex_count());
    }
}
