//! Radii estimation via multiple simultaneous BFS (Magnien et al.).
//!
//! The radius of a vertex is estimated by running K breadth-first searches
//! from a small sample of source vertices *simultaneously*, encoding
//! reachability in a K-bit mask per vertex: whenever a vertex's mask changes
//! in an iteration, its radius estimate is updated to that iteration number.

use super::{AppConfig, AppResult};
use crate::engine::CsrArrays;
use crate::frontier::Frontier;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// Field index of the current visited bit masks.
const FIELD_VISITED: usize = 0;
/// Field index of the next-iteration bit masks.
const FIELD_NEXT: usize = 1;
/// Field index of the radius estimates.
const FIELD_RADII: usize = 2;

/// Runs Radii estimation and returns the per-vertex radius estimates
/// (`-1` for vertices never reached by any sampled BFS).
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    config: &AppConfig,
) -> AppResult {
    let n = graph.vertex_count();
    let arrays = CsrArrays::allocate(ws, graph, false);
    let props = PropertySet::allocate(ws, "radii", n as u64, &[8, 8, 8], config.layout);
    props.program_abrs(ws);

    let sample = config.sample_roots.clamp(1, 64);
    // Deterministic, well-spread sample of source vertices.
    let roots: Vec<VertexId> = (0..sample)
        .map(|k| ((k * n) / sample) as VertexId)
        .collect();

    let mut visited = vec![0u64; n];
    let mut radii = vec![-1.0f64; n];
    let mut frontier = Frontier::empty(n);
    for (k, &root) in roots.iter().enumerate() {
        visited[root as usize] |= 1 << k;
        radii[root as usize] = 0.0;
        frontier.add(root);
    }

    let mut edges_processed = 0u64;
    let mut iterations = 0usize;

    let mut next = Frontier::empty(n);
    for round in 0..config.max_iterations.max(1) {
        if frontier.is_empty() {
            break;
        }
        iterations += 1;
        let mut next_visited = visited.clone();
        next.clear();
        // Dense pull iteration: every vertex ORs the masks of its in-neighbours
        // that changed in the previous round.
        for v in graph.vertices() {
            arrays.read_vertex(ws, v);
            let edge_base = graph.edge_offset(v, Direction::In);
            let mut mask = visited[v as usize];
            for (k, &u) in graph.in_neighbors(v).iter().enumerate() {
                arrays.read_edge(ws, edge_base + k as u64);
                arrays.read_frontier(ws, u);
                edges_processed += 1;
                if frontier.contains(u) {
                    props.read(ws, FIELD_VISITED, u64::from(u), sites::PROPERTY_GATHER);
                    mask |= visited[u as usize];
                }
            }
            if mask != visited[v as usize] {
                props.write(ws, FIELD_NEXT, u64::from(v), sites::PROPERTY_LOCAL);
                props.write(ws, FIELD_RADII, u64::from(v), sites::PROPERTY_LOCAL);
                next_visited[v as usize] = mask;
                radii[v as usize] = round as f64 + 1.0;
                arrays.activate(ws, &mut next, v);
            }
        }
        visited = next_visited;
        std::mem::swap(&mut frontier, &mut next);
    }

    AppResult {
        app: "Radii",
        values: radii,
        iterations,
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat, SmallWorld};

    fn run_native(graph: &dyn GraphView, config: &AppConfig) -> AppResult {
        let mut ws = Workspace::new(NativeMemory::new());
        run(graph, &mut ws, config)
    }

    #[test]
    fn roots_have_radius_zero_and_reached_vertices_positive() {
        let g = Rmat::new(8, 8).generate(3);
        let config = AppConfig::default().with_max_iterations(50);
        let result = run_native(&g, &config);
        // Radius estimates are -1 (never reached) or >= 0.
        assert!(result.values.iter().all(|&r| r >= -1.0));
        // At least the roots themselves have an estimate.
        assert!(result.values.iter().filter(|&&r| r >= 0.0).count() >= 1);
    }

    #[test]
    fn radius_estimate_is_bounded_by_bfs_eccentricity() {
        // On a ring lattice, distances are well understood: the radius
        // estimate of any vertex cannot exceed the iteration count and grows
        // with distance from the sampled roots.
        let g = SmallWorld::new(128, 2, 0.0).generate(1);
        let config = AppConfig {
            max_iterations: 200,
            sample_roots: 4,
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        assert!(result.values.iter().all(|&r| r <= result.iterations as f64));
        // Every vertex of a connected ring is eventually reached.
        assert!(result.values.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn single_root_matches_bfs_levels() {
        let g = Rmat::new(7, 6).generate(11);
        let config = AppConfig {
            sample_roots: 1,
            max_iterations: 100,
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        // With one root (vertex 0) the radius estimate of a reached vertex is
        // its BFS level from vertex 0.
        let mut level = vec![u32::MAX; g.vertex_count()];
        level[0] = 0;
        let mut queue = std::collections::VecDeque::from([0u32]);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        for v in 0..g.vertex_count() {
            if level[v] != u32::MAX {
                assert_eq!(result.values[v], level[v] as f64, "vertex {v}");
            } else {
                assert_eq!(result.values[v], -1.0, "vertex {v}");
            }
        }
    }

    #[test]
    fn iteration_budget_is_respected() {
        let g = SmallWorld::new(256, 2, 0.0).generate(1);
        let config = AppConfig {
            max_iterations: 3,
            ..AppConfig::default()
        };
        let result = run_native(&g, &config);
        assert!(result.iterations <= 3);
    }
}
