//! Betweenness Centrality (Brandes' algorithm with a BFS kernel).
//!
//! BC runs a forward BFS from the root counting the number of shortest paths
//! through every vertex, then a backward sweep over the BFS levels
//! accumulating dependencies. Both phases perform one irregular Property
//! Array access per traversed edge, matching the description in Table III.

use super::bfs;
use super::{AppConfig, AppResult};
use crate::engine::CsrArrays;
use crate::mem::MemoryModel;
use crate::props::PropertySet;
use crate::sites;
use crate::workspace::Workspace;
use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// Field index of the shortest-path counts.
const FIELD_NUM_PATHS: usize = 0;
/// Field index of the accumulated dependency scores.
const FIELD_DEPENDENCY: usize = 1;

/// Runs Betweenness Centrality from `config.root` and returns the per-vertex
/// dependency scores.
pub fn run<M: MemoryModel>(
    graph: &dyn GraphView,
    ws: &mut Workspace<M>,
    config: &AppConfig,
) -> AppResult {
    let n = graph.vertex_count();
    let root = config.root % n as u32;
    let arrays = CsrArrays::allocate(ws, graph, false);
    let props = PropertySet::allocate(ws, "bc", n as u64, &[8, 8], config.layout);
    props.program_abrs(ws);

    // Phase 1: BFS to establish levels.
    let bfs_out = bfs::run(
        graph,
        ws,
        &arrays,
        &props,
        root,
        config.max_iterations.max(n),
    );
    let mut edges_processed = bfs_out.edges_processed;

    // Phase 2: forward pass over levels accumulating shortest-path counts.
    let mut num_paths = vec![0.0f64; n];
    num_paths[root as usize] = 1.0;
    for frontier in bfs_out.levels.iter().skip(1) {
        for &v in frontier {
            arrays.read_vertex(ws, v);
            let edge_base = graph.edge_offset(v, Direction::In);
            let mut acc = 0.0;
            for (k, &u) in graph.in_neighbors(v).iter().enumerate() {
                arrays.read_edge(ws, edge_base + k as u64);
                props.read(ws, FIELD_NUM_PATHS, u64::from(u), sites::PROPERTY_GATHER);
                edges_processed += 1;
                if bfs_out.level[u as usize] != u32::MAX
                    && bfs_out.level[u as usize] + 1 == bfs_out.level[v as usize]
                {
                    acc += num_paths[u as usize];
                }
            }
            props.write(ws, FIELD_NUM_PATHS, u64::from(v), sites::PROPERTY_LOCAL);
            num_paths[v as usize] = acc;
        }
    }

    // Phase 3: backward pass accumulating dependencies.
    let mut dependency = vec![0.0f64; n];
    for frontier in bfs_out.levels.iter().rev() {
        for &u in frontier {
            arrays.read_vertex(ws, u);
            let edge_base = graph.edge_offset(u, Direction::Out);
            let mut acc = 0.0;
            for (k, &v) in graph.out_neighbors(u).iter().enumerate() {
                arrays.read_edge(ws, edge_base + k as u64);
                props.read(ws, FIELD_DEPENDENCY, u64::from(v), sites::PROPERTY_GATHER);
                edges_processed += 1;
                if bfs_out.level[u as usize] != u32::MAX
                    && bfs_out.level[v as usize] == bfs_out.level[u as usize] + 1
                    && num_paths[v as usize] > 0.0
                {
                    acc += num_paths[u as usize] / num_paths[v as usize]
                        * (1.0 + dependency[v as usize]);
                }
            }
            props.write(ws, FIELD_DEPENDENCY, u64::from(u), sites::PROPERTY_LOCAL);
            dependency[u as usize] = acc;
        }
    }

    AppResult {
        app: "BC",
        values: dependency,
        iterations: bfs_out.levels.len(),
        edges_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::Csr;

    fn run_native(graph: &dyn GraphView, root: u32) -> AppResult {
        let mut ws = Workspace::new(NativeMemory::new());
        run(
            graph,
            &mut ws,
            &AppConfig::default()
                .with_root(root)
                .with_max_iterations(1000),
        )
    }

    #[test]
    fn path_graph_has_maximal_centrality_in_the_middle() {
        // 0 -> 1 -> 2 -> 3 -> 4 (directed path). From root 0, vertex 1 lies on
        // the most downstream shortest paths.
        let g = Csr::from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let result = run_native(&g, 0);
        // Dependency of vertex k from a path source: number of downstream
        // vertices: dep(1)=3, dep(2)=2, dep(3)=1, dep(4)=0.
        assert!((result.values[1] - 3.0).abs() < 1e-9);
        assert!((result.values[2] - 2.0).abs() < 1e-9);
        assert!((result.values[3] - 1.0).abs() < 1e-9);
        assert!((result.values[4] - 0.0).abs() < 1e-9);
        assert!(
            (result.values[0] - 4.0).abs() < 1e-9,
            "root accumulates everything downstream"
        );
    }

    #[test]
    fn diamond_graph_splits_paths() {
        // 0 -> {1, 2} -> 3: two shortest paths to 3, each middle vertex gets
        // dependency 0.5.
        let g = Csr::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let result = run_native(&g, 0);
        assert!((result.values[1] - 0.5).abs() < 1e-9);
        assert!((result.values[2] - 0.5).abs() < 1e-9);
        assert!((result.values[3] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_are_non_negative_and_finite() {
        let g = Rmat::new(8, 6).generate(7);
        let result = run_native(&g, 3);
        assert!(result.values.iter().all(|&d| d.is_finite() && d >= 0.0));
        assert!(result.edges_processed > 0);
    }

    #[test]
    fn unreachable_vertices_have_zero_dependency() {
        let g = Csr::from_edges([(0, 1), (2, 3)]).unwrap();
        let result = run_native(&g, 0);
        assert_eq!(result.values[2], 0.0);
        assert_eq!(result.values[3], 0.0);
    }
}
