//! The workspace: address space + memory model.

use crate::layout::{AddressSpace, ArrayHandle};
use crate::mem::MemoryModel;
use grasp_cachesim::addr::Address;
use grasp_cachesim::hint::ReuseHint;
use grasp_cachesim::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};

/// Number of accesses the workspace buffers before handing the column to
/// [`MemoryModel::touch_batch`]. One tile of the batched record kernel.
const WORKSPACE_BATCH: usize = 1024;

/// Couples a simulated [`AddressSpace`] with a [`MemoryModel`]: applications
/// allocate their arrays here and report every element access through the
/// `read_*`/`write_*` methods.
///
/// Accesses are buffered (preserving program order) and delivered to the
/// model in fixed-size columns (`WORKSPACE_BATCH`) via
/// [`MemoryModel::touch_batch`], which batched models turn into one kernel
/// invocation per column. The buffer drains automatically whenever the model
/// is observed ([`Workspace::memory`], [`Workspace::memory_mut`],
/// [`Workspace::into_memory`], [`Workspace::program_property_bounds`]), so
/// ordering against model-level operations is preserved. Use
/// [`Workspace::unbuffered`] for the per-event reference path.
#[derive(Debug)]
pub struct Workspace<M> {
    space: AddressSpace,
    mem: M,
    buf: Vec<AccessInfo>,
    batch_limit: usize,
}

impl<M: MemoryModel> Workspace<M> {
    /// Creates an empty workspace over the given memory model, buffering
    /// accesses into [`MemoryModel::touch_batch`] columns.
    pub fn new(mem: M) -> Self {
        Self {
            space: AddressSpace::new(),
            mem,
            buf: Vec::with_capacity(WORKSPACE_BATCH),
            batch_limit: WORKSPACE_BATCH,
        }
    }

    /// Creates a workspace that forwards every access to
    /// [`MemoryModel::touch`] immediately — the per-event reference side of
    /// record-parity tests and benchmarks.
    pub fn unbuffered(mem: M) -> Self {
        Self {
            space: AddressSpace::new(),
            mem,
            buf: Vec::new(),
            batch_limit: 0,
        }
    }

    /// Drains any buffered accesses into the memory model.
    #[inline]
    pub fn drain_accesses(&mut self) {
        if !self.buf.is_empty() {
            self.mem.touch_batch(&self.buf);
            self.buf.clear();
        }
    }

    #[inline]
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel) {
        if self.batch_limit == 0 {
            self.mem.touch(addr, kind, site, region);
            return;
        }
        self.buf.push(AccessInfo {
            addr,
            kind,
            site,
            hint: ReuseHint::Default,
            region,
        });
        if self.buf.len() >= self.batch_limit {
            self.drain_accesses();
        }
    }

    /// Allocates an array and returns its handle.
    pub fn allocate(
        &mut self,
        name: &str,
        label: RegionLabel,
        elements: u64,
        element_bytes: u64,
    ) -> ArrayHandle {
        self.space.allocate(name, label, elements, element_bytes)
    }

    /// The underlying address space.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// The underlying memory model, with any buffered accesses drained
    /// first so the model's own counters are up to date.
    pub fn memory(&mut self) -> &M {
        self.drain_accesses();
        &self.mem
    }

    /// Mutable access to the memory model (buffered accesses drained first,
    /// so model-level operations observe every access issued so far).
    pub fn memory_mut(&mut self) -> &mut M {
        self.drain_accesses();
        &mut self.mem
    }

    /// Consumes the workspace and returns the memory model (buffered
    /// accesses drained first).
    pub fn into_memory(mut self) -> M {
        self.drain_accesses();
        self.mem
    }

    /// Programs the GRASP Address Bound Registers with the bounds of the
    /// given Property Arrays. Buffered accesses are drained first so the
    /// classifier rebuild lands at the right stream position.
    pub fn program_property_bounds(&mut self, handles: &[ArrayHandle]) {
        self.drain_accesses();
        let bounds: Vec<(Address, Address)> =
            handles.iter().map(|&h| self.space.bounds(h)).collect();
        self.mem.program_property_bounds(&bounds);
    }

    /// Models a read of element `index` of `handle`.
    #[inline]
    pub fn read(&mut self, handle: ArrayHandle, index: u64, site: AccessSite) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes;
        let label = region.label;
        self.touch(addr, AccessKind::Read, site, label);
    }

    /// Models a write of element `index` of `handle`.
    #[inline]
    pub fn write(&mut self, handle: ArrayHandle, index: u64, site: AccessSite) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes;
        let label = region.label;
        self.touch(addr, AccessKind::Write, site, label);
    }

    /// Models a read of a field at `byte_offset` within element `index`.
    #[inline]
    pub fn read_field(
        &mut self,
        handle: ArrayHandle,
        index: u64,
        byte_offset: u64,
        site: AccessSite,
    ) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes + byte_offset;
        let label = region.label;
        self.touch(addr, AccessKind::Read, site, label);
    }

    /// Models a write of a field at `byte_offset` within element `index`.
    #[inline]
    pub fn write_field(
        &mut self,
        handle: ArrayHandle,
        index: u64,
        byte_offset: u64,
        site: AccessSite,
    ) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes + byte_offset;
        let label = region.label;
        self.touch(addr, AccessKind::Write, site, label);
    }

    /// Total number of accesses issued so far (including any still buffered
    /// ahead of the next [`MemoryModel::touch_batch`] column).
    pub fn access_count(&self) -> u64 {
        self.mem.access_count() + self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;

    #[test]
    fn reads_and_writes_are_counted() {
        let mut ws = Workspace::new(NativeMemory::new());
        let a = ws.allocate("a", RegionLabel::Property, 16, 8);
        ws.read(a, 0, 1);
        ws.write(a, 1, 1);
        ws.read_field(a, 2, 4, 1);
        ws.write_field(a, 3, 4, 1);
        assert_eq!(ws.access_count(), 4);
        assert_eq!(ws.address_space().regions().len(), 1);
    }

    #[test]
    fn buffered_access_counts_include_the_pending_column() {
        let mut ws = Workspace::new(NativeMemory::new());
        let a = ws.allocate("a", RegionLabel::Property, 16, 8);
        let total = WORKSPACE_BATCH as u64 + 3;
        for i in 0..total {
            ws.read(a, i % 16, 1);
        }
        // One full column drained, three accesses still buffered — both are
        // visible, and observing the model drains the tail.
        assert_eq!(ws.access_count(), total);
        assert_eq!(ws.memory().access_count(), total);
    }

    #[test]
    fn buffered_workspace_records_the_per_event_trace() {
        use crate::mem::RecordingMemory;
        use grasp_cachesim::config::HierarchyConfig;
        let config = HierarchyConfig::scaled_default();
        let drive = |ws: &mut Workspace<RecordingMemory>| {
            let a = ws.allocate("a", RegionLabel::Property, 4096, 8);
            ws.program_property_bounds(&[a]);
            for i in 0..30_000u64 {
                let idx = (i * 37) % 4096;
                if i % 3 == 0 {
                    ws.write(a, idx, 2);
                } else {
                    ws.read(a, idx, 1);
                }
            }
        };
        let mut buffered = Workspace::new(RecordingMemory::new(config));
        drive(&mut buffered);
        let batched = buffered.into_memory().finish();
        let mut unbuffered = Workspace::unbuffered(RecordingMemory::new(config));
        drive(&mut unbuffered);
        let scalar = unbuffered.into_memory().finish();
        assert_eq!(batched, scalar, "buffering must not change the recording");
        assert_eq!(batched.context(), scalar.context());
    }

    #[test]
    fn memory_accessors_work() {
        let mut ws = Workspace::new(NativeMemory::new());
        let a = ws.allocate("a", RegionLabel::Property, 4, 8);
        ws.read(a, 0, 1);
        assert_eq!(ws.memory().access_count(), 1);
        ws.memory_mut()
            .touch(0, AccessKind::Read, 0, RegionLabel::Other);
        assert_eq!(ws.into_memory().access_count(), 2);
    }
}
