//! The workspace: address space + memory model.

use crate::layout::{AddressSpace, ArrayHandle};
use crate::mem::MemoryModel;
use grasp_cachesim::addr::Address;
use grasp_cachesim::request::{AccessKind, AccessSite, RegionLabel};

/// Couples a simulated [`AddressSpace`] with a [`MemoryModel`]: applications
/// allocate their arrays here and report every element access through the
/// `read_*`/`write_*` methods.
#[derive(Debug)]
pub struct Workspace<M> {
    space: AddressSpace,
    mem: M,
}

impl<M: MemoryModel> Workspace<M> {
    /// Creates an empty workspace over the given memory model.
    pub fn new(mem: M) -> Self {
        Self {
            space: AddressSpace::new(),
            mem,
        }
    }

    /// Allocates an array and returns its handle.
    pub fn allocate(
        &mut self,
        name: &str,
        label: RegionLabel,
        elements: u64,
        element_bytes: u64,
    ) -> ArrayHandle {
        self.space.allocate(name, label, elements, element_bytes)
    }

    /// The underlying address space.
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// The underlying memory model.
    pub fn memory(&self) -> &M {
        &self.mem
    }

    /// Mutable access to the memory model.
    pub fn memory_mut(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Consumes the workspace and returns the memory model.
    pub fn into_memory(self) -> M {
        self.mem
    }

    /// Programs the GRASP Address Bound Registers with the bounds of the
    /// given Property Arrays.
    pub fn program_property_bounds(&mut self, handles: &[ArrayHandle]) {
        let bounds: Vec<(Address, Address)> =
            handles.iter().map(|&h| self.space.bounds(h)).collect();
        self.mem.program_property_bounds(&bounds);
    }

    /// Models a read of element `index` of `handle`.
    #[inline]
    pub fn read(&mut self, handle: ArrayHandle, index: u64, site: AccessSite) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes;
        let label = region.label;
        self.mem.touch(addr, AccessKind::Read, site, label);
    }

    /// Models a write of element `index` of `handle`.
    #[inline]
    pub fn write(&mut self, handle: ArrayHandle, index: u64, site: AccessSite) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes;
        let label = region.label;
        self.mem.touch(addr, AccessKind::Write, site, label);
    }

    /// Models a read of a field at `byte_offset` within element `index`.
    #[inline]
    pub fn read_field(
        &mut self,
        handle: ArrayHandle,
        index: u64,
        byte_offset: u64,
        site: AccessSite,
    ) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes + byte_offset;
        let label = region.label;
        self.mem.touch(addr, AccessKind::Read, site, label);
    }

    /// Models a write of a field at `byte_offset` within element `index`.
    #[inline]
    pub fn write_field(
        &mut self,
        handle: ArrayHandle,
        index: u64,
        byte_offset: u64,
        site: AccessSite,
    ) {
        let region = self.space.region(handle);
        let addr = region.base + index * region.element_bytes + byte_offset;
        let label = region.label;
        self.mem.touch(addr, AccessKind::Write, site, label);
    }

    /// Total number of accesses reported to the memory model.
    pub fn access_count(&self) -> u64 {
        self.mem.access_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NativeMemory;

    #[test]
    fn reads_and_writes_are_counted() {
        let mut ws = Workspace::new(NativeMemory::new());
        let a = ws.allocate("a", RegionLabel::Property, 16, 8);
        ws.read(a, 0, 1);
        ws.write(a, 1, 1);
        ws.read_field(a, 2, 4, 1);
        ws.write_field(a, 3, 4, 1);
        assert_eq!(ws.access_count(), 4);
        assert_eq!(ws.address_space().regions().len(), 1);
    }

    #[test]
    fn memory_accessors_work() {
        let mut ws = Workspace::new(NativeMemory::new());
        let a = ws.allocate("a", RegionLabel::Property, 4, 8);
        ws.read(a, 0, 1);
        assert_eq!(ws.memory().access_count(), 1);
        ws.memory_mut()
            .touch(0, AccessKind::Read, 0, RegionLabel::Other);
        assert_eq!(ws.into_memory().access_count(), 2);
    }
}
