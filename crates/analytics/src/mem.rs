//! Memory models: where the applications' memory accesses go.

use grasp_cachesim::addr::Address;
use grasp_cachesim::config::HierarchyConfig;
use grasp_cachesim::hint::RegionClassifier;
use grasp_cachesim::request::{AccessInfo, AccessKind, AccessSite, RegionLabel};
use grasp_cachesim::stage::{LlcSink, UpperLevels};
use grasp_cachesim::stats::HierarchyStats;
use grasp_cachesim::trace::{LlcTrace, TraceStreamer, TraceTap};
use grasp_cachesim::Hierarchy;

/// A sink for the memory accesses an application performs.
pub trait MemoryModel: std::fmt::Debug {
    /// Reports one memory access.
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel);

    /// Reports a whole column of accesses in program order. The default
    /// implementation replays the column through [`MemoryModel::touch`];
    /// models backed by a batched kernel override it. The `hint` field of
    /// each element is ignored, exactly as the scalar path ignores it (the
    /// hierarchy's own classifier assigns hints).
    fn touch_batch(&mut self, batch: &[AccessInfo]) {
        for info in batch {
            self.touch(info.addr, info.kind, info.site, info.region);
        }
    }

    /// Programs the GRASP Address Bound Registers with the application's
    /// Property Array bounds. The default implementation ignores the call
    /// (native execution has no simulated hardware).
    fn program_property_bounds(&mut self, _bounds: &[(Address, Address)]) {}

    /// Number of accesses reported so far.
    fn access_count(&self) -> u64;
}

/// The no-op model used for native (wall-clock) runs: accesses are counted
/// but not simulated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeMemory {
    accesses: u64,
}

impl NativeMemory {
    /// Creates a native (no-op) memory model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryModel for NativeMemory {
    #[inline]
    fn touch(
        &mut self,
        _addr: Address,
        _kind: AccessKind,
        _site: AccessSite,
        _region: RegionLabel,
    ) {
        self.accesses += 1;
    }

    #[inline]
    fn touch_batch(&mut self, batch: &[AccessInfo]) {
        self.accesses += batch.len() as u64;
    }

    fn access_count(&self) -> u64 {
        self.accesses
    }
}

/// The traced model: every access is simulated through a cache hierarchy.
#[derive(Debug)]
pub struct TracedMemory {
    hierarchy: Hierarchy,
    accesses: u64,
}

impl TracedMemory {
    /// Wraps a cache hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self {
            hierarchy,
            accesses: 0,
        }
    }

    /// Borrow the underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Accumulated hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// Consumes the model and returns the hierarchy (e.g. to extract the
    /// recorded LLC trace).
    pub fn into_hierarchy(self) -> Hierarchy {
        self.hierarchy
    }
}

impl MemoryModel for TracedMemory {
    #[inline]
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel) {
        self.accesses += 1;
        self.hierarchy.access(addr, kind, site, region);
    }

    #[inline]
    fn touch_batch(&mut self, batch: &[AccessInfo]) {
        self.accesses += batch.len() as u64;
        self.hierarchy.access_batch(batch);
    }

    fn program_property_bounds(&mut self, bounds: &[(Address, Address)]) {
        self.hierarchy.program_abrs(bounds);
    }

    fn access_count(&self) -> u64 {
        self.accesses
    }
}

/// The recording model of the record-once / replay-many pipeline: accesses
/// run through the policy-independent upper levels
/// ([`grasp_cachesim::stage::UpperLevels`]) only, and everything that escapes
/// L2 goes into the post-L2 sink `S` instead of being simulated. No LLC
/// exists during recording — the stream is replayed under each LLC policy of
/// interest.
///
/// Two sinks are supported:
///
/// * [`LlcTrace`] (the default) **buffers** the whole stream; recording
///   finishes before any replay starts.
/// * [`TraceStreamer`] **streams**: each completed trace chunk is frozen and
///   broadcast through a bounded [`grasp_cachesim::trace::chunk_channel`]
///   while the application is still running, so policy replays overlap the
///   record phase and the trace never exists in full.
#[derive(Debug)]
pub struct RecordingMemory<S: LlcSink = LlcTrace> {
    upper: UpperLevels,
    sink: S,
    accesses: u64,
}

impl RecordingMemory<LlcTrace> {
    /// Creates a buffering recording model for the given hierarchy
    /// configuration (the LLC geometry still matters: it sizes the
    /// classifier's High/Moderate regions and is the default geometry
    /// replays use).
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            upper: UpperLevels::new(config, RegionClassifier::disabled()),
            sink: LlcTrace::new(),
            accesses: 0,
        }
    }

    /// Pre-sizes the trace for roughly `expected_records` post-L2 records.
    pub fn reserve_trace(&mut self, expected_records: usize) {
        self.sink.reserve(expected_records);
    }

    /// Finishes the recording: attaches the upper-level statistics and the
    /// programmed ABR bounds to the trace and returns it.
    pub fn finish(self) -> LlcTrace {
        let mut trace = self.sink;
        trace.set_context(self.upper.record_context());
        trace
    }
}

impl RecordingMemory<TraceStreamer> {
    /// Creates a streaming recording model: completed chunks are handed off
    /// through `tap` as they fill instead of being retained.
    pub fn streaming(config: HierarchyConfig, tap: TraceTap) -> Self {
        Self {
            upper: UpperLevels::new(config, RegionClassifier::disabled()),
            sink: TraceStreamer::new(tap),
            accesses: 0,
        }
    }

    /// Finishes the stream: flushes the in-progress chunk and broadcasts the
    /// end-of-stream marker carrying the recording run's context, which is
    /// what lets every consumer assemble full hierarchy statistics.
    pub fn finish_stream(self) {
        self.sink.finish(self.upper.record_context());
    }
}

impl<S: LlcSink + std::fmt::Debug> MemoryModel for RecordingMemory<S> {
    #[inline]
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel) {
        self.accesses += 1;
        self.upper.access(addr, kind, site, region, &mut self.sink);
    }

    #[inline]
    fn touch_batch(&mut self, batch: &[AccessInfo]) {
        self.accesses += batch.len() as u64;
        self.upper.access_batch(batch, &mut self.sink);
    }

    fn program_property_bounds(&mut self, bounds: &[(Address, Address)]) {
        self.upper.program_abrs(bounds);
    }

    fn access_count(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_cachesim::config::HierarchyConfig;
    use grasp_cachesim::hint::{RegionClassifier, ReuseHint};
    use grasp_cachesim::policy::rrip::Drrip;

    #[test]
    fn native_memory_counts_accesses() {
        let mut m = NativeMemory::new();
        m.touch(0x10, AccessKind::Read, 1, RegionLabel::Property);
        m.touch(0x20, AccessKind::Write, 2, RegionLabel::Other);
        assert_eq!(m.access_count(), 2);
    }

    #[test]
    fn traced_memory_drives_the_hierarchy() {
        // Disable the prefetcher so every distinct block is a demand miss all
        // the way down.
        let config = HierarchyConfig::scaled_default().without_prefetch();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let hierarchy = Hierarchy::new(config, llc, RegionClassifier::disabled());
        let mut m = TracedMemory::new(hierarchy);
        for i in 0..100u64 {
            m.touch(i * 64, AccessKind::Read, 3, RegionLabel::Property);
        }
        assert_eq!(m.access_count(), 100);
        assert_eq!(m.stats().l1.accesses, 100);
        assert_eq!(
            m.stats().llc.accesses,
            100,
            "distinct blocks all reach the LLC"
        );
    }

    #[test]
    fn programming_bounds_enables_classification() {
        let config = HierarchyConfig::scaled_default().with_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let hierarchy = Hierarchy::new(config, llc, RegionClassifier::disabled());
        let mut m = TracedMemory::new(hierarchy);
        m.program_property_bounds(&[(0x8000_0000, 0x8000_0000 + (1 << 21))]);
        m.touch(0x8000_0000, AccessKind::Read, 1, RegionLabel::Property);
        let trace = m.into_hierarchy().into_llc_trace();
        assert_eq!(trace.demand_vec()[0].hint, ReuseHint::High);
        assert_eq!(
            trace.abr_bounds(),
            &[(0x8000_0000, 0x8000_0000 + (1 << 21))],
            "programmed bounds travel with the trace"
        );
    }

    #[test]
    fn streaming_memory_matches_buffered_recording() {
        use grasp_cachesim::policy::lru::Lru;
        use grasp_cachesim::trace::{chunk_channel_with, replay_stream, ChunkReplayer};

        let config = HierarchyConfig::scaled_default().without_prefetch();
        let drive = |m: &mut dyn MemoryModel| {
            m.program_property_bounds(&[(0, 1 << 21)]);
            for i in 0..500u64 {
                m.touch(i % 170 * 64, AccessKind::Write, 3, RegionLabel::Property);
            }
        };

        let mut buffered = RecordingMemory::new(config);
        drive(&mut buffered);
        let trace = buffered.finish();
        let llc = config.llc;
        let expected = trace.replay(llc, Box::new(Lru::new(llc.sets(), llc.ways)));

        // Small chunks + ample depth: the whole stream fits in the channel,
        // so no consumer thread is needed for this equivalence check.
        let (tap, receivers) = chunk_channel_with(1, trace.len().div_ceil(16) + 2, 16);
        let mut streaming = RecordingMemory::streaming(config, tap);
        drive(&mut streaming);
        streaming.finish_stream();
        let replayer = ChunkReplayer::new(llc, Box::new(Lru::new(llc.sets(), llc.ways)));
        let streamed = replay_stream(&receivers[0], vec![replayer]).remove(0);
        assert_eq!(streamed, expected, "streamed replay must be bit-identical");
    }

    #[test]
    fn recording_memory_captures_the_post_l2_stream() {
        let config = HierarchyConfig::scaled_default().without_prefetch();
        let mut m = RecordingMemory::new(config);
        m.program_property_bounds(&[(0, 1 << 21)]);
        for i in 0..100u64 {
            m.touch(i * 64, AccessKind::Read, 3, RegionLabel::Property);
        }
        assert_eq!(m.access_count(), 100);
        let trace = m.finish();
        assert_eq!(
            trace.demand_len(),
            100,
            "distinct blocks all escape the upper levels"
        );
        assert_eq!(trace.context().l1.accesses, 100);
        assert_eq!(trace.demand_vec()[0].hint, ReuseHint::High);
        assert_eq!(trace.abr_bounds(), &[(0, 1 << 21)]);
    }
}
