//! Memory models: where the applications' memory accesses go.

use grasp_cachesim::addr::Address;
use grasp_cachesim::request::{AccessKind, AccessSite, RegionLabel};
use grasp_cachesim::stats::HierarchyStats;
use grasp_cachesim::Hierarchy;

/// A sink for the memory accesses an application performs.
pub trait MemoryModel: std::fmt::Debug {
    /// Reports one memory access.
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel);

    /// Programs the GRASP Address Bound Registers with the application's
    /// Property Array bounds. The default implementation ignores the call
    /// (native execution has no simulated hardware).
    fn program_property_bounds(&mut self, _bounds: &[(Address, Address)]) {}

    /// Number of accesses reported so far.
    fn access_count(&self) -> u64;
}

/// The no-op model used for native (wall-clock) runs: accesses are counted
/// but not simulated.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeMemory {
    accesses: u64,
}

impl NativeMemory {
    /// Creates a native (no-op) memory model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryModel for NativeMemory {
    #[inline]
    fn touch(
        &mut self,
        _addr: Address,
        _kind: AccessKind,
        _site: AccessSite,
        _region: RegionLabel,
    ) {
        self.accesses += 1;
    }

    fn access_count(&self) -> u64 {
        self.accesses
    }
}

/// The traced model: every access is simulated through a cache hierarchy.
#[derive(Debug)]
pub struct TracedMemory {
    hierarchy: Hierarchy,
    accesses: u64,
}

impl TracedMemory {
    /// Wraps a cache hierarchy.
    pub fn new(hierarchy: Hierarchy) -> Self {
        Self {
            hierarchy,
            accesses: 0,
        }
    }

    /// Borrow the underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Accumulated hierarchy statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.hierarchy.stats()
    }

    /// Consumes the model and returns the hierarchy (e.g. to extract the
    /// recorded LLC trace).
    pub fn into_hierarchy(self) -> Hierarchy {
        self.hierarchy
    }
}

impl MemoryModel for TracedMemory {
    #[inline]
    fn touch(&mut self, addr: Address, kind: AccessKind, site: AccessSite, region: RegionLabel) {
        self.accesses += 1;
        self.hierarchy.access(addr, kind, site, region);
    }

    fn program_property_bounds(&mut self, bounds: &[(Address, Address)]) {
        self.hierarchy.program_abrs(bounds);
    }

    fn access_count(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_cachesim::config::HierarchyConfig;
    use grasp_cachesim::hint::{RegionClassifier, ReuseHint};
    use grasp_cachesim::policy::rrip::Drrip;

    #[test]
    fn native_memory_counts_accesses() {
        let mut m = NativeMemory::new();
        m.touch(0x10, AccessKind::Read, 1, RegionLabel::Property);
        m.touch(0x20, AccessKind::Write, 2, RegionLabel::Other);
        assert_eq!(m.access_count(), 2);
    }

    #[test]
    fn traced_memory_drives_the_hierarchy() {
        // Disable the prefetcher so every distinct block is a demand miss all
        // the way down.
        let config = HierarchyConfig::scaled_default().without_prefetch();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let hierarchy = Hierarchy::new(config, llc, RegionClassifier::disabled());
        let mut m = TracedMemory::new(hierarchy);
        for i in 0..100u64 {
            m.touch(i * 64, AccessKind::Read, 3, RegionLabel::Property);
        }
        assert_eq!(m.access_count(), 100);
        assert_eq!(m.stats().l1.accesses, 100);
        assert_eq!(
            m.stats().llc.accesses,
            100,
            "distinct blocks all reach the LLC"
        );
    }

    #[test]
    fn programming_bounds_enables_classification() {
        let config = HierarchyConfig::scaled_default().with_llc_trace();
        let llc = Box::new(Drrip::new(config.llc.sets(), config.llc.ways, 1));
        let hierarchy = Hierarchy::new(config, llc, RegionClassifier::disabled());
        let mut m = TracedMemory::new(hierarchy);
        m.program_property_bounds(&[(0x8000_0000, 0x8000_0000 + (1 << 21))]);
        m.touch(0x8000_0000, AccessKind::Read, 1, RegionLabel::Property);
        let trace = m.into_hierarchy().into_llc_trace();
        assert_eq!(trace.get(0).hint, ReuseHint::High);
    }
}
