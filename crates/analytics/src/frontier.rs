//! Vertex frontiers (Ligra's `vertexSubset`).

use grasp_graph::types::VertexId;

/// A subset of vertices, maintained both as a membership bitmap (for O(1)
/// dense checks) and as a list (for sparse iteration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    members: Vec<bool>,
    list: Vec<VertexId>,
}

impl Frontier {
    /// An empty frontier over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            members: vec![false; n],
            list: Vec::new(),
        }
    }

    /// A frontier containing every vertex.
    pub fn full(n: usize) -> Self {
        Self {
            members: vec![true; n],
            list: (0..n as VertexId).collect(),
        }
    }

    /// A frontier containing a single vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn single(n: usize, v: VertexId) -> Self {
        let mut f = Self::empty(n);
        f.add(v);
        f
    }

    /// Builds a frontier from a list of vertices (duplicates are ignored).
    pub fn from_vertices(n: usize, vertices: impl IntoIterator<Item = VertexId>) -> Self {
        let mut f = Self::empty(n);
        for v in vertices {
            f.add(v);
        }
        f
    }

    /// Number of vertices in the universe.
    pub fn universe(&self) -> usize {
        self.members.len()
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Returns `true` if no vertex is a member.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.members[v as usize]
    }

    /// Adds a vertex (no-op if already present).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn add(&mut self, v: VertexId) {
        if !self.members[v as usize] {
            self.members[v as usize] = true;
            self.list.push(v);
        }
    }

    /// Empties the frontier in O(len) time while keeping both allocations,
    /// so a round loop can reuse two frontiers (`clear` + `swap`) instead of
    /// reallocating the membership bitmap every round — allocator traffic
    /// that would otherwise sit in the middle of the batched record phase.
    pub fn clear(&mut self) {
        for &v in &self.list {
            self.members[v as usize] = false;
        }
        self.list.clear();
    }

    /// Iterates the member vertices in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, VertexId> {
        self.list.iter()
    }

    /// Fraction of the universe that is a member (Ligra's density used for
    /// push/pull direction switching).
    pub fn density(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else {
            self.list.len() as f64 / self.members.len() as f64
        }
    }

    /// Sum of the degrees of the member vertices in the given direction —
    /// Ligra's push/pull switching threshold compares this against
    /// `edges / 20`.
    pub fn out_degree_sum(&self, graph: &dyn grasp_graph::GraphView) -> u64 {
        self.list.iter().map(|&v| graph.out_degree(v)).sum()
    }
}

impl<'a> IntoIterator for &'a Frontier {
    type Item = &'a VertexId;
    type IntoIter = std::slice::Iter<'a, VertexId>;

    fn into_iter(self) -> Self::IntoIter {
        self.list.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_full_single() {
        let e = Frontier::empty(10);
        assert!(e.is_empty());
        assert_eq!(e.universe(), 10);
        let f = Frontier::full(10);
        assert_eq!(f.len(), 10);
        assert!((f.density() - 1.0).abs() < 1e-12);
        let s = Frontier::single(10, 3);
        assert_eq!(s.len(), 1);
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn add_ignores_duplicates() {
        let mut f = Frontier::empty(5);
        f.add(2);
        f.add(2);
        f.add(4);
        assert_eq!(f.len(), 2);
        let collected: Vec<u32> = f.iter().copied().collect();
        assert_eq!(collected, vec![2, 4]);
    }

    #[test]
    fn clear_resets_membership_and_keeps_the_universe() {
        let mut f = Frontier::from_vertices(8, [1, 4, 6]);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.universe(), 8);
        assert!(!f.contains(4));
        f.add(4);
        assert_eq!(f.len(), 1);
        assert!(f.contains(4));
    }

    #[test]
    fn from_vertices_dedups() {
        let f = Frontier::from_vertices(6, [1, 1, 5, 3, 5]);
        assert_eq!(f.len(), 3);
        assert!((f.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn degree_sum_matches_graph() {
        let g = grasp_graph::Csr::from_edges([(0, 1), (0, 2), (1, 2), (2, 0)]).unwrap();
        let f = Frontier::from_vertices(3, [0, 2]);
        assert_eq!(f.out_degree_sum(&g), 3);
    }

    #[test]
    fn into_iterator_for_reference() {
        let f = Frontier::from_vertices(4, [0, 3]);
        let sum: u32 = (&f).into_iter().copied().sum();
        assert_eq!(sum, 3);
    }
}
