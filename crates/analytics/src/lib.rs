//! # grasp-analytics — a Ligra-style vertex-centric analytics framework
//!
//! This crate is the software substrate of the GRASP (HPCA'20) reproduction:
//! the equivalent of the Ligra framework and the five applications of
//! Table III (PageRank, PageRank-Delta, Betweenness Centrality, Single-Source
//! Shortest Paths and Radii estimation).
//!
//! Beyond producing correct analytical results, every application models its
//! memory behaviour: per-vertex state lives in *Property Arrays* placed in a
//! simulated virtual [`layout::AddressSpace`], and every structural access
//! (Vertex Array, Edge Array, frontier) and property access is reported to a
//! [`mem::MemoryModel`]. Two models are provided:
//!
//! * [`mem::NativeMemory`] — a no-op, used when measuring real wall-clock
//!   runtimes (the Fig. 10a reordering study);
//! * [`mem::TracedMemory`] — drives a [`grasp_cachesim::Hierarchy`], used for
//!   all simulator-based experiments (Figs. 2, 5–9, 11).
//!
//! The applications program the GRASP Address Bound Registers with the bounds
//! of their Property Arrays right after allocating them, exactly as the
//! instrumented Ligra applications do in the paper.
//!
//! ```
//! use grasp_analytics::apps::{AppKind, AppConfig};
//! use grasp_analytics::mem::NativeMemory;
//! use grasp_analytics::Workspace;
//! use grasp_graph::generators::{GraphGenerator, Rmat};
//!
//! let graph = Rmat::new(8, 8).generate(1);
//! let mut ws = Workspace::new(NativeMemory::new());
//! let result = AppKind::PageRank.run(&graph, &mut ws, &AppConfig::default());
//! assert_eq!(result.values.len(), graph.vertex_count());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod engine;
pub mod frontier;
pub mod layout;
pub mod mem;
pub mod props;
pub mod workspace;

pub use frontier::Frontier;
pub use layout::{AddressSpace, ArrayHandle};
pub use mem::{MemoryModel, NativeMemory, RecordingMemory, TracedMemory};
pub use props::{PropertyLayout, PropertySet};
pub use workspace::Workspace;

/// Access-site identifiers (the PC proxies carried with every access).
pub mod sites {
    use grasp_cachesim::request::AccessSite;

    /// Reads of the CSR Vertex Array (offsets).
    pub const VERTEX_ARRAY: AccessSite = 1;
    /// Reads of the CSR Edge Array (neighbour IDs / weights).
    pub const EDGE_ARRAY: AccessSite = 2;
    /// Reads of Property Array elements indexed by a *neighbour* vertex — the
    /// irregular accesses at the heart of the paper's analysis.
    pub const PROPERTY_GATHER: AccessSite = 3;
    /// Reads/writes of Property Array elements indexed by the *current*
    /// vertex (sequential).
    pub const PROPERTY_LOCAL: AccessSite = 4;
    /// Frontier bitmap reads and writes.
    pub const FRONTIER: AccessSite = 5;
}
