//! A minimal JSON reader for the `BENCH_*.json` dumps.
//!
//! The workspace's vendored `serde` is an offline stub without a JSON
//! backend, and the dumps are produced by our own writer
//! (`grasp_core::report::to_json`), so a small strict parser covering
//! objects, arrays, strings, numbers, booleans and null is all that is
//! needed — with escapes handled exactly as the writer emits them.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64` (exact for the integers we emit).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order not preserved; comparisons are by key).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the writer only emits valid
                    // UTF-8; recover the char boundary from the remainder).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_bench_dump_shape() {
        let doc = parse(
            r#"{"figure":"fig5","wall_ms":27582,"tables":[{"title":"Fig. \"5\"","headers":["app","GRASP"],"rows":[["BC","+5.2"],["PR\n","-1.0"]]}]}"#,
        )
        .expect("parses");
        assert_eq!(doc.get("wall_ms").and_then(Json::as_f64), Some(27582.0));
        let tables = doc.get("tables").and_then(Json::as_array).expect("tables");
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("title").and_then(Json::as_str),
            Some("Fig. \"5\"")
        );
        let rows = tables[0]
            .get("rows")
            .and_then(Json::as_array)
            .expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].as_array().expect("row")[0].as_str(),
            Some("PR\n"),
            "escapes resolve"
        );
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn numbers_bools_and_null_round_trip() {
        assert_eq!(parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("[]").unwrap(), Json::Array(Vec::new()));
    }
}
