//! `cargo xtask graph` — ingest and inspect on-disk binary CSR graphs
//! (`grasp_graph::ingest`).
//!
//! Subcommands:
//!
//! * `ingest <edge-list> --out <dir> [--threads <N>]` — parse a text
//!   (`src dst [weight]` per line) or binary (`.bin`) edge list, build the
//!   CSR in parallel and write the checksummed `.gcsr` directory. Prints
//!   the content hash and the ingest-time skew statistics; the hash is what
//!   a campaign registers in its `DatasetCatalog` and what shows up in
//!   trace-store entry file names (`g<hash:016x>-…`).
//! * `info <dir>` — decode the header (validating its checksum) and print
//!   the graph's dimensions, weight encoding and skew statistics.
//! * `verify <dir>` — re-checksum the header and every column file and
//!   validate CSR structure; non-zero exit on any corruption.
//!
//! Thread count defaults to `GRASP_INGEST_THREADS` or the available
//! parallelism (capped at 8).

use grasp_graph::ingest::{self, default_ingest_threads, GraphStats, IngestReport};
use std::path::PathBuf;
use std::process::ExitCode;

pub fn usage() -> &'static str {
    "usage: cargo xtask graph <ingest|info|verify> [options]\n\
     \n\
     ingest <edge-list> --out <dir> [--threads <N>]\n\
     \u{20}            build an on-disk binary CSR from a text or .bin edge list\n\
     info <dir>   print a binary CSR directory's header (dims, hash, skew)\n\
     verify <dir> checksum-verify the header, every column and the CSR shape"
}

/// Parsed `graph` invocation (kept separate from execution for testing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphArgs {
    pub command: String,
    pub input: PathBuf,
    pub out: Option<PathBuf>,
    pub threads: Option<usize>,
}

/// Parses `<subcommand> <path> [--out dir] [--threads N]`.
pub fn parse_args(args: &[String]) -> Result<GraphArgs, String> {
    let mut iter = args.iter();
    let command = iter
        .next()
        .ok_or_else(|| "missing graph subcommand".to_owned())?
        .clone();
    if !matches!(command.as_str(), "ingest" | "info" | "verify") {
        return Err(format!("unknown graph subcommand '{command}'"));
    }
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                let value = iter.next().ok_or_else(|| "--out needs a path".to_owned())?;
                out = Some(PathBuf::from(value));
            }
            "--threads" => {
                let value = iter
                    .next()
                    .ok_or_else(|| "--threads needs a count".to_owned())?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("invalid --threads '{value}'"))?;
                threads = Some(n.max(1));
            }
            other if !other.starts_with("--") && input.is_none() => {
                input = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let input = input.ok_or_else(|| format!("graph {command} needs a path argument"))?;
    if command == "ingest" && out.is_none() {
        return Err("graph ingest needs --out <dir>".to_owned());
    }
    Ok(GraphArgs {
        command,
        input,
        out,
        threads,
    })
}

pub fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    match parsed.command.as_str() {
        "ingest" => run_ingest(&parsed),
        "info" => run_info(&parsed),
        "verify" => run_verify(&parsed),
        _ => unreachable!("parse_args rejects unknown subcommands"),
    }
}

fn run_ingest(args: &GraphArgs) -> ExitCode {
    let out = args.out.as_ref().expect("parse_args enforces --out");
    let threads = args.threads.unwrap_or_else(default_ingest_threads);
    match ingest::ingest_file(&args.input, out, threads) {
        Ok(report) => {
            print_report(&report, threads);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("graph ingest failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_info(args: &GraphArgs) -> ExitCode {
    match ingest::read_header(&args.input) {
        Ok(header) => {
            println!("binary CSR {}", args.input.display());
            println!("  format version  v{}", header.version);
            println!("  vertices        {}", header.vertex_count);
            println!("  edges           {}", header.edge_count);
            println!("  content hash    g{:016x}", header.content_hash);
            match header.uniform_weight {
                Some(w) => println!("  weights         uniform ({w}, columns omitted)"),
                None => println!("  weights         explicit columns"),
            }
            print_stats(&header.stats);
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("graph info failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run_verify(args: &GraphArgs) -> ExitCode {
    match ingest::verify_disk_csr(&args.input) {
        Ok(header) => {
            println!(
                "ok: {} ({} vertices, {} edges, hash g{:016x})",
                args.input.display(),
                header.vertex_count,
                header.edge_count,
                header.content_hash
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("graph verify failed: {err}");
            ExitCode::FAILURE
        }
    }
}

fn print_report(report: &IngestReport, threads: usize) {
    println!("ingested {} ({threads} threads)", report.path.display());
    println!("  vertices        {}", report.vertex_count);
    println!("  edges           {}", report.edge_count);
    println!("  content hash    g{:016x}", report.content_hash);
    match report.uniform_weight {
        Some(w) => println!("  weights         uniform ({w}, columns omitted)"),
        None => println!("  weights         explicit columns"),
    }
    println!("  bytes written   {}", report.bytes_written);
    print_stats(&report.stats);
}

fn print_stats(stats: &GraphStats) {
    println!("  max out-degree  {}", stats.max_out_degree);
    println!("  max in-degree   {}", stats.max_in_degree);
    println!("  mean degree     {:.2}", stats.mean_degree);
    println!("  degree gini     {:.3}", stats.gini);
    println!(
        "  hot-10% mass    {:.1}% of out-edges",
        stats.hot10_edge_fraction * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_ingest_with_options() {
        let parsed = parse_args(&strings(&[
            "ingest",
            "edges.txt",
            "--out",
            "g.gcsr",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(parsed.command, "ingest");
        assert_eq!(parsed.input, PathBuf::from("edges.txt"));
        assert_eq!(parsed.out, Some(PathBuf::from("g.gcsr")));
        assert_eq!(parsed.threads, Some(4));
    }

    #[test]
    fn ingest_requires_out() {
        let err = parse_args(&strings(&["ingest", "edges.txt"])).unwrap_err();
        assert!(err.contains("--out"), "{err}");
    }

    #[test]
    fn info_and_verify_take_a_path() {
        for cmd in ["info", "verify"] {
            let parsed = parse_args(&strings(&[cmd, "g.gcsr"])).unwrap();
            assert_eq!(parsed.command, cmd);
            assert_eq!(parsed.input, PathBuf::from("g.gcsr"));
            assert!(parse_args(&strings(&[cmd])).is_err());
        }
    }

    #[test]
    fn rejects_unknown_subcommand_and_stray_flags() {
        assert!(parse_args(&strings(&["frobnicate", "x"])).is_err());
        assert!(parse_args(&strings(&["info", "a", "--bogus"])).is_err());
        assert!(parse_args(&strings(&["ingest", "a", "--threads", "x"])).is_err());
    }

    #[test]
    fn threads_clamp_to_at_least_one() {
        let parsed =
            parse_args(&strings(&["ingest", "e", "--out", "o", "--threads", "0"])).unwrap();
        assert_eq!(parsed.threads, Some(1));
    }

    #[test]
    fn end_to_end_ingest_info_verify() {
        let dir = std::env::temp_dir().join(format!(
            "grasp-xtask-graph-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("edges.txt");
        std::fs::write(&edges, "0 1\n1 2\n2 0\n2 3\n").unwrap();
        let out = dir.join("g.gcsr");
        let code = run(&strings(&[
            "ingest",
            edges.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--threads",
            "2",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);
        assert_eq!(
            run(&strings(&["info", out.to_str().unwrap()])),
            ExitCode::SUCCESS
        );
        assert_eq!(
            run(&strings(&["verify", out.to_str().unwrap()])),
            ExitCode::SUCCESS
        );
        // Corrupt a column: verify must fail.
        let col = out.join("out.targets");
        let mut bytes = std::fs::read(&col).unwrap();
        bytes[0] ^= 0xff;
        std::fs::write(&col, bytes).unwrap();
        assert_eq!(
            run(&strings(&["verify", out.to_str().unwrap()])),
            ExitCode::FAILURE
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
