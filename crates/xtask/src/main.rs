//! Repository automation tasks (`cargo xtask <task>`).
//!
//! * `bench-diff` — the CI bench-trajectory gate (below).
//! * `trace` — hygiene, codec migration and CI exercise for the persistent
//!   trace store (`ls [--json]` / `verify` / `gc --max-bytes` /
//!   `recompress [--codec]` / `exercise`; see [`trace`]).
//! * `graph` — ingest/inspect on-disk binary CSR graphs
//!   (`ingest --out` / `info` / `verify`; see [`graph`]).
//! * `serve` / `client` — the campaign service daemon and its
//!   command-line client (`grasp-serve` over a Unix socket; see
//!   [`service`]).
//!
//! `bench-diff` compares freshly dumped `BENCH_<figure>.json` files against
//! the committed baselines and fails when
//!
//! * a figure's campaign wall-clock (`wall_ms`) regressed by more than the
//!   tolerance (default 10%, `GRASP_BENCH_TOLERANCE=0.25` for 25%), or
//! * any **table content** changed — titles, headers, or row cells, except
//!   cells in timing columns (headers ending in ` ms`, or speed-up columns),
//!   which are machine-dependent measurements rather than simulation results
//!   and are covered by the wall-clock check instead.
//!
//! Simulation tables are fully deterministic (fixed seeds end to end), so a
//! changed cell means a behaviour change that must be acknowledged by
//! re-committing the baseline, not noise.

mod graph;
mod service;
mod trace;

use grasp_core::json::{self, Json};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const DEFAULT_TOLERANCE: f64 = 0.10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("trace") => trace::run(&args[1..]),
        Some("graph") => graph::run(&args[1..]),
        Some("serve") => service::serve(&args[1..]),
        Some("client") => service::client(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <bench-diff|trace|graph|serve|client> [options]");
            eprintln!();
            eprintln!("bench-diff   compare fresh BENCH_*.json dumps against committed baselines");
            eprintln!("             (tolerance via GRASP_BENCH_TOLERANCE, default 0.10 = 10%)");
            eprintln!(
                "             options: [--baseline <dir>] [--fresh <dir>] \
                 (defaults: baseline = repo root, fresh = target/bench-fresh)"
            );
            eprintln!();
            eprintln!("{}", trace::usage());
            eprintln!();
            eprintln!("{}", graph::usage());
            eprintln!();
            eprintln!("{}", service::usage());
            ExitCode::from(2)
        }
    }
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut baseline = PathBuf::from(".");
    let mut fresh = PathBuf::from("target/bench-fresh");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => baseline = expect_path(iter.next(), "--baseline"),
            "--fresh" => fresh = expect_path(iter.next(), "--fresh"),
            other => {
                eprintln!("bench-diff: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let tolerance = std::env::var("GRASP_BENCH_TOLERANCE")
        .ok()
        .and_then(|raw| raw.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);

    let baselines = match list_bench_files(&baseline) {
        Ok(files) if !files.is_empty() => files,
        Ok(_) => {
            eprintln!(
                "bench-diff: no BENCH_*.json baselines in {}",
                baseline.display()
            );
            return ExitCode::from(2);
        }
        Err(err) => {
            eprintln!("bench-diff: cannot read {}: {err}", baseline.display());
            return ExitCode::from(2);
        }
    };

    let mut failures = Vec::new();
    for name in &baselines {
        let base_path = baseline.join(name);
        let fresh_path = fresh.join(name);
        match diff_figure(&base_path, &fresh_path, tolerance) {
            Ok(report) => println!("{name}: {report}"),
            Err(problems) => {
                for problem in &problems {
                    eprintln!("{name}: {problem}");
                }
                failures.push(name.clone());
            }
        }
    }

    // A fresh dump with no committed baseline is a new figure escaping the
    // gate entirely — fail so its baseline gets committed alongside it. An
    // unreadable fresh directory must fail too: swallowing the error here
    // would let a mis-pointed --fresh pass the whole gate silently.
    match list_bench_files(&fresh) {
        Ok(fresh_files) => {
            for name in fresh_files {
                if !baselines.contains(&name) {
                    eprintln!(
                        "{name}: fresh dump has no committed baseline in {} — regenerate with \
                         GRASP_BENCH_JSON_DIR pointed at the repo root and commit the file so \
                         the figure is gated",
                        baseline.display()
                    );
                    failures.push(name);
                }
            }
        }
        Err(err) => {
            eprintln!(
                "bench-diff: cannot read fresh dump directory {}: {err}",
                fresh.display()
            );
            return ExitCode::from(2);
        }
    }
    if failures.is_empty() {
        println!(
            "bench trajectory OK: {} figure(s) within {:.0}% wall-clock tolerance, tables unchanged",
            baselines.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench trajectory FAILED for: {}", failures.join(", "));
        ExitCode::FAILURE
    }
}

fn expect_path(value: Option<&String>, flag: &str) -> PathBuf {
    match value {
        Some(v) => PathBuf::from(v),
        None => {
            eprintln!("bench-diff: {flag} needs a directory argument");
            std::process::exit(2);
        }
    }
}

fn list_bench_files(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

/// Compares one figure's fresh dump against its baseline. Returns a one-line
/// summary on success, or the list of violations.
fn diff_figure(base_path: &Path, fresh_path: &Path, tolerance: f64) -> Result<String, Vec<String>> {
    let base = load(base_path).map_err(|e| vec![e])?;
    let fresh = load(fresh_path).map_err(|e| {
        vec![format!(
            "missing fresh dump {} ({e}); run the figure bench with GRASP_BENCH_JSON_DIR set",
            fresh_path.display()
        )]
    })?;

    let mut problems = Vec::new();

    let base_wall = wall_ms(&base).unwrap_or(0.0);
    let fresh_wall = wall_ms(&fresh).unwrap_or(0.0);
    let limit = base_wall * (1.0 + tolerance);
    if base_wall > 0.0 && fresh_wall > limit {
        problems.push(format!(
            "campaign wall-clock regressed: {fresh_wall:.0} ms vs baseline {base_wall:.0} ms \
             (>{:.0}% over)",
            tolerance * 100.0
        ));
    }

    diff_tables(&base, &fresh, &mut problems);

    if problems.is_empty() {
        Ok(format!(
            "wall {fresh_wall:.0} ms vs baseline {base_wall:.0} ms, tables identical{}",
            bench_meta_summary(&fresh)
        ))
    } else {
        Err(problems)
    }
}

/// Renders a fresh dump's embedded measurement metadata (hardware thread
/// count + speedup-bar state), so gated CI runs are distinguishable from
/// bar-enforced multi-core runs in the log. Dumps that predate the fields
/// render nothing.
fn bench_meta_summary(doc: &Json) -> String {
    let Some(threads) = doc.get("hardware_threads").and_then(Json::as_f64) else {
        return String::new();
    };
    let bars = match doc.get("speedup_bars_enforced").and_then(Json::as_bool) {
        Some(true) => "speedup bars enforced",
        Some(false) => "speedup bars demoted",
        None => "speedup bar state unknown",
    };
    format!(" (fresh: {} hw thread(s), {bars})", threads as u64)
}

fn load(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn wall_ms(doc: &Json) -> Option<f64> {
    doc.get("wall_ms")?.as_f64()
}

/// A column is a timing column when its header names a measured duration or
/// a ratio of durations — machine-dependent, excluded from strict equality.
/// The match is deliberately narrow ("… ms" suffix or a speed-up header, the
/// forms `grasp_core::report` tables actually use) so a header merely
/// *containing* "ms" (e.g. "algorithms") is never silently exempted.
fn is_timing_header(header: &str) -> bool {
    let lower = header.to_ascii_lowercase();
    lower == "ms"
        || lower.ends_with(" ms")
        || lower.contains("speed-up")
        || lower.contains("speedup")
}

fn diff_tables(base: &Json, fresh: &Json, problems: &mut Vec<String>) {
    let empty = Vec::new();
    let base_tables = base
        .get("tables")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let fresh_tables = fresh
        .get("tables")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    if base_tables.len() != fresh_tables.len() {
        problems.push(format!(
            "table count changed: {} vs baseline {}",
            fresh_tables.len(),
            base_tables.len()
        ));
        return;
    }
    for (t, (bt, ft)) in base_tables.iter().zip(fresh_tables).enumerate() {
        let title = bt.get("title").and_then(Json::as_str).unwrap_or("?");
        if ft.get("title").and_then(Json::as_str) != Some(title) {
            problems.push(format!("table {t} title changed (baseline: {title:?})"));
            continue;
        }
        let base_headers = string_rows(bt.get("headers"));
        let fresh_headers = string_rows(ft.get("headers"));
        if base_headers != fresh_headers {
            problems.push(format!("table {title:?}: headers changed"));
            continue;
        }
        let base_rows = rows_of(bt);
        let fresh_rows = rows_of(ft);
        if base_rows.len() != fresh_rows.len() {
            problems.push(format!(
                "table {title:?}: row count changed ({} vs baseline {})",
                fresh_rows.len(),
                base_rows.len()
            ));
            continue;
        }
        for (r, (brow, frow)) in base_rows.iter().zip(&fresh_rows).enumerate() {
            if brow.len() != frow.len() {
                problems.push(format!(
                    "table {title:?} row {r}: cell count changed ({} vs baseline {})",
                    frow.len(),
                    brow.len()
                ));
                continue;
            }
            for (c, (bcell, fcell)) in brow.iter().zip(frow).enumerate() {
                let header = base_headers.get(c).map(String::as_str).unwrap_or("");
                if is_timing_header(header) {
                    continue;
                }
                if bcell != fcell {
                    problems.push(format!(
                        "table {title:?} row {r} column {header:?}: {fcell:?} vs baseline {bcell:?}"
                    ));
                }
            }
        }
    }
}

fn string_rows(value: Option<&Json>) -> Vec<String> {
    value
        .and_then(Json::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect()
        })
        .unwrap_or_default()
}

fn rows_of(table: &Json) -> Vec<Vec<String>> {
    table
        .get("rows")
        .and_then(Json::as_array)
        .map(|rows| rows.iter().map(|row| string_rows(Some(row))).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wall: u64, cell: &str, timing: &str) -> Json {
        json::parse(&format!(
            r#"{{"figure":"f","wall_ms":{wall},"tables":[{{"title":"t","headers":["app","GRASP","direct ms","speed-up"],"rows":[["PR","{cell}","{timing}","9.99x"]]}}]}}"#
        ))
        .expect("valid test doc")
    }

    fn problems(base: &Json, fresh: &Json, tolerance: f64) -> Vec<String> {
        let mut out = Vec::new();
        let base_wall = wall_ms(base).unwrap();
        let fresh_wall = wall_ms(fresh).unwrap();
        if base_wall > 0.0 && fresh_wall > base_wall * (1.0 + tolerance) {
            out.push("wall regression".to_owned());
        }
        diff_tables(base, fresh, &mut out);
        out
    }

    #[test]
    fn identical_dumps_pass() {
        let base = doc(1000, "+7.5", "12.3");
        assert!(problems(&base, &base, 0.10).is_empty());
    }

    #[test]
    fn timing_columns_and_small_wall_drift_are_tolerated() {
        let base = doc(1000, "+7.5", "12.3");
        let fresh = doc(1099, "+7.5", "99.9");
        assert!(problems(&base, &fresh, 0.10).is_empty());
    }

    #[test]
    fn wall_clock_regression_fails() {
        let base = doc(1000, "+7.5", "12.3");
        let fresh = doc(1200, "+7.5", "12.3");
        let found = problems(&base, &fresh, 0.10);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("wall"));
    }

    #[test]
    fn any_result_cell_change_fails() {
        let base = doc(1000, "+7.5", "12.3");
        let fresh = doc(1000, "+7.4", "12.3");
        let found = problems(&base, &fresh, 0.10);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("GRASP"), "{found:?}");
    }

    #[test]
    fn timing_headers_are_detected() {
        assert!(is_timing_header("direct ms"));
        assert!(is_timing_header("speed-up"));
        assert!(is_timing_header("streaming ms"));
        assert!(!is_timing_header("GRASP"));
        assert!(!is_timing_header("trace records"));
        // Substrings of ordinary words must not exempt a column.
        assert!(!is_timing_header("algorithms"));
        assert!(!is_timing_header("streams"));
    }

    #[test]
    fn truncated_rows_fail_instead_of_passing_silently() {
        let base = doc(1000, "+7.5", "12.3");
        let fresh = json::parse(
            r#"{"figure":"f","wall_ms":1000,"tables":[{"title":"t","headers":["app","GRASP","direct ms","speed-up"],"rows":[["PR"]]}]}"#,
        )
        .expect("valid test doc");
        let found = problems(&base, &fresh, 0.10);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("cell count"), "{found:?}");
    }
}
