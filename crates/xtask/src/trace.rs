//! `cargo xtask trace` — hygiene and CI exercise for the persistent trace
//! store (`grasp_core::trace_store`).
//!
//! Subcommands:
//!
//! * `ls [--json]` — list entries (size, codec, last use), most recently
//!   used first; `--json` emits a machine-readable summary with total store
//!   bytes, the raw-equivalent bytes and the resulting compression ratio
//!   (the CI store-budget gate's input).
//! * `verify` — checksum-verify every entry; non-zero exit on any corruption.
//! * `gc --max-bytes <N[K|M|G]>` — evict least-recently-used entries until
//!   the store fits the budget (stale temp files are always swept). Sizes
//!   are statted from the files, never taken from `index.tsv` stamps, so
//!   recompressed entries are credited at their true size.
//! * `recompress [--codec <raw|delta-varint>]` — migrate every entry to the
//!   target codec (default delta-varint) in place, atomically (temp +
//!   rename); v1 raw entries become v2 compressed entries.
//! * `exercise` — the CI `trace-store` job's gate: run a small campaign grid
//!   against the store twice (plus a streaming pass), assert every run is
//!   bit-identical to a fresh record, and assert the warm passes are served
//!   from the store (hit count > 0, no re-records).
//!
//! The store directory comes from `--store <dir>` or the
//! `GRASP_TRACE_STORE` environment variable.

use grasp_analytics::apps::AppKind;
use grasp_core::campaign::{Campaign, CampaignResult};
use grasp_core::datasets::{DatasetKind, Scale};
use grasp_core::policy::PolicyKind;
use grasp_core::trace_store::{Codec, EntryInfo, StoreEntry, TraceStore};
use std::process::ExitCode;
use std::sync::Arc;

pub fn usage() -> &'static str {
    "usage: cargo xtask trace <ls|verify|gc|recompress|exercise> [--store <dir>]\n\
     \u{20}                      [--max-bytes <N[K|M|G]>] [--codec <raw|delta-varint>] [--json]\n\
     \n\
     ls          list store entries, most recently used first (--json for the\n\
     \u{20}            machine-readable summary incl. compression ratio)\n\
     verify      checksum-verify every entry (exit 1 on corruption)\n\
     gc          evict LRU entries until the store fits --max-bytes\n\
     recompress  migrate every entry to --codec (default delta-varint) in place\n\
     exercise    record a small grid, reload it, assert bit-identical stats\n\
     \n\
     the store directory comes from --store or GRASP_TRACE_STORE"
}

/// Parsed `trace` invocation (kept separate from execution for testing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceArgs {
    pub command: String,
    pub store: Option<String>,
    pub max_bytes: Option<u64>,
    pub codec: Option<Codec>,
    pub json: bool,
}

/// Parses `<subcommand> [--store dir] [--max-bytes N] [--codec c] [--json]`.
pub fn parse_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut iter = args.iter();
    let command = iter
        .next()
        .ok_or_else(|| "missing subcommand (ls, verify, gc, recompress, exercise)".to_owned())?
        .clone();
    let mut parsed = TraceArgs {
        command,
        store: None,
        max_bytes: None,
        codec: None,
        json: false,
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--store" => {
                parsed.store = Some(
                    iter.next()
                        .ok_or_else(|| "--store needs a directory argument".to_owned())?
                        .clone(),
                );
            }
            "--max-bytes" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--max-bytes needs a size argument".to_owned())?;
                parsed.max_bytes = Some(parse_size(raw)?);
            }
            "--codec" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| "--codec needs a codec argument".to_owned())?;
                parsed.codec = Some(
                    Codec::from_label(raw)
                        .ok_or_else(|| format!("unknown codec {raw:?} (raw, delta-varint)"))?,
                );
            }
            "--json" => parsed.json = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(parsed)
}

/// Parses a byte size with an optional K/M/G suffix (powers of 1024).
pub fn parse_size(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    let (digits, multiplier) = match raw.chars().last() {
        Some('K') | Some('k') => (&raw[..raw.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&raw[..raw.len() - 1], 1u64 << 20),
        Some('G') | Some('g') => (&raw[..raw.len() - 1], 1u64 << 30),
        _ => (raw, 1),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid size {raw:?} (expected e.g. 1048576, 512K, 64M, 1G)"))?;
    value
        .checked_mul(multiplier)
        .ok_or_else(|| format!("size {raw:?} overflows"))
}

/// Formats a byte count for humans (binary units, one decimal).
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

fn open_store(arg: &Option<String>) -> Result<TraceStore, String> {
    let dir = arg
        .clone()
        .or_else(|| {
            std::env::var("GRASP_TRACE_STORE")
                .ok()
                .filter(|s| !s.is_empty())
        })
        .ok_or_else(|| {
            "no store directory: pass --store <dir> or set GRASP_TRACE_STORE".to_owned()
        })?;
    TraceStore::open(&dir).map_err(|err| format!("cannot open trace store {dir}: {err}"))
}

pub fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("trace: {err}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let store = match open_store(&parsed.store) {
        Ok(store) => store,
        Err(err) => {
            eprintln!("trace: {err}");
            return ExitCode::from(2);
        }
    };
    match parsed.command.as_str() {
        "ls" => ls(&store, parsed.json),
        "verify" => verify(&store),
        "gc" => match parsed.max_bytes {
            Some(max_bytes) => gc(&store, max_bytes),
            None => {
                eprintln!("trace gc: --max-bytes is required");
                ExitCode::from(2)
            }
        },
        "recompress" => recompress(&store, parsed.codec.unwrap_or_default()),
        "exercise" => exercise(store),
        other => {
            eprintln!("trace: unknown subcommand {other}");
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// JSON string escaping for file names and paths (names are ASCII slugs,
/// paths may hold anything); delegates to the workspace's one escaping
/// implementation in `grasp_core::json`.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    grasp_core::json::escape_into(&mut out, raw);
    out
}

/// The store summary `ls` prints and the CI gate parses: per-entry stats
/// plus totals and the raw-equivalent compression ratio.
struct StoreSummary {
    rows: Vec<(StoreEntry, Option<EntryInfo>)>,
    total_bytes: u64,
    /// Raw-equivalent bytes of every entry whose headers parsed.
    raw_bytes: u64,
    /// Actual bytes of those same entries (the ratio's denominator).
    described_bytes: u64,
}

impl StoreSummary {
    fn collect(store: &TraceStore) -> std::io::Result<StoreSummary> {
        let entries = store.entries()?;
        let mut summary = StoreSummary {
            rows: Vec::with_capacity(entries.len()),
            total_bytes: 0,
            raw_bytes: 0,
            described_bytes: 0,
        };
        for entry in entries {
            let info = store.peek(&entry.file).ok();
            summary.total_bytes += entry.bytes;
            if let Some(info) = &info {
                summary.raw_bytes += info.raw_bytes;
                summary.described_bytes += entry.bytes;
            }
            summary.rows.push((entry, info));
        }
        Ok(summary)
    }

    /// Raw-equivalent size over actual size (1.0 for an empty store): how
    /// many times smaller the store is than the same corpus under
    /// `Codec::Raw`.
    fn compression_ratio(&self) -> f64 {
        if self.described_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.described_bytes as f64
        }
    }
}

fn ls(store: &TraceStore, json: bool) -> ExitCode {
    let summary = match StoreSummary::collect(store) {
        Ok(summary) => summary,
        Err(err) => {
            eprintln!("trace ls: cannot read {}: {err}", store.dir().display());
            return ExitCode::FAILURE;
        }
    };
    if json {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"store\":\"{}\",\"entries\":[",
            json_escape(&store.dir().display().to_string())
        ));
        for (i, (entry, info)) in summary.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"bytes\":{}",
                json_escape(&entry.file),
                entry.bytes
            ));
            match info {
                Some(info) => out.push_str(&format!(
                    ",\"codec\":\"{}\",\"trace_version\":{},\"records\":{},\"raw_bytes\":{}}}",
                    info.codec, info.trace_version, info.records, info.raw_bytes
                )),
                None => out.push_str(",\"codec\":null}"),
            }
        }
        out.push_str(&format!(
            "],\"total_bytes\":{},\"raw_bytes\":{},\"compression_ratio\":{:.3}}}",
            summary.total_bytes,
            summary.raw_bytes,
            summary.compression_ratio()
        ));
        println!("{out}");
        return ExitCode::SUCCESS;
    }
    for (entry, info) in &summary.rows {
        let codec = info.map_or("?", |info| info.codec.label());
        println!(
            "{:>10}  {:<13} {}",
            human_bytes(entry.bytes),
            codec,
            entry.file
        );
    }
    println!(
        "{} entr{} in {} ({}; raw-equivalent {}, {:.2}x compression)",
        summary.rows.len(),
        if summary.rows.len() == 1 { "y" } else { "ies" },
        store.dir().display(),
        human_bytes(summary.total_bytes),
        human_bytes(summary.raw_bytes),
        summary.compression_ratio()
    );
    ExitCode::SUCCESS
}

fn recompress(store: &TraceStore, target: Codec) -> ExitCode {
    match store.recompress(target) {
        Ok(report) => {
            for file in &report.converted {
                println!("recompressed {file}");
            }
            for (file, err) in &report.failed {
                eprintln!("FAILED {file}: {err}");
            }
            let ratio = if report.bytes_after > 0 {
                report.bytes_before as f64 / report.bytes_after as f64
            } else {
                1.0
            };
            println!(
                "recompress to {target}: {} of {} entr{} converted ({} skipped), \
                 {} -> {} ({ratio:.2}x)",
                report.converted.len(),
                report.examined,
                if report.examined == 1 { "y" } else { "ies" },
                report.skipped,
                human_bytes(report.bytes_before),
                human_bytes(report.bytes_after),
            );
            if report.failed.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("trace recompress: {err}");
            ExitCode::FAILURE
        }
    }
}

fn verify(store: &TraceStore) -> ExitCode {
    let report = match store.verify() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("trace verify: cannot read {}: {err}", store.dir().display());
            return ExitCode::FAILURE;
        }
    };
    let mut bad = 0usize;
    for (file, outcome) in &report {
        match outcome {
            Ok(()) => println!("OK    {file}"),
            Err(err) => {
                bad += 1;
                eprintln!("BAD   {file}: {err}");
            }
        }
    }
    if bad == 0 {
        println!(
            "{} entr{} verified",
            report.len(),
            if report.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{bad} of {} entr{} failed verification",
            report.len(),
            if report.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

fn gc(store: &TraceStore, max_bytes: u64) -> ExitCode {
    match store.gc(max_bytes) {
        Ok(report) => {
            for file in &report.evicted {
                println!("evicted {file}");
            }
            println!(
                "gc: {} of {} entr{} evicted, {} freed, {} kept (budget {})",
                report.evicted.len(),
                report.examined,
                if report.examined == 1 { "y" } else { "ies" },
                human_bytes(report.freed_bytes),
                human_bytes(report.kept_bytes),
                human_bytes(max_bytes)
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace gc: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The grid the CI exercise records: one dataset, two applications, the full
/// policy roster of the evaluation — two unique streams, 26 cells, Tiny
/// scale so the cold pass stays fast on shared runners.
const EXERCISE_GRID: [PolicyKind; 13] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Rrip,
    PolicyKind::ShipMem,
    PolicyKind::Hawkeye,
    PolicyKind::Leeway,
    PolicyKind::Pin(50),
    PolicyKind::Pin(100),
    PolicyKind::GraspHintsOnly,
    PolicyKind::GraspInsertionOnly,
    PolicyKind::Grasp,
];

fn exercise_campaign() -> Campaign {
    Campaign::new(Scale::Tiny)
        .datasets(&[DatasetKind::Twitter])
        .apps(&[AppKind::PageRank, AppKind::Sssp])
        .policies(&EXERCISE_GRID)
}

fn diff_results(fresh: &CampaignResult, candidate: &CampaignResult, what: &str) -> usize {
    if fresh.len() != candidate.len() {
        eprintln!(
            "{what}: {} cells vs {} in the fresh record",
            candidate.len(),
            fresh.len()
        );
        return 1;
    }
    let mut mismatches = 0usize;
    for (a, b) in fresh.iter().zip(candidate.iter()) {
        if a.cell != b.cell
            || a.result.stats != b.result.stats
            || a.result.app.values != b.result.app.values
            || (a.result.cycles - b.result.cycles).abs() >= 1e-9
        {
            mismatches += 1;
            eprintln!(
                "{what}: {}/{}/{} diverged from the fresh record",
                a.cell.dataset, a.cell.app, a.cell.policy
            );
        }
    }
    mismatches
}

/// The CI gate: a store-served campaign must be bit-identical to a fresh
/// record, and warm passes must actually skip the record phase.
fn exercise(store: TraceStore) -> ExitCode {
    let store = Arc::new(store);
    let streams = 2; // datasets × apps of the exercise grid

    println!("trace exercise: fresh record (no store) ...");
    let fresh = exercise_campaign().run();

    println!(
        "trace exercise: pass 1 against {} (populates on a cold cache) ...",
        store.dir().display()
    );
    let first = exercise_campaign()
        .with_trace_store(Arc::clone(&store))
        .run();
    let after_first = store.stats();
    println!("trace exercise: store after pass 1: {after_first}");

    println!("trace exercise: pass 2 (must be served by the store) ...");
    let second = exercise_campaign()
        .with_trace_store(Arc::clone(&store))
        .run();

    println!("trace exercise: streaming pass (stream_into re-broadcast) ...");
    let streamed = exercise_campaign()
        .streaming()
        .with_trace_store(Arc::clone(&store))
        .run();

    let stats = store.stats();
    println!("trace exercise: store after all passes: {stats}");

    let mut failures = diff_results(&fresh, &first, "pass 1");
    failures += diff_results(&fresh, &second, "pass 2");
    failures += diff_results(&fresh, &streamed, "streaming pass");

    // Pass 2 and the streaming pass must each hit every stream; only pass 1
    // may record (and only on a cold cache — on a warm actions/cache even
    // pass 1 is pure hits, which is the record-skip CI asserts every push).
    let expected_hits = 2 * streams as u64;
    if stats.hits < expected_hits {
        eprintln!(
            "trace exercise: expected at least {expected_hits} store hits, got {} — \
             the record phase was not skipped",
            stats.hits
        );
        failures += 1;
    }
    if stats.misses > streams as u64 {
        eprintln!(
            "trace exercise: {} misses for {streams} unique streams — warm passes re-recorded",
            stats.misses
        );
        failures += 1;
    }
    if stats.corrupt > 0 {
        eprintln!(
            "trace exercise: {} corrupt entr(ies) encountered",
            stats.corrupt
        );
        failures += 1;
    }

    if failures == 0 {
        println!(
            "trace exercise OK: {} cells x 3 store-served passes bit-identical to the fresh \
             record, {} hit(s), record phase skipped on warm passes",
            fresh.len(),
            stats.hits
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("trace exercise FAILED ({failures} problem(s))");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_size_accepts_suffixes() {
        assert_eq!(parse_size("1024"), Ok(1024));
        assert_eq!(parse_size("512K"), Ok(512 << 10));
        assert_eq!(parse_size("64M"), Ok(64 << 20));
        assert_eq!(parse_size("2g"), Ok(2 << 30));
        assert!(parse_size("nope").is_err());
        assert!(parse_size("").is_err());
        assert!(parse_size("99999999999999999999G").is_err());
    }

    #[test]
    fn parse_args_extracts_flags() {
        let parsed = parse_args(&args(&["gc", "--store", "/tmp/s", "--max-bytes", "64M"]))
            .expect("valid args");
        assert_eq!(parsed.command, "gc");
        assert_eq!(parsed.store.as_deref(), Some("/tmp/s"));
        assert_eq!(parsed.max_bytes, Some(64 << 20));
        assert!(!parsed.json);

        let parsed = parse_args(&args(&["ls"])).expect("bare subcommand");
        assert_eq!(parsed.command, "ls");
        assert_eq!(parsed.store, None);
        assert_eq!(parsed.max_bytes, None);
        assert_eq!(parsed.codec, None);

        let parsed = parse_args(&args(&["ls", "--json"])).expect("json flag");
        assert!(parsed.json);

        let parsed = parse_args(&args(&["recompress", "--codec", "raw"])).expect("codec flag");
        assert_eq!(parsed.codec, Some(Codec::Raw));
        let parsed =
            parse_args(&args(&["recompress", "--codec", "delta-varint"])).expect("codec flag");
        assert_eq!(parsed.codec, Some(Codec::DeltaVarint));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["ls", "--store"])).is_err());
        assert!(parse_args(&args(&["gc", "--max-bytes"])).is_err());
        assert!(parse_args(&args(&["ls", "--what"])).is_err());
        assert!(parse_args(&args(&["recompress", "--codec"])).is_err());
        assert!(parse_args(&args(&["recompress", "--codec", "zstd"])).is_err());
    }

    #[test]
    fn json_escaping_covers_the_awkward_characters() {
        assert_eq!(json_escape("plain-name.v2.trace"), "plain-name.v2.trace");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn human_bytes_picks_sane_units() {
        assert_eq!(human_bytes(17), "17 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 << 20), "3.0 MiB");
        assert_eq!(human_bytes(5 << 30), "5.0 GiB");
    }

    #[test]
    fn ls_verify_gc_recompress_run_against_a_real_store() {
        // Plumbing smoke test: an empty store lists (text and JSON),
        // verifies, recompresses and gcs cleanly through the command
        // functions, and the JSON summary of an empty store reports a
        // neutral 1.0 ratio.
        let dir =
            std::env::temp_dir().join(format!("grasp-xtask-trace-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = TraceStore::open(&dir).expect("store opens");
        assert_eq!(ls(&store, false), ExitCode::SUCCESS);
        assert_eq!(ls(&store, true), ExitCode::SUCCESS);
        assert_eq!(verify(&store), ExitCode::SUCCESS);
        assert_eq!(recompress(&store, Codec::DeltaVarint), ExitCode::SUCCESS);
        assert_eq!(gc(&store, 0), ExitCode::SUCCESS);
        let summary = StoreSummary::collect(&store).expect("summary");
        assert_eq!(summary.total_bytes, 0);
        assert!((summary.compression_ratio() - 1.0).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatch_detection_counts_divergent_cells() {
        // diff_results is the exercise gate's core; a result set must always
        // be identical to itself.
        let results = Campaign::new(Scale::Tiny)
            .datasets(&[DatasetKind::Twitter])
            .apps(&[AppKind::PageRank])
            .policies(&[PolicyKind::Lru])
            .run();
        assert_eq!(diff_results(&results, &results, "self"), 0);
    }
}
