//! `cargo xtask serve` / `cargo xtask client` — the command-line face of
//! the campaign service daemon (`grasp-serve`).
//!
//! * `serve` binds the daemon on a Unix socket and serves until a client
//!   sends `shutdown`.
//! * `client` submits one request and prints every response frame as a
//!   line of JSON on stdout — cells arrive (and print) in completion
//!   order, so a long grid streams incrementally. The exit code is
//!   non-zero when the daemon answers with an error frame.

use grasp_core::json::Json;
use grasp_core::spec::CampaignSpec;
use grasp_serve::{client, protocol, ServeConfig, Server};
use std::io::Read;
use std::path::Path;
use std::process::ExitCode;

pub fn usage() -> &'static str {
    "usage: cargo xtask serve  --socket <path> [--store <dir>] [--store-budget <N[K|M|G]>]\n\
     \u{20}                      [--max-campaigns <n>] [--queue-depth <n>]\n\
     usage: cargo xtask client --socket <path> <run <spec.json|-> | ping | stats | shutdown>\n\
     \n\
     serve       run the campaign daemon: clients submit CampaignSpec grids over\n\
     \u{20}            the socket, recordings are single-flighted across all of them\n\
     client      submit one request; response frames stream to stdout as JSON lines\n\
     \u{20}            (run reads the spec from a file, or stdin with `-`)"
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("{message}");
    ExitCode::from(2)
}

pub fn serve(args: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut config_store = None;
    let mut store_budget = None;
    let mut max_campaigns = None;
    let mut queue_depth = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let flag = arg.as_str();
        if !matches!(
            flag,
            "--socket" | "--store" | "--store-budget" | "--max-campaigns" | "--queue-depth"
        ) {
            return fail(format!("serve: unknown argument {flag}\n{}", usage()));
        }
        let Some(raw) = iter.next() else {
            return fail(format!("serve: {flag} needs an argument"));
        };
        match flag {
            "--socket" => socket = Some(raw.clone()),
            "--store" => config_store = Some(raw.clone()),
            "--store-budget" => match crate::trace::parse_size(raw) {
                Ok(bytes) => store_budget = Some(bytes),
                Err(err) => return fail(format!("serve: {err}")),
            },
            "--max-campaigns" => match raw.parse() {
                Ok(n) => max_campaigns = Some(n),
                Err(_) => return fail("serve: --max-campaigns needs a number"),
            },
            "--queue-depth" => match raw.parse() {
                Ok(n) => queue_depth = Some(n),
                Err(_) => return fail("serve: --queue-depth needs a number"),
            },
            _ => unreachable!("flag vetted above"),
        }
    }
    let Some(socket) = socket else {
        return fail(format!("serve: --socket is required\n{}", usage()));
    };
    let mut config = ServeConfig::new(socket);
    config.store = config_store.map(Into::into);
    config.store_budget = store_budget;
    if let Some(n) = max_campaigns {
        config.max_campaigns = n;
    }
    if let Some(n) = queue_depth {
        config.queue_depth = n;
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(err) => return fail(format!("serve: cannot start: {err}")),
    };
    eprintln!("grasp-serve: listening on {}", server.socket().display());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => fail(format!("serve: {err}")),
    }
}

pub fn client(args: &[String]) -> ExitCode {
    let mut socket: Option<String> = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => match iter.next() {
                Some(path) => socket = Some(path.clone()),
                None => return fail("client: --socket needs an argument"),
            },
            _ => rest.push(arg),
        }
    }
    let Some(socket) = socket else {
        return fail(format!("client: --socket is required\n{}", usage()));
    };
    let request = match rest.split_first() {
        Some((cmd, tail)) => match (cmd.as_str(), tail) {
            ("run", [spec_path]) => match read_spec(spec_path) {
                Ok(spec) => protocol::run_request(&spec),
                Err(err) => return fail(format!("client: {err}")),
            },
            ("ping", []) => protocol::simple_request("ping"),
            ("stats", []) => protocol::simple_request("stats"),
            ("shutdown", []) => protocol::simple_request("shutdown"),
            _ => return fail(format!("client: unknown request\n{}", usage())),
        },
        None => return fail(format!("client: a request is required\n{}", usage())),
    };
    let mut failed = false;
    let outcome = client::request_streaming(Path::new(&socket), &request, &mut |frame| {
        println!("{frame}");
        if frame.get("type").and_then(Json::as_str) == Some("error") {
            failed = true;
        }
    });
    match outcome {
        Ok(()) if !failed => ExitCode::SUCCESS,
        Ok(()) => ExitCode::FAILURE,
        Err(err) => fail(format!("client: {err}")),
    }
}

/// Reads a spec document from a file path, or stdin when the path is `-`.
fn read_spec(path: &str) -> Result<CampaignSpec, String> {
    let text = if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        text
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    CampaignSpec::from_json(&text).map_err(|e| format!("{e}"))
}
