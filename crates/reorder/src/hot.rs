//! Hot-vertex threshold and hot-region geometry.
//!
//! The paper classifies a vertex as hot when its degree is at least the
//! average degree (Sec. II-A). After skew-aware reordering the hot vertices
//! occupy a prefix of the vertex ID space; the extent of that prefix (in
//! elements and in bytes of the Property Array) is what GRASP's software side
//! communicates to hardware through the Address Bound Registers.

use grasp_graph::types::Direction;
use grasp_graph::GraphView;
use serde::{Deserialize, Serialize};

/// The degree threshold above which a vertex counts as hot: the average
/// degree of the graph (edges / vertices).
pub fn hot_threshold(graph: &dyn GraphView) -> f64 {
    graph.edge_count() as f64 / graph.vertex_count() as f64
}

/// Geometry of the hot region of a (reordered) graph's Property Array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotRegion {
    hot_vertex_count: usize,
    prefix_covering_hot: usize,
    vertex_count: usize,
    element_bytes: usize,
}

impl HotRegion {
    /// Analyzes `graph` using the degree in `direction` for hotness and
    /// `element_bytes` as the per-vertex Property Array element size.
    ///
    /// `prefix_covering_hot` is the smallest prefix of the ID space that
    /// contains every hot vertex — equal to `hot_vertex_count` when the graph
    /// has been reordered by a segregating technique, potentially as large as
    /// the whole graph otherwise.
    pub fn analyze(graph: &dyn GraphView, direction: Direction, element_bytes: usize) -> Self {
        let threshold = hot_threshold(graph);
        let mut hot_vertex_count = 0usize;
        let mut last_hot: Option<usize> = None;
        for v in graph.vertices() {
            if graph.degree(v, direction) as f64 >= threshold {
                hot_vertex_count += 1;
                last_hot = Some(v as usize);
            }
        }
        Self {
            hot_vertex_count,
            prefix_covering_hot: last_hot.map_or(0, |v| v + 1),
            vertex_count: graph.vertex_count(),
            element_bytes,
        }
    }

    /// Number of hot vertices.
    pub fn hot_vertex_count(&self) -> usize {
        self.hot_vertex_count
    }

    /// Length of the smallest ID prefix containing every hot vertex.
    pub fn prefix_covering_hot(&self) -> usize {
        self.prefix_covering_hot
    }

    /// Total number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Size in bytes of the Property Array region holding the hot prefix.
    pub fn hot_prefix_bytes(&self) -> usize {
        self.prefix_covering_hot * self.element_bytes
    }

    /// Size in bytes of the full Property Array.
    pub fn total_bytes(&self) -> usize {
        self.vertex_count * self.element_bytes
    }

    /// How tightly the hot vertices are packed into the prefix: 1.0 means the
    /// prefix contains only hot vertices (perfect segregation), values near
    /// `hot_vertex_count / vertex_count` mean no segregation at all.
    pub fn packing_efficiency(&self) -> f64 {
        if self.prefix_covering_hot == 0 {
            1.0
        } else {
            self.hot_vertex_count as f64 / self.prefix_covering_hot as f64
        }
    }

    /// Returns `true` if the hot prefix would fit entirely in a cache of
    /// `cache_bytes` bytes.
    pub fn fits_in_cache(&self, cache_bytes: usize) -> bool {
        self.hot_prefix_bytes() <= cache_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply, DegreeBasedGrouping, ReorderTechnique};
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::Csr;

    #[test]
    fn threshold_is_average_degree() {
        let g = Csr::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!((hot_threshold(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packing_improves_after_reordering() {
        let g = Rmat::new(10, 8).generate(3);
        let before = HotRegion::analyze(&g, Direction::Out, 8);
        let perm = DegreeBasedGrouping::default().compute(&g, Direction::Out);
        let after = HotRegion::analyze(&apply::relabel(&g, &perm), Direction::Out, 8);
        assert_eq!(before.hot_vertex_count(), after.hot_vertex_count());
        assert!(after.packing_efficiency() >= before.packing_efficiency());
        // After DBG the hot prefix is exactly the hot vertices.
        assert!((after.packing_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(after.prefix_covering_hot(), after.hot_vertex_count());
    }

    #[test]
    fn byte_accounting() {
        let g = Rmat::new(8, 8).generate(1);
        let r = HotRegion::analyze(&g, Direction::Out, 8);
        assert_eq!(r.total_bytes(), g.vertex_count() * 8);
        assert!(r.hot_prefix_bytes() <= r.total_bytes());
        assert!(r.fits_in_cache(usize::MAX));
        assert!(!r.fits_in_cache(0) || r.hot_prefix_bytes() == 0);
    }

    #[test]
    fn graph_with_no_hot_vertices_possible() {
        // A single-edge graph over many vertices: average degree is tiny but
        // non-zero, vertex 0 is hot.
        let mut el = grasp_graph::EdgeList::new(100);
        el.push(0, 1).unwrap();
        let g = Csr::from_edge_list(&el).unwrap();
        let r = HotRegion::analyze(&g, Direction::Out, 8);
        assert_eq!(r.hot_vertex_count(), 1);
        assert_eq!(r.prefix_covering_hot(), 1);
    }
}
