//! Gorder-lite: a bounded-work approximation of Gorder (Wei et al., SIGMOD'16).
//!
//! Gorder greedily appends to the new ordering the vertex with the highest
//! *affinity* to a sliding window of the `w` most recently placed vertices,
//! where affinity counts shared edges (both directions). The full algorithm
//! maintains a priority queue over all unplaced vertices and is orders of
//! magnitude more expensive than the skew-aware techniques — which is exactly
//! the property the paper uses it to demonstrate (Fig. 10a): despite producing
//! good orderings, its reordering cost dwarfs the application runtime.
//!
//! This implementation follows the published greedy algorithm with a lazy
//! max-heap and an optional number of refinement passes. It is intentionally
//! *not* optimized; its cost relative to [`crate::DegreeBasedGrouping`]
//! mirrors the paper's qualitative finding.

use crate::dbg::DegreeBasedGrouping;
use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;
use std::collections::BinaryHeap;

/// Gorder-lite configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GorderLite {
    window: usize,
    passes: usize,
    compose_dbg: bool,
}

impl GorderLite {
    /// Creates a Gorder-lite instance with the given sliding-window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        Self {
            window,
            passes: 1,
            compose_dbg: false,
        }
    }

    /// Sets the number of greedy passes (default 1). Additional passes re-run
    /// the greedy ordering seeded by the previous pass, increasing cost —
    /// mirroring the high cost of the real Gorder implementation.
    #[must_use]
    pub fn with_passes(mut self, passes: usize) -> Self {
        assert!(passes > 0, "passes must be non-zero");
        self.passes = passes;
        self
    }

    /// Composes the Gorder ordering with a DBG pass, the configuration the
    /// paper calls "Gorder(+DBG)": it retains most of the Gorder ordering
    /// while segregating hot vertices so that GRASP's region classification
    /// applies.
    #[must_use]
    pub fn followed_by_dbg(mut self) -> Self {
        self.compose_dbg = true;
        self
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// One greedy ordering pass over `graph`, considering both edge
    /// directions for affinity.
    fn greedy_pass(&self, graph: &dyn GraphView, seed_order: &[VertexId]) -> Vec<VertexId> {
        let n = graph.vertex_count();
        let mut placed = vec![false; n];
        let mut priority = vec![0u32; n];
        let mut heap: BinaryHeap<(u32, std::cmp::Reverse<VertexId>)> = BinaryHeap::new();
        let mut order: Vec<VertexId> = Vec::with_capacity(n);
        let mut window: std::collections::VecDeque<VertexId> =
            std::collections::VecDeque::with_capacity(self.window + 1);

        // Seed the heap so that every vertex is eventually considered even if
        // it is unreachable from the current window.
        let mut seed_cursor = 0usize;

        while order.len() < n {
            // Pick the unplaced vertex with the highest priority; fall back to
            // the seed order when the heap holds only stale entries.
            let next = loop {
                match heap.pop() {
                    Some((p, std::cmp::Reverse(v))) => {
                        if !placed[v as usize] && priority[v as usize] == p {
                            break Some(v);
                        }
                    }
                    None => break None,
                }
            };
            let v = match next {
                Some(v) => v,
                None => {
                    // Advance the seed cursor to the next unplaced vertex.
                    while seed_cursor < n && placed[seed_order[seed_cursor] as usize] {
                        seed_cursor += 1;
                    }
                    if seed_cursor >= n {
                        break;
                    }
                    seed_order[seed_cursor]
                }
            };

            placed[v as usize] = true;
            order.push(v);
            window.push_back(v);

            // Entering the window: bump affinity of v's neighbours.
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if !placed[u as usize] {
                    priority[u as usize] += 1;
                    heap.push((priority[u as usize], std::cmp::Reverse(u)));
                }
            }

            // Leaving the window: decay affinity contributed by the evicted vertex.
            if window.len() > self.window {
                let gone = window.pop_front().expect("window is non-empty");
                for &u in graph
                    .out_neighbors(gone)
                    .iter()
                    .chain(graph.in_neighbors(gone))
                {
                    if !placed[u as usize] && priority[u as usize] > 0 {
                        priority[u as usize] -= 1;
                        heap.push((priority[u as usize], std::cmp::Reverse(u)));
                    }
                }
            }
        }
        order
    }
}

impl Default for GorderLite {
    /// Default window of 8 (within the 4–16 range explored by the Gorder
    /// paper) and a single pass.
    fn default() -> Self {
        Self::new(8)
    }
}

impl ReorderTechnique for GorderLite {
    fn compute(&self, graph: &dyn GraphView, direction: Direction) -> Permutation {
        let n = graph.vertex_count();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        for _ in 0..self.passes {
            order = self.greedy_pass(graph, &order);
        }
        let gorder_perm =
            Permutation::from_order(&order).expect("greedy pass visits every vertex exactly once");
        if self.compose_dbg {
            // Apply DBG on top of the Gorder ordering, as the paper does to
            // make Gorder compatible with GRASP.
            let intermediate = crate::apply::relabel(graph, &gorder_perm);
            let dbg_perm = DegreeBasedGrouping::default().compute(&intermediate, direction);
            gorder_perm.then(&dbg_perm)
        } else {
            gorder_perm
        }
    }

    fn name(&self) -> &'static str {
        if self.compose_dbg {
            "Gorder(+DBG)"
        } else {
            "Gorder"
        }
    }

    fn segregates_hot_vertices(&self) -> bool {
        // Plain Gorder orders by affinity, not degree; only the +DBG variant
        // guarantees a hot prefix.
        self.compose_dbg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hot::hot_threshold;
    use grasp_graph::generators::{GraphGenerator, Rmat, SmallWorld};

    #[test]
    fn produces_a_valid_permutation() {
        let g = Rmat::new(8, 8).generate(6);
        let perm = GorderLite::default().compute(&g, Direction::Out);
        assert!(perm.is_valid());
        assert_eq!(perm.len(), g.vertex_count());
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn zero_window_panics() {
        let _ = GorderLite::new(0);
    }

    #[test]
    fn improves_neighbour_locality_on_structured_graphs() {
        // On a randomly-shuffled ring lattice, Gorder should bring neighbours
        // closer together in ID space than a random order.
        let g = SmallWorld::new(512, 6, 0.0).generate(1);
        // Shuffle the IDs first so there is locality to recover.
        let mut rng = grasp_graph::prng::Xoshiro256::seed_from_u64(99);
        let mut shuffled: Vec<VertexId> = (0..g.vertex_count() as u32).collect();
        rng.shuffle(&mut shuffled);
        let shuffle_perm = Permutation::from_new_ids(shuffled).unwrap();
        let scrambled = crate::apply::relabel(&g, &shuffle_perm);

        let avg_gap = |graph: &dyn GraphView| -> f64 {
            let mut total = 0u64;
            let mut count = 0u64;
            for v in graph.vertices() {
                for &u in graph.out_neighbors(v) {
                    total += u64::from(v.abs_diff(u));
                    count += 1;
                }
            }
            total as f64 / count as f64
        };

        let before = avg_gap(&scrambled);
        let perm = GorderLite::new(8).compute(&scrambled, Direction::Out);
        let after = avg_gap(&crate::apply::relabel(&scrambled, &perm));
        assert!(
            after < before,
            "expected Gorder to reduce the average ID gap: before {before}, after {after}"
        );
    }

    #[test]
    fn dbg_composition_segregates_hot_vertices() {
        let g = Rmat::new(9, 8).generate(2);
        let technique = GorderLite::default().followed_by_dbg();
        assert!(technique.segregates_hot_vertices());
        let perm = technique.compute(&g, Direction::Out);
        let r = crate::apply::relabel(&g, &perm);
        let region = crate::hot::HotRegion::analyze(&r, Direction::Out, 8);
        assert!(
            region.packing_efficiency() > 0.95,
            "hot vertices should form a prefix, packing {}",
            region.packing_efficiency()
        );
        let _ = hot_threshold(&g);
    }

    #[test]
    fn multiple_passes_still_valid() {
        let g = Rmat::new(7, 4).generate(8);
        let perm = GorderLite::new(4)
            .with_passes(2)
            .compute(&g, Direction::Out);
        assert!(perm.is_valid());
    }

    #[test]
    fn names_reflect_composition() {
        assert_eq!(GorderLite::default().name(), "Gorder");
        assert_eq!(
            GorderLite::default().followed_by_dbg().name(),
            "Gorder(+DBG)"
        );
    }
}
