//! Degree-Based Grouping (Faldu, Diamond, Grot — IISWC'19).

use crate::hot::hot_threshold;
use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// Degree-Based Grouping (DBG).
///
/// DBG coarsely partitions vertices into a small number of groups whose
/// boundaries are geometric multiples of the average degree, places groups in
/// descending hotness order, and preserves the original relative order
/// **within** each group. Unlike [`crate::Sort`] and [`crate::HubSort`], DBG
/// does not sort at all, so it largely preserves the community structure
/// present in the original vertex order — the reason the paper uses it as the
/// default software baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeBasedGrouping {
    /// Number of hot groups above the average-degree threshold.
    hot_groups: usize,
    /// Number of cold groups below the average-degree threshold.
    cold_groups: usize,
}

impl DegreeBasedGrouping {
    /// Creates a DBG instance with the given number of hot and cold groups.
    ///
    /// Group boundaries are `avg * 2^k` for hot groups and `avg / 2^k` for
    /// cold groups, matching the IISWC'19 description of ~8 total groups.
    ///
    /// # Panics
    ///
    /// Panics if either group count is zero.
    pub fn new(hot_groups: usize, cold_groups: usize) -> Self {
        assert!(hot_groups > 0, "hot_groups must be non-zero");
        assert!(cold_groups > 0, "cold_groups must be non-zero");
        Self {
            hot_groups,
            cold_groups,
        }
    }

    /// Assigns a group index to a degree; group 0 is the hottest.
    fn group_of(&self, degree: u64, avg: f64) -> usize {
        let d = degree as f64;
        if d >= avg {
            // Hot side: group k covers [avg * 2^(hot_groups-1-k), ...).
            // The hottest group (0) is unbounded above.
            for k in 0..self.hot_groups {
                let boundary = avg * (1u64 << (self.hot_groups - 1 - k)) as f64;
                if d >= boundary {
                    return k;
                }
            }
            self.hot_groups - 1
        } else {
            // Cold side: group hot_groups + k covers degrees in
            // [avg / 2^(k+1), avg / 2^k); the last cold group catches the rest
            // (including degree 0).
            for k in 0..self.cold_groups {
                let boundary = avg / (1u64 << (k + 1)) as f64;
                if d >= boundary {
                    return self.hot_groups + k;
                }
            }
            self.hot_groups + self.cold_groups - 1
        }
    }

    /// Total number of groups.
    pub fn group_count(&self) -> usize {
        self.hot_groups + self.cold_groups
    }
}

impl Default for DegreeBasedGrouping {
    /// Default configuration: 4 hot groups + 4 cold groups (8 total),
    /// matching the published DBG configuration.
    fn default() -> Self {
        Self::new(4, 4)
    }
}

impl ReorderTechnique for DegreeBasedGrouping {
    fn compute(&self, graph: &dyn GraphView, direction: Direction) -> Permutation {
        let avg = hot_threshold(graph);
        let groups = self.group_count();
        let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); groups];
        for v in graph.vertices() {
            let g = self.group_of(graph.degree(v, direction), avg);
            buckets[g].push(v);
        }
        let order: Vec<VertexId> = buckets.into_iter().flatten().collect();
        Permutation::from_order(&order).expect("every vertex lands in exactly one group")
    }

    fn name(&self) -> &'static str {
        "DBG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn group_assignment_boundaries() {
        let dbg = DegreeBasedGrouping::new(3, 3);
        let avg = 10.0;
        // Hot side: >= 40 -> 0, >= 20 -> 1, >= 10 -> 2.
        assert_eq!(dbg.group_of(100, avg), 0);
        assert_eq!(dbg.group_of(40, avg), 0);
        assert_eq!(dbg.group_of(25, avg), 1);
        assert_eq!(dbg.group_of(10, avg), 2);
        // Cold side: >= 5 -> 3, >= 2.5 -> 4, rest -> 5.
        assert_eq!(dbg.group_of(7, avg), 3);
        assert_eq!(dbg.group_of(3, avg), 4);
        assert_eq!(dbg.group_of(1, avg), 5);
        assert_eq!(dbg.group_of(0, avg), 5);
    }

    #[test]
    fn groups_are_ordered_hot_to_cold() {
        let g = Rmat::new(9, 8).generate(2);
        let perm = DegreeBasedGrouping::default().compute(&g, Direction::Out);
        let reordered = crate::apply::relabel(&g, &perm);
        let dbg = DegreeBasedGrouping::default();
        let avg = hot_threshold(&g);
        let mut last_group = 0usize;
        for v in reordered.vertices() {
            let group = dbg.group_of(reordered.out_degree(v), avg);
            assert!(
                group >= last_group,
                "groups must be non-decreasing over new IDs"
            );
            last_group = group;
        }
    }

    #[test]
    fn order_within_group_is_preserved() {
        let g = Rmat::new(8, 8).generate(9);
        let dbg = DegreeBasedGrouping::default();
        let avg = hot_threshold(&g);
        let perm = dbg.compute(&g, Direction::Out);
        // For every pair of vertices in the same group, the original order
        // must be preserved.
        let mut per_group: std::collections::HashMap<usize, Vec<u32>> = Default::default();
        for v in g.vertices() {
            per_group
                .entry(dbg.group_of(g.out_degree(v), avg))
                .or_default()
                .push(v);
        }
        for members in per_group.values() {
            for pair in members.windows(2) {
                assert!(perm.new_id(pair[0]) < perm.new_id(pair[1]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "hot_groups must be non-zero")]
    fn zero_hot_groups_panics() {
        let _ = DegreeBasedGrouping::new(0, 4);
    }

    #[test]
    fn default_has_eight_groups() {
        assert_eq!(DegreeBasedGrouping::default().group_count(), 8);
    }
}
