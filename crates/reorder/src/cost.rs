//! Reordering cost accounting.
//!
//! Fig. 10a of the paper reports the *net* speed-up of each reordering
//! technique: application speed-up **after accounting for the reordering
//! cost**. [`TimedReorder`] wraps any [`ReorderTechnique`] and measures the
//! wall-clock time spent computing and applying the permutation so the bench
//! harness can charge it against the application runtime.

use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::Direction;
use grasp_graph::{Csr, GraphView};
use std::time::{Duration, Instant};

/// The result of a timed reordering: the permutation, the relabelled graph
/// and the time it took to produce them.
#[derive(Debug, Clone)]
pub struct ReorderOutcome {
    /// Old-ID → new-ID mapping.
    pub permutation: Permutation,
    /// The relabelled graph.
    pub graph: Csr,
    /// Time spent computing the permutation.
    pub compute_time: Duration,
    /// Time spent rebuilding the CSR under the permutation.
    pub apply_time: Duration,
}

impl ReorderOutcome {
    /// Total reordering cost (compute + apply).
    pub fn total_time(&self) -> Duration {
        self.compute_time + self.apply_time
    }
}

/// Wraps a reordering technique and measures its cost.
#[derive(Debug)]
pub struct TimedReorder<T> {
    technique: T,
}

impl<T: ReorderTechnique> TimedReorder<T> {
    /// Creates a timed wrapper around `technique`.
    pub fn new(technique: T) -> Self {
        Self { technique }
    }

    /// Borrow the wrapped technique.
    pub fn technique(&self) -> &T {
        &self.technique
    }

    /// Runs the technique on `graph` and returns the outcome together with
    /// wall-clock timings.
    pub fn run(&self, graph: &dyn GraphView, direction: Direction) -> ReorderOutcome {
        let start = Instant::now();
        let permutation = self.technique.compute(graph, direction);
        let compute_time = start.elapsed();
        let start = Instant::now();
        let relabelled = crate::apply::relabel(graph, &permutation);
        let apply_time = start.elapsed();
        ReorderOutcome {
            permutation,
            graph: relabelled,
            compute_time,
            apply_time,
        }
    }
}

/// Runs a boxed technique (used by the bench harness which iterates over
/// [`crate::TechniqueKind`]).
pub fn run_boxed(
    technique: &dyn ReorderTechnique,
    graph: &dyn GraphView,
    direction: Direction,
) -> ReorderOutcome {
    let start = Instant::now();
    let permutation = technique.compute(graph, direction);
    let compute_time = start.elapsed();
    let start = Instant::now();
    let relabelled = crate::apply::relabel(graph, &permutation);
    let apply_time = start.elapsed();
    ReorderOutcome {
        permutation,
        graph: relabelled,
        compute_time,
        apply_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegreeBasedGrouping, GorderLite, Identity};
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn timed_run_produces_consistent_outcome() {
        let g = Rmat::new(8, 8).generate(3);
        let outcome = TimedReorder::new(DegreeBasedGrouping::default()).run(&g, Direction::Out);
        assert!(outcome.permutation.is_valid());
        assert_eq!(outcome.graph.vertex_count(), g.vertex_count());
        assert_eq!(outcome.graph.edge_count(), g.edge_count());
        assert!(outcome.total_time() >= outcome.compute_time);
    }

    #[test]
    fn identity_is_cheapest() {
        // Not a strict timing assertion (timers are noisy), just that the
        // identity technique runs and produces the same graph.
        let g = Rmat::new(8, 8).generate(3);
        let outcome = TimedReorder::new(Identity).run(&g, Direction::Out);
        assert!(outcome.permutation.is_identity());
        for v in g.vertices() {
            assert_eq!(outcome.graph.out_neighbors(v), g.out_neighbors(v));
        }
    }

    #[test]
    fn gorder_costs_more_than_dbg() {
        // Qualitative cost ordering that Fig. 10a depends on. Use a graph
        // large enough for the difference to dominate timer noise.
        let g = Rmat::new(12, 8).generate(3);
        let dbg = TimedReorder::new(DegreeBasedGrouping::default()).run(&g, Direction::Out);
        let gorder = TimedReorder::new(GorderLite::default()).run(&g, Direction::Out);
        assert!(
            gorder.compute_time > dbg.compute_time,
            "gorder {:?} should cost more than dbg {:?}",
            gorder.compute_time,
            dbg.compute_time
        );
    }

    #[test]
    fn run_boxed_matches_typed_run() {
        let g = Rmat::new(7, 4).generate(1);
        let boxed: Box<dyn ReorderTechnique> = Box::new(DegreeBasedGrouping::default());
        let outcome = run_boxed(boxed.as_ref(), &g, Direction::Out);
        let typed = TimedReorder::new(DegreeBasedGrouping::default()).run(&g, Direction::Out);
        assert_eq!(outcome.permutation, typed.permutation);
    }
}
