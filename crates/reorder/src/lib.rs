//! # grasp-reorder — skew-aware vertex reordering
//!
//! GRASP (HPCA'20) relies on lightweight, skew-aware software reordering to
//! segregate hot vertices into a contiguous region at the start of the
//! Property Array (Sec. III of the paper). This crate implements the
//! reordering techniques evaluated by the paper:
//!
//! * [`Sort`] — full degree-descending sort.
//! * [`HubSort`] — sorts only the hot vertices, preserving the relative order
//!   of cold vertices (Zhang et al., "Making caches work for graph
//!   analytics").
//! * [`DegreeBasedGrouping`] (DBG) — coarse degree-based bucketing that keeps
//!   the original order within each bucket, preserving community structure
//!   (Faldu et al., IISWC'19).
//! * [`GorderLite`] — a bounded-work approximation of Gorder (Wei et al.,
//!   SIGMOD'16), the expensive structure-aware baseline.
//! * [`Identity`] — no reordering (the paper's "no reordering" baseline).
//!
//! Each technique produces a [`Permutation`] (old ID → new ID). Applying the
//! permutation with [`apply::relabel`] yields a graph in which vertex IDs are
//! ordered hottest-first, which is exactly the property GRASP's
//! Address Bound Registers exploit.
//!
//! ```
//! use grasp_graph::generators::{GraphGenerator, Rmat};
//! use grasp_reorder::{DegreeBasedGrouping, ReorderTechnique, apply};
//! use grasp_graph::types::Direction;
//!
//! let g = Rmat::new(10, 8).generate(1);
//! let dbg = DegreeBasedGrouping::default();
//! let perm = dbg.compute(&g, Direction::Out);
//! let reordered = apply::relabel(&g, &perm);
//! // After reordering, vertex 0 has one of the highest out-degrees.
//! assert!(reordered.out_degree(0) >= reordered.out_degree(reordered.vertex_count() as u32 - 1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apply;
pub mod cost;
pub mod dbg;
pub mod gorder;
pub mod hot;
pub mod hubsort;
pub mod identity;
pub mod perm;
pub mod sort;

pub use apply::relabel;
pub use cost::{ReorderOutcome, TimedReorder};
pub use dbg::DegreeBasedGrouping;
pub use gorder::GorderLite;
pub use hot::HotRegion;
pub use hubsort::HubSort;
pub use identity::Identity;
pub use perm::Permutation;
pub use sort::Sort;

use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// A vertex reordering technique.
///
/// `direction` selects which degree drives hotness: pull-based applications
/// reuse elements proportionally to their **out**-degree, push-based
/// applications to their **in**-degree (Sec. II-C of the paper).
pub trait ReorderTechnique: std::fmt::Debug {
    /// Computes a permutation (old vertex ID → new vertex ID) for `graph`.
    fn compute(&self, graph: &dyn GraphView, direction: Direction) -> Permutation;

    /// Short name used in reports ("Sort", "HubSort", "DBG", ...).
    fn name(&self) -> &'static str;

    /// Whether this technique guarantees that hot vertices end up in a
    /// contiguous region at the start of the ID space (required for GRASP's
    /// region classification to be meaningful).
    fn segregates_hot_vertices(&self) -> bool {
        true
    }
}

/// The set of techniques evaluated in the paper, in the order used by
/// Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TechniqueKind {
    /// No reordering.
    Identity,
    /// Full degree sort.
    Sort,
    /// HubSort.
    HubSort,
    /// Degree-Based Grouping.
    Dbg,
    /// Gorder-lite followed by DBG (the paper's "Gorder(+DBG)" configuration).
    GorderDbg,
}

impl TechniqueKind {
    /// All technique kinds, in evaluation order.
    pub const ALL: [TechniqueKind; 5] = [
        TechniqueKind::Identity,
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
        TechniqueKind::GorderDbg,
    ];

    /// Instantiates the technique with default parameters.
    pub fn instantiate(self) -> Box<dyn ReorderTechnique> {
        match self {
            TechniqueKind::Identity => Box::new(Identity),
            TechniqueKind::Sort => Box::new(Sort),
            TechniqueKind::HubSort => Box::new(HubSort),
            TechniqueKind::Dbg => Box::new(DegreeBasedGrouping::default()),
            TechniqueKind::GorderDbg => Box::new(GorderLite::default().followed_by_dbg()),
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            TechniqueKind::Identity => "Original",
            TechniqueKind::Sort => "Sort",
            TechniqueKind::HubSort => "HubSort",
            TechniqueKind::Dbg => "DBG",
            TechniqueKind::GorderDbg => "Gorder(+DBG)",
        }
    }

    /// Parses a display label ([`TechniqueKind::label`]) back to the kind.
    pub fn from_label(label: &str) -> Option<Self> {
        TechniqueKind::ALL
            .into_iter()
            .find(|technique| technique.label() == label)
    }
}

impl std::fmt::Display for TechniqueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn all_kinds_instantiate_and_produce_valid_permutations() {
        let g = Rmat::new(8, 8).generate(3);
        for kind in TechniqueKind::ALL {
            let technique = kind.instantiate();
            let perm = technique.compute(&g, Direction::Out);
            assert!(perm.is_valid(), "{kind} produced an invalid permutation");
            assert_eq!(perm.len(), g.vertex_count());
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            TechniqueKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), TechniqueKind::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(TechniqueKind::Dbg.to_string(), "DBG");
        assert_eq!(TechniqueKind::GorderDbg.to_string(), "Gorder(+DBG)");
    }
}
