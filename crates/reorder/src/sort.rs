//! Full degree sort.

use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// Reorders vertices by sorting **all** of them in descending degree order.
///
/// Sort achieves perfect segregation of hot vertices but completely destroys
/// any community structure present in the original ordering, which is why the
/// paper finds it inferior to DBG on structure-rich graphs (Sec. V-C).
///
/// The sort is stable: equal-degree vertices keep their original relative
/// order, which both preserves a little structure and keeps the result
/// deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sort;

impl ReorderTechnique for Sort {
    fn compute(&self, graph: &dyn GraphView, direction: Direction) -> Permutation {
        let mut order: Vec<VertexId> = graph.vertices().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v, direction)));
        Permutation::from_order(&order).expect("sorting a permutation yields a permutation")
    }

    fn name(&self) -> &'static str {
        "Sort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::Csr;

    #[test]
    fn degrees_are_monotone_after_sort() {
        let g = Rmat::new(9, 8).generate(5);
        let perm = Sort.compute(&g, Direction::Out);
        let reordered = crate::apply::relabel(&g, &perm);
        let degrees: Vec<u64> = reordered
            .vertices()
            .map(|v| reordered.out_degree(v))
            .collect();
        for w in degrees.windows(2) {
            assert!(w[0] >= w[1], "degrees must be non-increasing");
        }
    }

    #[test]
    fn sort_is_stable_for_equal_degrees() {
        // A graph where vertices 1, 2, 3 all have degree 1: their relative
        // order must be preserved.
        let g = Csr::from_edges([(1, 0), (2, 0), (3, 0), (0, 1)]).unwrap();
        let perm = Sort.compute(&g, Direction::Out);
        // Vertex 0 has out-degree 1 too, so everything has degree 1 except
        // nothing; stable sort keeps 0,1,2,3 order.
        assert!(perm.is_identity());
    }

    #[test]
    fn direction_matters() {
        // Vertex 0 has high out-degree but zero in-degree.
        let g = Csr::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3), (3, 1)]).unwrap();
        let out_perm = Sort.compute(&g, Direction::Out);
        let in_perm = Sort.compute(&g, Direction::In);
        assert_eq!(out_perm.new_id(0), 0, "highest out-degree first");
        assert_ne!(in_perm.new_id(0), 0, "vertex 0 has no in-edges");
    }
}
