//! HubSort (Zhang et al., Big Data'17 — "frequency-based clustering").

use crate::hot::hot_threshold;
use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::{Direction, VertexId};
use grasp_graph::GraphView;

/// HubSort: sorts **hot** vertices (degree ≥ average) in descending degree
/// order at the front of the ID space while preserving the original relative
/// order of cold vertices behind them.
///
/// Compared to [`crate::Sort`], HubSort disturbs the structure of the cold
/// majority far less, at the cost of slightly less precise ordering among the
/// hubs' tail.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubSort;

impl ReorderTechnique for HubSort {
    fn compute(&self, graph: &dyn GraphView, direction: Direction) -> Permutation {
        let threshold = hot_threshold(graph);
        let mut hot: Vec<VertexId> = Vec::new();
        let mut cold: Vec<VertexId> = Vec::new();
        for v in graph.vertices() {
            if graph.degree(v, direction) as f64 >= threshold {
                hot.push(v);
            } else {
                cold.push(v);
            }
        }
        // Hot vertices: descending degree (stable). Cold: original order.
        hot.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v, direction)));
        let order: Vec<VertexId> = hot.into_iter().chain(cold).collect();
        Permutation::from_order(&order).expect("hot/cold split covers every vertex exactly once")
    }

    fn name(&self) -> &'static str {
        "HubSort"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::generators::{GraphGenerator, Rmat};

    #[test]
    fn hot_vertices_occupy_a_prefix() {
        let g = Rmat::new(9, 8).generate(5);
        let threshold = hot_threshold(&g);
        let perm = HubSort.compute(&g, Direction::Out);
        let hot_count = g
            .vertices()
            .filter(|&v| g.out_degree(v) as f64 >= threshold)
            .count();
        for v in g.vertices() {
            let is_hot = g.out_degree(v) as f64 >= threshold;
            let new_id = perm.new_id(v) as usize;
            if is_hot {
                assert!(new_id < hot_count, "hot vertex {v} placed at {new_id}");
            } else {
                assert!(new_id >= hot_count, "cold vertex {v} placed at {new_id}");
            }
        }
    }

    #[test]
    fn cold_vertices_keep_relative_order() {
        let g = Rmat::new(8, 8).generate(1);
        let threshold = hot_threshold(&g);
        let perm = HubSort.compute(&g, Direction::Out);
        let cold: Vec<u32> = g
            .vertices()
            .filter(|&v| (g.out_degree(v) as f64) < threshold)
            .collect();
        for pair in cold.windows(2) {
            assert!(
                perm.new_id(pair[0]) < perm.new_id(pair[1]),
                "cold order must be preserved"
            );
        }
    }

    #[test]
    fn hot_prefix_is_sorted_by_degree() {
        let g = Rmat::new(9, 8).generate(7);
        let perm = HubSort.compute(&g, Direction::In);
        let reordered = crate::apply::relabel(&g, &perm);
        let threshold = hot_threshold(&g);
        let hot_count = g
            .vertices()
            .filter(|&v| g.in_degree(v) as f64 >= threshold)
            .count();
        let degrees: Vec<u64> = (0..hot_count as u32)
            .map(|v| reordered.in_degree(v))
            .collect();
        for w in degrees.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
