//! The no-op reordering.

use crate::perm::Permutation;
use crate::ReorderTechnique;
use grasp_graph::types::Direction;
use grasp_graph::GraphView;

/// Identity "reordering": leaves every vertex where it is.
///
/// Used as the no-reordering software baseline. Note that GRASP's region
/// classification assumes hot vertices are contiguous, so
/// [`ReorderTechnique::segregates_hot_vertices`] returns `false` here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl ReorderTechnique for Identity {
    fn compute(&self, graph: &dyn GraphView, _direction: Direction) -> Permutation {
        Permutation::identity(graph.vertex_count())
    }

    fn name(&self) -> &'static str {
        "Original"
    }

    fn segregates_hot_vertices(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::Csr;

    #[test]
    fn identity_is_identity() {
        let g = Csr::from_edges([(0, 1), (1, 2)]).unwrap();
        let p = Identity.compute(&g, Direction::Out);
        assert!(p.is_identity());
        assert!(!Identity.segregates_hot_vertices());
    }
}
