//! Vertex permutations.

use grasp_graph::types::VertexId;
use serde::{Deserialize, Serialize};

/// A bijective mapping from old vertex IDs to new vertex IDs.
///
/// `perm.new_id(old)` returns the vertex's position after reordering. The
/// inverse direction is available through [`Permutation::inverse`].
///
/// ```
/// use grasp_reorder::Permutation;
/// let p = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.new_id(0), 2);
/// let inv = p.inverse();
/// assert_eq!(inv.new_id(2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    new_of_old: Vec<VertexId>,
}

impl Permutation {
    /// The identity permutation over `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as VertexId).collect(),
        }
    }

    /// Builds a permutation from a vector where entry `old` holds the new ID.
    ///
    /// Returns `None` if the vector is not a permutation of `0..len`.
    pub fn from_new_ids(new_of_old: Vec<VertexId>) -> Option<Self> {
        let p = Self { new_of_old };
        if p.is_valid() {
            Some(p)
        } else {
            None
        }
    }

    /// Builds a permutation from a *rank ordering*: `order[k]` is the old
    /// vertex ID that should receive new ID `k`.
    ///
    /// Returns `None` if `order` is not a permutation of `0..len`.
    pub fn from_order(order: &[VertexId]) -> Option<Self> {
        let n = order.len();
        let mut new_of_old = vec![VertexId::MAX; n];
        for (new_id, &old_id) in order.iter().enumerate() {
            let slot = new_of_old.get_mut(old_id as usize)?;
            if *slot != VertexId::MAX {
                return None; // duplicate
            }
            *slot = new_id as VertexId;
        }
        Some(Self { new_of_old })
    }

    /// Number of vertices covered by the permutation.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Returns `true` if the permutation covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New ID assigned to `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    #[inline]
    pub fn new_id(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// Borrowed view of the mapping (index = old ID, value = new ID).
    pub fn as_slice(&self) -> &[VertexId] {
        &self.new_of_old
    }

    /// Verifies that the mapping is a bijection over `0..len`.
    pub fn is_valid(&self) -> bool {
        let n = self.new_of_old.len();
        let mut seen = vec![false; n];
        for &new in &self.new_of_old {
            let Some(slot) = seen.get_mut(new as usize) else {
                return false;
            };
            if *slot {
                return false;
            }
            *slot = true;
        }
        true
    }

    /// Returns `true` if this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(old, &new)| old as VertexId == new)
    }

    /// Returns the inverse permutation (new ID → old ID).
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0 as VertexId; self.new_of_old.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        Self { new_of_old: inv }
    }

    /// Composes two permutations: the result maps `old` to
    /// `second.new_id(self.new_id(old))`, i.e. `self` is applied first.
    ///
    /// # Panics
    ///
    /// Panics if the permutations have different lengths.
    pub fn then(&self, second: &Permutation) -> Self {
        assert_eq!(
            self.len(),
            second.len(),
            "cannot compose permutations of different lengths"
        );
        Self {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&mid| second.new_id(mid))
                .collect(),
        }
    }

    /// Permutes a slice of per-vertex data: element at old index `v` moves to
    /// new index `new_id(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()`.
    pub fn permute<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "data length must match permutation");
        let mut out: Vec<T> = data.to_vec();
        for (old, item) in data.iter().enumerate() {
            out[self.new_of_old[old] as usize] = item.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let p = Permutation::identity(5);
        assert!(p.is_valid());
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert_eq!(p.new_id(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_new_ids_rejects_non_bijections() {
        assert!(Permutation::from_new_ids(vec![0, 0, 1]).is_none());
        assert!(Permutation::from_new_ids(vec![0, 5, 1]).is_none());
        assert!(Permutation::from_new_ids(vec![2, 0, 1]).is_some());
    }

    #[test]
    fn from_order_builds_inverse_mapping() {
        // order says: new 0 <- old 2, new 1 <- old 0, new 2 <- old 1
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.new_id(2), 0);
        assert_eq!(p.new_id(0), 1);
        assert_eq!(p.new_id(1), 2);
        assert!(Permutation::from_order(&[0, 0, 1]).is_none());
        assert!(Permutation::from_order(&[0, 3, 1]).is_none());
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_new_ids(vec![3, 1, 0, 2]).unwrap();
        let inv = p.inverse();
        for old in 0..4u32 {
            assert_eq!(inv.new_id(p.new_id(old)), old);
        }
        assert!(p.then(&inv).is_identity());
    }

    #[test]
    fn composition_applies_left_to_right() {
        let first = Permutation::from_new_ids(vec![1, 2, 0]).unwrap();
        let second = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let composed = first.then(&second);
        for old in 0..3u32 {
            assert_eq!(composed.new_id(old), second.new_id(first.new_id(old)));
        }
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn composition_length_mismatch_panics() {
        let a = Permutation::identity(3);
        let b = Permutation::identity(4);
        let _ = a.then(&b);
    }

    #[test]
    fn permute_moves_data_to_new_slots() {
        let p = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let data = ["a", "b", "c"];
        let out = p.permute(&data);
        // old 0 -> new 2, old 1 -> new 0, old 2 -> new 1
        assert_eq!(out, vec!["b", "c", "a"]);
    }

    #[test]
    #[should_panic(expected = "data length must match permutation")]
    fn permute_length_mismatch_panics() {
        let p = Permutation::identity(3);
        let _ = p.permute(&[1, 2]);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_valid());
        assert!(p.is_identity());
    }
}
