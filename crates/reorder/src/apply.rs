//! Applying a permutation to a graph.

use crate::perm::Permutation;
use grasp_graph::types::Edge;
use grasp_graph::{Csr, EdgeList, GraphView};

/// Relabels every vertex of `graph` according to `perm` (old ID → new ID) and
/// rebuilds the CSR.
///
/// The resulting graph is isomorphic to the input: degrees, neighbour
/// multisets and edge weights are preserved under the relabelling.
///
/// # Panics
///
/// Panics if `perm.len() != graph.vertex_count()`.
pub fn relabel(graph: &dyn GraphView, perm: &Permutation) -> Csr {
    assert_eq!(
        perm.len(),
        graph.vertex_count(),
        "permutation length must match the vertex count"
    );
    let mut edges =
        EdgeList::with_capacity(graph.vertex_count() as u64, graph.edge_count() as usize);
    for src in graph.vertices() {
        for (&dst, &weight) in graph.out_neighbors(src).iter().zip(graph.out_weights(src)) {
            edges
                .push_edge(Edge::weighted(perm.new_id(src), perm.new_id(dst), weight))
                .expect("permutation maps into the same vertex range");
        }
    }
    Csr::from_edge_list(&edges).expect("relabelled graph has the same non-zero vertex count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use grasp_graph::generators::{GraphGenerator, Rmat};
    use grasp_graph::types::Direction;

    #[test]
    fn relabel_preserves_structure() {
        let g = Rmat::new(8, 8).generate(4);
        let perm = crate::Sort.compute_for_test(&g);
        let r = relabel(&g, &perm);
        assert_eq!(r.vertex_count(), g.vertex_count());
        assert_eq!(r.edge_count(), g.edge_count());
        // Degree multiset is preserved.
        let mut before: Vec<u64> = g.vertices().map(|v| g.out_degree(v)).collect();
        let mut after: Vec<u64> = r.vertices().map(|v| r.out_degree(v)).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // Every original edge maps to a relabelled edge.
        for (s, d, _) in g.edges() {
            assert!(r.has_edge(perm.new_id(s), perm.new_id(d)));
        }
    }

    #[test]
    fn relabel_with_identity_is_a_no_op() {
        let g = Rmat::new(7, 4).generate(2);
        let r = relabel(&g, &Permutation::identity(g.vertex_count()));
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), r.out_neighbors(v));
            assert_eq!(g.in_neighbors(v), r.in_neighbors(v));
        }
    }

    #[test]
    #[should_panic(expected = "permutation length must match")]
    fn relabel_length_mismatch_panics() {
        let g = Csr::from_edges([(0, 1)]).unwrap();
        let _ = relabel(&g, &Permutation::identity(5));
    }

    #[test]
    fn relabel_preserves_weights() {
        let g = grasp_graph::CsrBuilder::new(3)
            .weighted_edge(0, 1, 10)
            .weighted_edge(1, 2, 20)
            .build()
            .unwrap();
        let perm = Permutation::from_new_ids(vec![2, 1, 0]).unwrap();
        let r = relabel(&g, &perm);
        // Old edge 0->1 weight 10 becomes 2->1.
        assert_eq!(r.out_neighbors(2), &[1]);
        assert_eq!(r.out_weights(2), &[10]);
        assert_eq!(r.out_weights(1), &[20]);
    }

    impl crate::Sort {
        /// Test-only convenience: compute with out-degree.
        fn compute_for_test(&self, g: &dyn GraphView) -> Permutation {
            use crate::ReorderTechnique;
            self.compute(g, Direction::Out)
        }
    }
}
