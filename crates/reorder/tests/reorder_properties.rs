//! Property-based and cross-technique tests for vertex reordering.

use grasp_graph::generators::{ChungLu, GraphGenerator, Rmat, Uniform};
use grasp_graph::types::Direction;
use grasp_graph::Csr;
use grasp_reorder::{
    apply, DegreeBasedGrouping, HotRegion, HubSort, Identity, Permutation, ReorderTechnique, Sort,
    TechniqueKind,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Csr> {
    // Random small graphs built from edge pairs over 2..=48 vertices.
    (2u32..=48).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..200).prop_map(move |pairs| {
            let mut el = grasp_graph::EdgeList::new(u64::from(n));
            for (s, d) in pairs {
                el.push(s, d).unwrap();
            }
            Csr::from_edge_list(&el).unwrap()
        })
    })
}

proptest! {
    /// Every technique yields a bijection and preserves the degree multiset.
    #[test]
    fn techniques_preserve_degree_multiset(g in arb_graph()) {
        for kind in TechniqueKind::ALL {
            let technique = kind.instantiate();
            let perm = technique.compute(&g, Direction::Out);
            prop_assert!(perm.is_valid());
            let r = apply::relabel(&g, &perm);
            let mut before: Vec<u64> = g.vertices().map(|v| g.out_degree(v)).collect();
            let mut after: Vec<u64> = r.vertices().map(|v| r.out_degree(v)).collect();
            before.sort_unstable();
            after.sort_unstable();
            prop_assert_eq!(before, after, "technique {} changed the degree multiset", kind);
            prop_assert_eq!(g.edge_count(), r.edge_count());
        }
    }

    /// Relabelling preserves adjacency under the permutation.
    #[test]
    fn relabel_preserves_adjacency(g in arb_graph()) {
        let perm = Sort.compute(&g, Direction::In);
        let r = apply::relabel(&g, &perm);
        for (s, d, _) in g.edges() {
            prop_assert!(r.has_edge(perm.new_id(s), perm.new_id(d)));
        }
    }

    /// Inverse composition gives back the identity.
    #[test]
    fn inverse_composition_is_identity(g in arb_graph()) {
        let perm = HubSort.compute(&g, Direction::Out);
        prop_assert!(perm.then(&perm.inverse()).is_identity());
    }
}

#[test]
fn segregating_techniques_build_a_hot_prefix() {
    let g = Rmat::new(11, 12).generate(21);
    for kind in [
        TechniqueKind::Sort,
        TechniqueKind::HubSort,
        TechniqueKind::Dbg,
    ] {
        let technique = kind.instantiate();
        assert!(technique.segregates_hot_vertices());
        let perm = technique.compute(&g, Direction::Out);
        let region = HotRegion::analyze(&apply::relabel(&g, &perm), Direction::Out, 8);
        assert!(
            region.packing_efficiency() > 0.99,
            "{kind}: packing {}",
            region.packing_efficiency()
        );
    }
}

#[test]
fn identity_does_not_segregate_scrambled_graphs() {
    let g = ChungLu::new(4096, 12, 2.0).generate(4);
    let region = HotRegion::analyze(&g, Direction::Out, 8);
    // Hot vertices are scattered, so the covering prefix is much larger than
    // the hot count.
    assert!(region.prefix_covering_hot() > 2 * region.hot_vertex_count());
    assert!(!Identity.segregates_hot_vertices());
}

#[test]
fn dbg_preserves_more_structure_than_sort() {
    // Structure proxy: how many original consecutive-ID pairs remain
    // consecutive after reordering. DBG should beat Sort on a graph with
    // locality in the original order.
    let g = grasp_graph::generators::SmallWorld::new(2048, 8, 0.05).generate(3);
    let count_preserved = |perm: &Permutation| -> usize {
        (0..g.vertex_count() as u32 - 1)
            .filter(|&v| {
                let a = perm.new_id(v);
                let b = perm.new_id(v + 1);
                a.abs_diff(b) == 1
            })
            .count()
    };
    let sort_perm = Sort.compute(&g, Direction::Out);
    let dbg_perm = DegreeBasedGrouping::default().compute(&g, Direction::Out);
    assert!(
        count_preserved(&dbg_perm) >= count_preserved(&sort_perm),
        "DBG should preserve at least as much adjacency of the original order"
    );
}

#[test]
fn uniform_graphs_have_many_hot_vertices() {
    // Sanity for the adversarial datasets: with no skew, roughly half the
    // vertices are hot, so no technique can shrink the hot working set.
    let g = Uniform::new(4096, 16).generate(8);
    let region = HotRegion::analyze(&g, Direction::Out, 8);
    assert!(region.hot_vertex_count() > g.vertex_count() / 4);
}
