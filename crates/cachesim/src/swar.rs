//! SWAR (SIMD-within-a-register) helpers shared by the cache's fused
//! partial-tag scan, the RRIP victim search and the batched replay kernel.
//!
//! The single-lane helpers ([`broadcast`], [`eq_byte_lanes`], [`first_lane`])
//! serve the per-access path; the multi-lane helpers below operate on whole
//! record columns at once — eight records per step — and exist for the
//! chunk-native replay kernel, whose decode stage wants tight, vectorizable
//! loops over the trace's struct-of-arrays storage.

/// Broadcasts a byte to all eight lanes of a `u64`.
#[inline]
pub(crate) fn broadcast(byte: u8) -> u64 {
    u64::from(byte) * 0x0101_0101_0101_0101
}

/// Returns a mask with the high bit of every byte lane where `word` equals
/// `pattern` (a broadcast byte). Standard zero-byte detection.
#[inline]
pub(crate) fn eq_byte_lanes(word: u64, pattern: u64) -> u64 {
    let x = word ^ pattern;
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Index of the lowest matching byte lane in an [`eq_byte_lanes`] mask.
#[inline]
pub(crate) fn first_lane(lanes: u64) -> usize {
    (lanes.trailing_zeros() / 8) as usize
}

/// Length of the prefix of `meta` whose masked kind bits equal `kind`
/// (`meta[i] & mask == kind`) — the run-splitting primitive of the batched
/// replay kernel. Groups of eight records are rejected or accepted with one
/// OR-folded comparison (a wide op the compiler vectorizes), so scanning a
/// multi-thousand-record demand run costs a fraction of a per-record loop;
/// the mismatching tail is then located with a scalar scan.
#[inline]
pub(crate) fn kind_run_len(meta: &[u32], kind: u32, mask: u32) -> usize {
    let mut len = 0;
    for group in meta.chunks_exact(8) {
        let mismatch = group
            .iter()
            .fold(0u32, |acc, &word| acc | ((word & mask) ^ kind));
        if mismatch != 0 {
            break;
        }
        len += 8;
    }
    while len < meta.len() && meta[len] & mask == kind {
        len += 1;
    }
    len
}

/// Column-wise counterpart of [`broadcast`]: extends `out` with the SWAR
/// broadcast pattern of each partial tag, in one tight multiply-only loop
/// (the batched lookup precomputes every pattern of a run up front instead
/// of re-broadcasting per access).
#[inline]
pub(crate) fn broadcast_column(partials: impl Iterator<Item = u8>, out: &mut Vec<u64>) {
    out.extend(partials.map(broadcast));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_matching_lanes() {
        let word = u64::from_le_bytes([7, 3, 7, 0, 255, 7, 1, 2]);
        let lanes = eq_byte_lanes(word, broadcast(7));
        assert_ne!(lanes, 0);
        assert_eq!(first_lane(lanes), 0);
        let lanes = eq_byte_lanes(word, broadcast(255));
        assert_eq!(first_lane(lanes), 4);
        assert_eq!(eq_byte_lanes(word, broadcast(9)), 0);
    }

    #[test]
    fn kind_run_len_handles_every_boundary() {
        const MASK: u32 = 0b11_0000;
        const A: u32 = 0b01_0000;
        const B: u32 = 0b10_0000;
        // Empty column, homogeneous column, break inside the first group,
        // break exactly on a group boundary, break in the scalar tail.
        assert_eq!(kind_run_len(&[], A, MASK), 0);
        assert_eq!(kind_run_len(&[A | 1; 20], A, MASK), 20);
        assert_eq!(kind_run_len(&[B, A, A], A, MASK), 0);
        let mut meta = vec![A; 8];
        meta.push(B);
        meta.extend([A; 3]);
        assert_eq!(kind_run_len(&meta, A, MASK), 8);
        let mut meta = vec![A; 11];
        meta[10] = B;
        assert_eq!(kind_run_len(&meta, A, MASK), 10);
        // Low bits outside the mask never break a run.
        let meta = [A, A | 0xF, A | (0xFFFF_FC0F & !MASK)];
        assert_eq!(kind_run_len(&meta, A, MASK), 3);
    }

    #[test]
    fn broadcast_column_matches_scalar_broadcast() {
        let partials = [0u8, 1, 7, 0xFF, 0x80];
        let mut out = Vec::new();
        broadcast_column(partials.iter().copied(), &mut out);
        let expected: Vec<u64> = partials.iter().map(|&p| broadcast(p)).collect();
        assert_eq!(out, expected);
    }
}
