//! SWAR (SIMD-within-a-register) byte-lane helpers shared by the cache's
//! fused partial-tag scan and the RRIP victim search.

/// Broadcasts a byte to all eight lanes of a `u64`.
#[inline]
pub(crate) fn broadcast(byte: u8) -> u64 {
    u64::from(byte) * 0x0101_0101_0101_0101
}

/// Returns a mask with the high bit of every byte lane where `word` equals
/// `pattern` (a broadcast byte). Standard zero-byte detection.
#[inline]
pub(crate) fn eq_byte_lanes(word: u64, pattern: u64) -> u64 {
    let x = word ^ pattern;
    x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080
}

/// Index of the lowest matching byte lane in an [`eq_byte_lanes`] mask.
#[inline]
pub(crate) fn first_lane(lanes: u64) -> usize {
    (lanes.trailing_zeros() / 8) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_matching_lanes() {
        let word = u64::from_le_bytes([7, 3, 7, 0, 255, 7, 1, 2]);
        let lanes = eq_byte_lanes(word, broadcast(7));
        assert_ne!(lanes, 0);
        assert_eq!(first_lane(lanes), 0);
        let lanes = eq_byte_lanes(word, broadcast(255));
        assert_eq!(first_lane(lanes), 4);
        assert_eq!(eq_byte_lanes(word, broadcast(9)), 0);
    }
}
