//! Address arithmetic.

/// A byte address in the simulated (virtual) address space.
pub type Address = u64;

/// A cache-block address: the byte address shifted right by the block bits.
pub type BlockAddr = u64;

/// Default cache block (line) size in bytes, matching commodity processors
/// and Table VI of the paper.
pub const DEFAULT_BLOCK_BYTES: u64 = 64;

/// Returns the block address of `addr` for a block of `block_bytes` bytes.
///
/// # Panics
///
/// Panics if `block_bytes` is not a power of two.
#[inline]
pub fn block_of(addr: Address, block_bytes: u64) -> BlockAddr {
    debug_assert!(
        block_bytes.is_power_of_two(),
        "block size must be a power of two"
    );
    addr >> block_bytes.trailing_zeros()
}

/// Returns the number of index bits for `count` (which must be a power of two).
#[inline]
pub fn index_bits(count: u64) -> u32 {
    debug_assert!(count.is_power_of_two());
    count.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_truncates_offset() {
        assert_eq!(block_of(0, 64), 0);
        assert_eq!(block_of(63, 64), 0);
        assert_eq!(block_of(64, 64), 1);
        assert_eq!(block_of(0x1040, 64), 0x41);
    }

    #[test]
    fn block_of_other_sizes() {
        assert_eq!(block_of(127, 128), 0);
        assert_eq!(block_of(128, 128), 1);
        assert_eq!(block_of(31, 32), 0);
        assert_eq!(block_of(32, 32), 1);
    }

    #[test]
    fn index_bits_of_powers_of_two() {
        assert_eq!(index_bits(1), 0);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(512), 9);
    }
}
