//! # grasp-cachesim — a trace-driven cache-hierarchy simulator
//!
//! This crate is the hardware substrate of the GRASP (HPCA'20) reproduction.
//! The paper evaluates last-level-cache (LLC) management schemes inside the
//! Sniper microarchitectural simulator; this crate provides the pieces of that
//! infrastructure that GRASP's results actually depend on:
//!
//! * a set-associative cache model with pluggable replacement policies
//!   ([`cache::SetAssocCache`], [`policy::ReplacementPolicy`]),
//! * a three-level hierarchy (L1-D → L2 → LLC) with a stride prefetcher
//!   ([`hierarchy::Hierarchy`]) whose default geometry mirrors Table VI of the
//!   paper (scaled down together with the datasets),
//! * the replacement policies compared in the paper: LRU, SRRIP/BRRIP/DRRIP
//!   ([`policy::rrip`]), SHiP-MEM ([`policy::ship`]), Hawkeye
//!   ([`policy::hawkeye`]), Leeway ([`policy::leeway`]), XMem-style pinning
//!   ([`policy::pin`]), Belady's OPT ([`policy::opt`]) and GRASP itself
//!   ([`policy::grasp`]),
//! * GRASP's software–hardware interface: Address Bound Registers and the
//!   region classification logic that turns an address into a 2-bit reuse
//!   hint ([`hint`]),
//! * per-region access/miss statistics ([`stats`]) used to reproduce Fig. 2,
//!   and an analytic timing model ([`timing`]) used to convert miss counts
//!   into the speed-up numbers of Figs. 6–10.
//!
//! ## Quick example
//!
//! ```
//! use grasp_cachesim::config::CacheConfig;
//! use grasp_cachesim::cache::SetAssocCache;
//! use grasp_cachesim::policy::lru::Lru;
//! use grasp_cachesim::request::AccessInfo;
//!
//! let config = CacheConfig::new(32 * 1024, 8, 64);
//! let mut cache = SetAssocCache::new("L1-D", config, Box::new(Lru::new(config.sets(), config.ways)));
//! let hit = cache.access(&AccessInfo::read(0x1000)).is_hit();
//! assert!(!hit, "first access is a compulsory miss");
//! let hit = cache.access(&AccessInfo::read(0x1000)).is_hit();
//! assert!(hit, "second access to the same block hits");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod fast_hash;
pub mod hierarchy;
pub mod hint;
pub mod policy;
pub mod prefetch;
pub mod request;
pub mod stage;
pub mod stats;
mod swar;
pub mod timing;
pub mod trace;

pub use addr::{block_of, Address, BlockAddr};
pub use cache::{BatchOp, BatchScratch, SetAssocCache};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::Hierarchy;
pub use hint::{AddressBoundRegisters, RegionClassifier, ReuseHint};
pub use policy::PolicyDispatch;
pub use request::{AccessInfo, AccessKind, RegionLabel};
pub use stage::{LlcSink, LlcStage, UpperLevels};
pub use stats::{CacheStats, HierarchyStats};
pub use timing::TimingModel;
pub use trace::persist::{Codec, PersistError, TRACE_FORMAT_VERSION, TRACE_MAGIC};
pub use trace::{LlcTrace, TraceEvent};
