//! Access and miss statistics.

use crate::request::RegionLabel;
use serde::{Deserialize, Serialize};

/// Per-region access/miss counters (drives the Fig. 2 breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionCounters {
    /// Demand accesses that reached this cache.
    pub accesses: u64,
    /// Demand misses at this cache.
    pub misses: u64,
}

impl RegionCounters {
    /// Hits (accesses − misses).
    pub fn hits(&self) -> u64 {
        self.accesses - self.misses
    }
}

/// Statistics of a single cache level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Blocks evicted to make room for fills.
    pub evictions: u64,
    /// Fills skipped because the policy chose to bypass.
    pub bypasses: u64,
    /// Prefetch requests that reached this level (not counted in `accesses`).
    pub prefetch_accesses: u64,
    /// Prefetch requests that missed and triggered a fill at this level.
    pub prefetch_fills: u64,
    /// Writebacks of dirty victims received from the level above (not counted
    /// in `accesses`).
    pub writeback_accesses: u64,
    /// Writebacks that found their block resident at this level. Misses are
    /// forwarded towards memory without allocating.
    pub writeback_hits: u64,
    /// Per-region demand counters, indexed by [`RegionLabel::ALL`] order.
    region: [RegionCounters; RegionLabel::ALL.len()],
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a demand access and its outcome.
    #[inline]
    pub fn record(&mut self, region: RegionLabel, hit: bool) {
        self.accesses += 1;
        let idx = region.index();
        self.region[idx].accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.region[idx].misses += 1;
        }
    }

    /// Records a prefetch access and whether it filled (missed).
    pub fn record_prefetch(&mut self, filled: bool) {
        self.prefetch_accesses += 1;
        if filled {
            self.prefetch_fills += 1;
        }
    }

    /// Records a writeback received from the level above and whether it hit.
    pub fn record_writeback(&mut self, hit: bool) {
        self.writeback_accesses += 1;
        if hit {
            self.writeback_hits += 1;
        }
    }

    /// Per-region counters.
    pub fn region(&self, region: RegionLabel) -> RegionCounters {
        self.region[region.index()]
    }

    /// Overwrites one region's counters wholesale. Only the trace
    /// persistence decoder uses this — recorded statistics are reconstructed
    /// from disk, not re-accumulated — so it stays crate-private.
    pub(crate) fn set_region_counters(&mut self, region: RegionLabel, accesses: u64, misses: u64) {
        self.region[region.index()] = RegionCounters { accesses, misses };
    }

    /// Adds one batched run's per-region demand sums in a single step — the
    /// deferred-statistics flush of the batched replay kernel, equivalent to
    /// the per-access [`CacheStats::record`] calls it replaces.
    #[inline]
    pub(crate) fn add_region_counters(&mut self, region: RegionLabel, accesses: u64, misses: u64) {
        let idx = region.index();
        self.region[idx].accesses += accesses;
        self.region[idx].misses += misses;
    }

    /// Demand miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of demand accesses that fall within the Property Array.
    pub fn property_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.region(RegionLabel::Property).accesses as f64 / self.accesses as f64
        }
    }

    /// Fraction of all demand accesses that are Property Array misses.
    pub fn property_miss_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.region(RegionLabel::Property).misses as f64 / self.accesses as f64
        }
    }
}

/// Statistics of the full three-level hierarchy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// L1 data cache.
    pub l1: CacheStats,
    /// Unified L2.
    pub l2: CacheStats,
    /// Last-level cache.
    pub llc: CacheStats,
    /// Demand requests that had to go to main memory (== demand LLC misses).
    pub memory_accesses: u64,
}

impl HierarchyStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total demand accesses issued to the hierarchy (== L1 accesses).
    pub fn total_accesses(&self) -> u64 {
        self.l1.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_totals_and_regions() {
        let mut s = CacheStats::new();
        s.record(RegionLabel::Property, false);
        s.record(RegionLabel::Property, true);
        s.record(RegionLabel::EdgeArray, false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.region(RegionLabel::Property).accesses, 2);
        assert_eq!(s.region(RegionLabel::Property).misses, 1);
        assert_eq!(s.region(RegionLabel::Property).hits(), 1);
        assert_eq!(s.region(RegionLabel::EdgeArray).misses, 1);
        assert_eq!(s.region(RegionLabel::Frontier).accesses, 0);
    }

    #[test]
    fn ratios() {
        let mut s = CacheStats::new();
        for i in 0..10 {
            s.record(RegionLabel::Property, i % 2 == 0);
        }
        for _ in 0..10 {
            s.record(RegionLabel::Other, true);
        }
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert!((s.property_access_fraction() - 0.5).abs() < 1e-12);
        assert!((s.property_miss_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = CacheStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.property_access_fraction(), 0.0);
    }

    #[test]
    fn prefetch_counters_are_separate() {
        let mut s = CacheStats::new();
        s.record_prefetch(true);
        s.record_prefetch(false);
        assert_eq!(s.prefetch_accesses, 2);
        assert_eq!(s.prefetch_fills, 1);
        assert_eq!(s.accesses, 0, "prefetches are not demand accesses");
    }

    #[test]
    fn writeback_counters_are_separate() {
        let mut s = CacheStats::new();
        s.record_writeback(true);
        s.record_writeback(false);
        s.record_writeback(false);
        assert_eq!(s.writeback_accesses, 3);
        assert_eq!(s.writeback_hits, 1);
        assert_eq!(s.accesses, 0, "writebacks are not demand accesses");
        assert_eq!(s.miss_ratio(), 0.0);
    }
}
